"""Setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; ``pip install -e . --no-build-isolation
--no-use-pep517`` (or plain ``pip install -e .`` on a machine with
wheel) uses this legacy path instead.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
