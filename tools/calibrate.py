"""Calibration inspector: per-region configuration landscapes.

Usage::

    python tools/calibrate.py sp B crill          # region sweep at TDP
    python tools/calibrate.py sp B crill 55       # at a 55 W cap
    python tools/calibrate.py lulesh 45 minotaur

For each region: default-config metrics, the best config in the Table I
space, and the improvement - the raw material for matching the paper's
shapes (who wins, by how much, where).
"""

from __future__ import annotations

import sys

from repro.core.config import config_from_point, search_space_for
from repro.machine.node import SimulatedNode
from repro.machine.spec import machine_by_name
from repro.openmp.engine import ExecutionEngine
from repro.openmp.types import default_config
from repro.workloads.registry import application_by_name


def sweep_region(engine, space, region):
    best = None
    for indices in space.iter_indices():
        cfg = config_from_point(space.decode(indices))
        rec = engine._simulate(region, cfg)
        if best is None or rec.time_s < best.time_s:
            best = rec
    return best


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "sp"
    workload = sys.argv[2] if len(sys.argv) > 2 else "B"
    machine = sys.argv[3] if len(sys.argv) > 3 else "crill"
    cap = float(sys.argv[4]) if len(sys.argv) > 4 else None

    spec = machine_by_name(machine)
    node = SimulatedNode(spec)
    if cap is not None:
        node.set_power_cap(cap)
        node.settle_after_cap()
    engine = ExecutionEngine(node)
    app = application_by_name(app_name, workload)
    space = search_space_for(spec)
    dflt = default_config(spec.total_hw_threads)

    cap_label = "TDP" if cap is None else f"{cap:g}W"
    print(f"== {app.label} on {spec.name} @ {cap_label} ==")
    print(
        f"{'region':34s} {'dflt ms':>8s} {'best ms':>8s} {'gain%':>6s} "
        f"{'bestE%':>6s} {'best config':22s} "
        f"{'dflt L3':>7s} {'best L3':>7s} {'dflt bar%':>9s} {'best bar%':>9s}"
    )
    app_d = app_b = 0.0
    for rc in app.step_sequence:
        region = rc.region
        d = engine._simulate(region, dflt)
        b = sweep_region(engine, space, region)
        app_d += d.time_s * rc.calls
        app_b += b.time_s * rc.calls
        gain = 100 * (d.time_s - b.time_s) / d.time_s
        egain = 100 * (d.energy_j - b.energy_j) / d.energy_j
        print(
            f"{region.name:34s} {d.time_s*1e3:8.3f} {b.time_s*1e3:8.3f} "
            f"{gain:6.1f} {egain:6.1f} {b.config.label():22s} "
            f"{d.l3_miss_rate:7.3f} {b.l3_miss_rate:7.3f} "
            f"{100*d.barrier_fraction:9.1f} {100*b.barrier_fraction:9.1f}"
        )
    print(
        f"app step time: default {app_d*1e3:.1f} ms, best-possible "
        f"{app_b*1e3:.1f} ms ({100*(app_d-app_b)/app_d:.1f}% gain)"
    )


def grid(app_name="sp", workload="B", machine="crill", region_name="y_solve", cap=None):
    """Thread x schedule grid for one region."""
    from repro.openmp.types import OMPConfig, ScheduleKind
    spec = machine_by_name(machine)
    node = SimulatedNode(spec)
    if cap is not None:
        node.set_power_cap(cap); node.settle_after_cap()
    engine = ExecutionEngine(node)
    app = application_by_name(app_name, workload)
    region = {r.region.name: r.region for r in app.step_sequence}[region_name]
    threads = [2,4,8,16,24,32] if machine=="crill" else [10,20,40,80,120,160]
    print(f"-- {region_name} ({app_name}.{workload}) on {machine} cap={cap} --")
    print("cfg: time_ms  cpu/mem split  L1/L2/L3  barrier%  f(GHz)  E(J)")
    for t in threads:
        for sched, chunk in [(ScheduleKind.STATIC,None),(ScheduleKind.STATIC,32),(ScheduleKind.DYNAMIC,1),(ScheduleKind.DYNAMIC,8),(ScheduleKind.GUIDED,None)]:
            cfg = OMPConfig(t, sched, chunk)
            r = engine._simulate(region, cfg)
            print(f"  {cfg.label():24s} {r.time_s*1e3:8.3f}  L1={r.l1_miss_rate:.3f} L2={r.l2_miss_rate:.3f} L3={r.l3_miss_rate:.3f} bar={100*r.barrier_fraction:5.1f}% f={r.frequencies_ghz[0]:.2f} E={r.energy_j:.3f}")

if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "grid":
        grid(*sys.argv[2:6],
             cap=float(sys.argv[6]) if len(sys.argv) > 6 else None)
    else:
        main()
