"""CI chaos target for the fault-tolerant fleet simulation.

Runs one seeded fleet (mixed Crill/Minotaur nodes under a global
power budget) against a hostile fleet-tier fault plan - node crashes
and hangs, dropped and partitioned heartbeats, rejected cap writes,
flapping membership (``examples/fleetfaults.json``) - and proves the
three robustness claims the fleet layer makes:

1. **graceful degradation** - the reference pass must finish with the
   budget invariant intact (the simulation itself raises
   ``BudgetInvariantError`` otherwise), every armed fleet fault
   surfaced as its typed degradation event, at least one node lost to
   a crash, its power share reclaimed (a death was declared), and
   every surviving node's workload run to completion;
2. **crash-safe resume** - the same run killed after ``k`` steps
   (simulated ``kill -9`` between journal fsyncs) and resumed from the
   journal must produce byte-identical result JSON, for several kill
   points;
3. **torn-tail recovery** - a journal with garbage appended (a write
   torn mid-line by the kill) must still resume byte-identically.

The run fails (exit 1) on any divergence or missing degradation.
With ``--telemetry-dir`` the reference pass runs under the telemetry
bus, so the JSONL timeline of every degradation / allocation decision
ships as a CI artifact.

Usage::

    PYTHONPATH=src python tools/fleet_chaos.py \
        --nodes 10 --kills 3 --telemetry-dir out/
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.faults.plan import load_fault_plan
from repro.fleet import (
    FleetJournal,
    FleetSimulation,
    fleet_result_to_json,
    synthesize_fleet,
)
from repro.fleet.events import FAULT_DEGRADATIONS
from repro.telemetry import JsonlSink, TelemetryBus, install
from repro.util.log import configure, get_logger

log = get_logger("fleet_chaos")


class _FleetOnlySink(JsonlSink):
    """The inner ARCS runs emit per-invocation records by the
    hundred-thousand; the CI artifact wants the fleet timeline (every
    degradation, allocation and budget reading), not the microscope."""

    def write(self, record: dict) -> None:
        name = str(record.get("name", ""))
        if record.get("type") == "meta" or name.startswith("fleet."):
            super().write(record)


def _result_json(result) -> str:
    return json.dumps(fleet_result_to_json(result), sort_keys=True)


def _check_reference(result, fault_plan) -> None:
    """The graceful-degradation claims, on the uninterrupted pass."""
    kinds = {event.kind for event in result.events}
    for spec in fault_plan.specs:
        expected = FAULT_DEGRADATIONS.get((spec.site, spec.action))
        if expected is None:
            continue  # not a fleet-tier site
        if expected not in kinds:
            raise AssertionError(
                f"armed fault {spec.site}/{spec.action} never surfaced "
                f"as a {expected!r} degradation event"
            )
    if result.crashed < 1:
        raise AssertionError(
            "the fault plan was supposed to kill at least one node"
        )
    if not result.reaction_latencies:
        raise AssertionError(
            "a node crashed but no death was ever declared (no power "
            "share reclaimed)"
        )
    survivors = [
        node for node in result.nodes if node["status"] != "crashed"
    ]
    unfinished = [
        node["node"] for node in survivors
        if node["status"] != "done"
    ]
    if unfinished:
        raise AssertionError(
            f"surviving nodes did not complete their workloads: "
            f"{unfinished}"
        )


def _kill_points(steps: int, kills: int) -> list[int]:
    """Evenly spread kill points inside the run (at least step 1)."""
    kills = max(1, min(kills, steps))
    return sorted(
        {max(1, (i + 1) * steps // (kills + 1)) for i in range(kills)}
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument("--global-cap", type=float, default=None,
                        dest="global_cap")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-steps", type=int, default=120)
    parser.add_argument(
        "--kills", type=int, default=3,
        help="number of kill/resume points exercised",
    )
    parser.add_argument(
        "--faults", default="examples/fleetfaults.json",
        help="hostile fleet-tier fault plan",
    )
    parser.add_argument(
        "--telemetry-dir", default=None,
        help="write the reference pass's telemetry JSONL here",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
    )
    args = parser.parse_args(argv)
    if args.log_level:
        configure(level=args.log_level)

    plan = synthesize_fleet(
        args.nodes,
        args.global_cap,
        seed=args.seed,
        max_steps=args.max_steps,
    )
    faults = load_fault_plan(args.faults)
    telemetry = (
        Path(args.telemetry_dir) if args.telemetry_dir else None
    )

    t0 = time.perf_counter()
    try:
        with tempfile.TemporaryDirectory() as tmp:
            scratch = Path(tmp)
            log.info(
                "reference chaos pass",
                nodes=args.nodes,
                global_cap_w=plan.global_cap_w,
                faults=args.faults,
            )
            journal = FleetJournal(scratch / "reference.jsonl")
            if telemetry is not None:
                telemetry.mkdir(parents=True, exist_ok=True)
                parent = TelemetryBus(enabled=True)
                parent.add_sink(
                    _FleetOnlySink(telemetry / "fleet_chaos.jsonl")
                )
                parent.meta(
                    tool="fleet_chaos",
                    nodes=args.nodes,
                    global_cap_w=plan.global_cap_w,
                    faults=args.faults,
                )
                previous = install(parent)
                try:
                    reference = FleetSimulation(
                        plan, faults, journal=journal
                    ).run()
                finally:
                    install(previous)
                    parent.close()
            else:
                reference = FleetSimulation(
                    plan, faults, journal=journal
                ).run()
            _check_reference(reference, faults)
            expected = _result_json(reference)

            points = _kill_points(reference.steps, args.kills)
            log.info(
                "kill/resume passes",
                steps=reference.steps,
                kill_points=points,
            )
            for k in points:
                path = scratch / f"kill-{k}.jsonl"
                FleetSimulation(
                    plan, faults, journal=FleetJournal(path),
                    stop_after=k,
                ).run()
                resumed = FleetSimulation(
                    plan, faults, journal=FleetJournal(path),
                    resume=True,
                ).run()
                if _result_json(resumed) != expected:
                    raise AssertionError(
                        f"resume after a kill at step {k} diverged "
                        "from the uninterrupted run"
                    )

            torn_at = points[len(points) // 2]
            path = scratch / "torn.jsonl"
            FleetSimulation(
                plan, faults, journal=FleetJournal(path),
                stop_after=torn_at,
            ).run()
            with open(path, "a", encoding="utf-8") as fh:
                fh.write('{"schema":1,"step":999,"sta')  # torn write
            resumed = FleetSimulation(
                plan, faults, journal=FleetJournal(path), resume=True
            ).run()
            if _result_json(resumed) != expected:
                raise AssertionError(
                    "resume over a torn journal tail diverged from "
                    "the uninterrupted run"
                )
    except AssertionError as exc:
        log.error("fleet chaos FAIL", reason=str(exc))
        return 1

    log.info(
        "fleet chaos OK",
        steps=reference.steps,
        started=reference.started,
        completed=reference.completed,
        crashed=reference.crashed,
        survival_rate=round(reference.survival_rate, 3),
        degradations=len(reference.degradations()),
        kill_points=points,
        elapsed_s=round(time.perf_counter() - t0, 2),
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
