"""Chaos soak for crash-recoverable ARCS-Online runs.

Each iteration draws a randomized fault plan and cap schedule, runs an
uninterrupted baseline, then kills the same experiment at several
random points (via the runner's ``kill_after`` hook, which raises
right after the checkpoint write) and resumes each from its
checkpoint.  The soak asserts, per kill point:

* **equivalence** - the resumed run's full-fidelity JSON encoding is
  byte-identical to the baseline's;
* **no-NaN** - every float anywhere in the result and in the
  checkpoint left behind is finite;
* **monotone best** - every checkpointed tuning session's recorded
  best matches the minimum of the objective values it was told (the
  best can only improve as measurements accumulate).

With ``--service`` the soak instead exercises the tuning-service
degradation chain: each iteration boots a real daemon, runs a
sequence of ARCS-Offline clients against it, and randomly kills and
restarts the daemon between AND during client runs (the restarted
daemon rebinds the same port).  Every client must produce a result
byte-identical to a service-less baseline modulo the ``config source``
degradation notes and ``tuning_runs``; the run with the daemon down
must record a fallback note, and the final run against the restarted
daemon must be served from its recovered store (no tuning).

Exit code 0 = pass, 1 = fail.

Usage::

    PYTHONPATH=src python tools/soak.py --iterations 3 --seed 0
    PYTHONPATH=src python tools/soak.py --service --iterations 3
"""

from __future__ import annotations

import argparse
import json
import math
import random
import tempfile
import threading
import time
from pathlib import Path

from repro.core.capschedule import CapEvent, CapSchedule
from repro.experiments.cache import result_to_json
from repro.experiments.resumable import (
    SimulatedKill,
    load_run_checkpoint,
)
from repro.experiments.runner import (
    ExperimentSetup,
    run_arcs_offline,
    run_arcs_online,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.machine.spec import crill
from repro.service.daemon import ThreadedDaemon
from repro.service.source import default_chain
from repro.util.log import configure, get_logger
from repro.workloads.synthetic import synthetic_application

log = get_logger("soak")

#: caps the schedule generator may flip between (crill levels + TDP).
_CAP_LEVELS = (55.0, 70.0, 85.0, 100.0, None)


def _random_fault_plan(rng: random.Random) -> FaultPlan | None:
    """A small randomized plan.  ``region.exec`` crash fires are kept
    well under the supervisor's abort threshold (6 consecutive) so a
    soak run always finishes; pinning a region is fair game."""
    specs: list[FaultSpec] = []
    if rng.random() < 0.8:
        specs.append(
            FaultSpec(
                site="region.exec",
                action="crash",
                probability=rng.uniform(0.005, 0.03),
                max_fires=rng.randint(1, 3),
            )
        )
    if rng.random() < 0.6:
        specs.append(
            FaultSpec(
                site="region.exec",
                action="hang",
                probability=rng.uniform(0.005, 0.02),
                max_fires=rng.randint(1, 2),
                magnitude=rng.uniform(0.1, 0.5),
            )
        )
    if rng.random() < 0.5:
        specs.append(
            FaultSpec(
                site="rapl.read",
                action=rng.choice(("error", "stale")),
                probability=rng.uniform(0.005, 0.03),
                max_fires=rng.randint(1, 4),
            )
        )
    if rng.random() < 0.3:
        specs.append(
            FaultSpec(
                site="rapl.cap_write",
                action="reject",
                probability=rng.uniform(0.05, 0.3),
                max_fires=rng.randint(1, 2),
            )
        )
    if not specs:
        return None
    return FaultPlan(specs=tuple(specs), seed=rng.randint(0, 2**31))


def _random_cap_schedule(
    rng: random.Random, total: int
) -> CapSchedule | None:
    if rng.random() < 0.25:
        return None
    points = sorted(
        rng.sample(range(2, max(3, total - 1)), rng.randint(1, 3))
    )
    events = tuple(
        CapEvent(after, rng.choice(_CAP_LEVELS)) for after in points
    )
    return CapSchedule(
        events=events,
        hysteresis_invocations=rng.choice((0, 0, 5, 20)),
    )


def _assert_finite(blob, where: str) -> None:
    """Recursively reject NaN/inf anywhere in a JSON-shaped value."""
    stack = [(blob, where)]
    while stack:
        value, path = stack.pop()
        if isinstance(value, float):
            if not math.isfinite(value):
                raise AssertionError(f"non-finite float at {path}")
        elif isinstance(value, dict):
            stack.extend(
                (v, f"{path}.{k}") for k, v in value.items()
            )
        elif isinstance(value, (list, tuple)):
            stack.extend(
                (v, f"{path}[{i}]") for i, v in enumerate(value)
            )


def _assert_monotone_best(checkpoint: dict, where: str) -> None:
    """Every checkpointed session's recorded best must equal the
    minimum objective it has been told (ties allowed)."""
    active = checkpoint.get("active")
    if not active:
        return
    regions = active["controller"]["policy"]["regions"]
    for key, state in regions.items():
        session = state.get("session")
        if not session:
            continue
        tells = [
            event[2]
            for event in session["events"]
            if event[0] == "tell"
        ]
        best = session.get("best")
        if not tells:
            if best is not None:
                raise AssertionError(
                    f"{where}: session {key} has a best with no tells"
                )
            continue
        if best is None:
            raise AssertionError(
                f"{where}: session {key} was told {len(tells)} "
                "value(s) but records no best"
            )
        if best[1] != min(tells):
            raise AssertionError(
                f"{where}: session {key} best {best[1]} != min told "
                f"value {min(tells)}"
            )


def _iteration(
    iteration: int, seed: int, kill_points: int, tmp: Path
) -> int:
    """Run one chaos iteration; returns the number of kills tested."""
    rng = random.Random((seed << 16) ^ iteration)
    app = synthetic_application(timesteps=rng.choice((10, 20, 30)))
    repeats = rng.choice((1, 2))
    total_guess = app.timesteps * app.calls_per_step() * repeats
    setup = ExperimentSetup(
        spec=crill(),
        cap_w=rng.choice(_CAP_LEVELS),
        repeats=repeats,
        seed=rng.randint(0, 2**31),
        online_max_evals=rng.choice((10, 20)),
        fault_plan=_random_fault_plan(rng),
        cap_schedule=_random_cap_schedule(rng, total_guess),
    )

    baseline = run_arcs_online(app, setup)
    expected = result_to_json(baseline)
    _assert_finite(expected, f"iter {iteration} baseline result")
    total = sum(r.total_region_calls for r in baseline.runs)

    kills = sorted(
        rng.sample(range(1, total), min(kill_points, total - 1))
    )
    for kill in kills:
        ck = tmp / f"soak-{iteration}-{kill}.json"
        try:
            run_arcs_online(
                app, setup, checkpoint_path=ck, kill_after=kill
            )
            raise AssertionError(
                f"iter {iteration}: kill_after={kill} did not kill "
                f"(run has {total} invocations)"
            )
        except SimulatedKill:
            pass
        checkpoint = load_run_checkpoint(ck)
        where = f"iter {iteration} kill {kill} checkpoint"
        _assert_finite(checkpoint, where)
        _assert_monotone_best(checkpoint, where)

        resumed = run_arcs_online(app, setup, resume_from=ck)
        got = result_to_json(resumed)
        _assert_finite(got, f"iter {iteration} kill {kill} resumed")
        if got != expected:
            differing = sorted(
                k for k in expected if got.get(k) != expected[k]
            )
            raise AssertionError(
                f"iter {iteration}: resume after kill at invocation "
                f"{kill} diverged from the uninterrupted run "
                f"(fields: {', '.join(differing)})"
            )
    log.info(
        "soak iteration OK",
        iteration=iteration,
        kills=len(kills),
        invocations=total,
        degradations=len(baseline.degradations),
        cap_changes=len(baseline.cap_changes),
    )
    return len(kills)


_NOTE_PREFIX = "config source "


def _canonical_modulo_service(result) -> str:
    """Full-fidelity JSON with service degradation notes stripped and
    ``tuning_runs`` dropped (a service hit legitimately skips tuning;
    everything measured must still match)."""
    blob = result_to_json(result)
    blob["degradations"] = [
        d
        for d in blob["degradations"]
        if not d.startswith(_NOTE_PREFIX)
    ]
    blob.pop("tuning_runs")
    return json.dumps(blob, sort_keys=True)


def _service_notes(result) -> list[str]:
    return [
        d
        for d in result.degradations
        if d.startswith(_NOTE_PREFIX)
    ]


def _service_iteration(iteration: int, seed: int, tmp: Path) -> int:
    """One service-chain soak iteration; returns the client-run count.

    Cell 0 always runs with the daemon up (so the tuned entry is
    published), cell 1 always with the daemon down (pure fallback),
    the middle cells transition randomly - sometimes killing the
    daemon mid-run from a timer thread - and the final cell runs
    against a restarted daemon, which must serve the entry from its
    recovered store."""
    rng = random.Random((seed << 16) ^ (0x5E41C ^ 0) ^ iteration)
    app = synthetic_application(timesteps=rng.choice((10, 20)))
    setup = ExperimentSetup(
        spec=crill(),
        cap_w=rng.choice((55.0, 70.0, 85.0)),
        repeats=rng.choice((1, 2)),
        seed=rng.randint(0, 2**31),
    )
    baseline = run_arcs_offline(app, setup)
    expected = _canonical_modulo_service(baseline)

    daemon = ThreadedDaemon(tmp / f"svc-{iteration}")
    daemon.start()
    address = f"{daemon.address[0]}:{daemon.address[1]}"
    cells = rng.randint(4, 6)
    fallback_cells = 0
    try:
        for cell in range(cells):
            last = cell == cells - 1
            if cell == 1 and daemon.running:
                daemon.stop()            # forced outage
            elif cell >= 2 and not daemon.running:
                if last or rng.random() < 0.7:
                    daemon.start()       # recovery (same port)
            elif cell >= 2 and daemon.running and rng.random() < 0.4:
                daemon.stop()
            killer = None
            if daemon.running and 2 <= cell < cells - 1:
                if rng.random() < 0.5:
                    # kill the daemon WHILE the client is running
                    killer = threading.Timer(
                        rng.uniform(0.0, 0.05), daemon.stop
                    )
                    killer.start()
            chain = default_chain(address, memo={}, deadline_s=0.5)
            result = run_arcs_offline(app, setup, source=chain)
            if killer is not None:
                killer.join()
            got = _canonical_modulo_service(result)
            if got != expected:
                raise AssertionError(
                    f"iter {iteration} cell {cell}: client diverged "
                    "from the service-less baseline (daemon "
                    f"{'up' if daemon.running else 'down'})"
                )
            notes = _service_notes(result)
            fallback_cells += bool(notes)
            if cell == 1 and not notes:
                raise AssertionError(
                    f"iter {iteration} cell 1: daemon was down but "
                    "the client recorded no fallback note"
                )
            if last and result.tuning_runs != 0:
                raise AssertionError(
                    f"iter {iteration} final cell: restarted daemon "
                    "did not serve the recovered entry "
                    f"(tuning_runs={result.tuning_runs})"
                )
    finally:
        daemon.stop()
    log.info(
        "service soak iteration OK",
        iteration=iteration,
        cells=cells,
        fallback_cells=fallback_cells,
    )
    return cells


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--kill-points", type=int, default=7,
        help="random kill/resume points tested per iteration",
    )
    parser.add_argument(
        "--service", action="store_true",
        help="soak the tuning-service degradation chain instead: "
        "kill/restart a real daemon around and during client runs",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
    )
    args = parser.parse_args(argv)
    if args.log_level:
        configure(level=args.log_level)

    t0 = time.perf_counter()
    tested = 0
    try:
        with tempfile.TemporaryDirectory() as tmp:
            for iteration in range(args.iterations):
                if args.service:
                    tested += _service_iteration(
                        iteration, args.seed, Path(tmp)
                    )
                else:
                    tested += _iteration(
                        iteration,
                        args.seed,
                        args.kill_points,
                        Path(tmp),
                    )
    except AssertionError as exc:
        log.error("soak FAIL", reason=str(exc))
        return 1
    log.info(
        "soak OK",
        cycles=tested,
        iterations=args.iterations,
        elapsed_s=time.perf_counter() - t0,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
