"""CI smoke target for the parallel cached sweep harness.

Runs the same sweep twice through a fresh cache: the first (cold) pass
populates it, the second (warm) pass must serve every cell from disk,
produce byte-identical results, and finish within a strict time
budget.  Exit code 0 = pass, 1 = fail.

Usage::

    PYTHONPATH=src python tools/smoke_sweep.py
    PYTHONPATH=src python tools/smoke_sweep.py --app sp --workload B \
        --workers 4 --warm-budget-s 5

Intended to run in CI alongside the tier-1 tests::

    PYTHONPATH=src python -m pytest -x -q && \
    PYTHONPATH=src python tools/smoke_sweep.py
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.cache import ExperimentCache, result_to_json
from repro.experiments.figures import power_sweep
from repro.experiments.runner import CRILL_POWER_LEVELS
from repro.machine.spec import machine_by_name
from repro.workloads.registry import application_by_name


def _encode(sweep) -> str:
    return json.dumps(
        {
            f"{label}/{strategy}": result_to_json(result)
            for (label, strategy), result in sorted(sweep.results.items())
        },
        sort_keys=True,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--app", default="sp")
    parser.add_argument("--workload", default="B")
    parser.add_argument("--machine", default="crill")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--warm-budget-s", type=float, default=5.0,
        help="max wall time allowed for the warm-cache rerun",
    )
    args = parser.parse_args(argv)

    spec = machine_by_name(args.machine)
    app = application_by_name(args.app, args.workload)
    caps = (
        CRILL_POWER_LEVELS if spec.supports_power_cap else (spec.tdp_w,)
    )

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(args.cache_dir) if args.cache_dir else Path(tmp)
        cold_cache = ExperimentCache(root)
        t0 = time.perf_counter()
        cold = power_sweep(
            app, spec, caps, repeats=args.repeats,
            workers=args.workers, cache=cold_cache,
        )
        t_cold = time.perf_counter() - t0

        warm_cache = ExperimentCache(root)
        t0 = time.perf_counter()
        warm = power_sweep(
            app, spec, caps, repeats=args.repeats,
            workers=args.workers, cache=warm_cache,
        )
        t_warm = time.perf_counter() - t0

    cells = len(cold.results)
    print(
        f"smoke: {app.label} on {spec.name}, {cells} cells - "
        f"cold {t_cold:.2f} s, warm {t_warm:.2f} s"
    )

    failures = []
    if _encode(warm) != _encode(cold):
        failures.append("warm-cache rerun differs from the cold sweep")
    if warm_cache.stats.hits != cells or warm_cache.stats.misses:
        failures.append(
            f"warm rerun was not fully cached "
            f"({warm_cache.stats.hits}/{cells} hits, "
            f"{warm_cache.stats.misses} misses)"
        )
    if t_warm > args.warm_budget_s:
        failures.append(
            f"warm rerun took {t_warm:.2f} s "
            f"(budget {args.warm_budget_s:.2f} s)"
        )
    for failure in failures:
        print(f"smoke FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
