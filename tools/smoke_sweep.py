"""CI smoke target for the parallel cached sweep harness.

Runs the same sweep twice through a fresh cache: the first (cold) pass
populates it, the second (warm) pass must serve every cell from disk,
produce byte-identical results, and finish within a strict time
budget.  With ``--telemetry-dir`` a third, uncached pass runs with
telemetry enabled: it must produce the same results as the cold pass,
emit the JSONL logs and a Perfetto-loadable ``trace.json``, and stay
within ``--telemetry-overhead-factor`` of the disabled baseline.
Exit code 0 = pass, 1 = fail.

Usage::

    PYTHONPATH=src python tools/smoke_sweep.py
    PYTHONPATH=src python tools/smoke_sweep.py --app sp --workload B \
        --workers 4 --warm-budget-s 5 --telemetry-dir out/telemetry

Intended to run in CI alongside the tier-1 tests::

    PYTHONPATH=src python -m pytest -x -q && \
    PYTHONPATH=src python tools/smoke_sweep.py
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.experiments.cache import ExperimentCache, result_to_json
from repro.experiments.figures import power_sweep
from repro.experiments.runner import CRILL_POWER_LEVELS
from repro.machine.spec import machine_by_name
from repro.telemetry import (
    JsonlSink,
    TelemetryBus,
    export_chrome_trace,
    install,
)
from repro.util.log import configure, get_logger
from repro.workloads.registry import application_by_name

log = get_logger("smoke")


def _encode(sweep) -> str:
    return json.dumps(
        {
            f"{label}/{strategy}": result_to_json(result)
            for (label, strategy), result in sorted(sweep.results.items())
        },
        sort_keys=True,
    )


def _telemetry_pass(app, spec, caps, args, telemetry_dir: Path):
    """One uncached sweep with the bus enabled; returns
    ``(sweep, elapsed_s)``.  The parent bus collects harness lifecycle
    events in ``sweep.jsonl``; each cell writes its own
    ``task-<runid>.jsonl``."""
    parent = TelemetryBus(enabled=True)
    parent.add_sink(JsonlSink(telemetry_dir / "sweep.jsonl"))
    parent.meta(
        tool="smoke_sweep",
        app=app.label,
        machine=spec.name,
        repeats=args.repeats,
        workers=args.workers,
    )
    previous = install(parent)
    t0 = time.perf_counter()
    try:
        sweep = power_sweep(
            app, spec, caps, repeats=args.repeats,
            workers=args.workers, telemetry_dir=str(telemetry_dir),
        )
    finally:
        install(previous)
        parent.close()
    return sweep, time.perf_counter() - t0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--app", default="sp")
    parser.add_argument("--workload", default="B")
    parser.add_argument("--machine", default="crill")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--warm-budget-s", type=float, default=5.0,
        help="max wall time allowed for the warm-cache rerun",
    )
    parser.add_argument(
        "--telemetry-dir", default=None,
        help="also run an uncached telemetry-enabled pass, writing "
        "JSONL logs and trace.json here",
    )
    parser.add_argument(
        "--telemetry-overhead-factor", type=float, default=1.5,
        help="fail if the telemetry-enabled pass takes more than this "
        "multiple of the disabled baseline (plus a small absolute "
        "grace for timer noise)",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
    )
    args = parser.parse_args(argv)
    if args.log_level:
        configure(level=args.log_level)

    spec = machine_by_name(args.machine)
    app = application_by_name(args.app, args.workload)
    caps = (
        CRILL_POWER_LEVELS if spec.supports_power_cap else (spec.tdp_w,)
    )

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(args.cache_dir) if args.cache_dir else Path(tmp)
        cold_cache = ExperimentCache(root)
        t0 = time.perf_counter()
        cold = power_sweep(
            app, spec, caps, repeats=args.repeats,
            workers=args.workers, cache=cold_cache,
        )
        t_cold = time.perf_counter() - t0

        warm_cache = ExperimentCache(root)
        t0 = time.perf_counter()
        warm = power_sweep(
            app, spec, caps, repeats=args.repeats,
            workers=args.workers, cache=warm_cache,
        )
        t_warm = time.perf_counter() - t0

    cells = len(cold.results)
    log.info(
        "sweep smoke",
        app=app.label, machine=spec.name, cells=cells,
        cold_s=t_cold, warm_s=t_warm,
    )

    failures = []
    if _encode(warm) != _encode(cold):
        failures.append("warm-cache rerun differs from the cold sweep")
    if warm_cache.stats.hits != cells or warm_cache.stats.misses:
        failures.append(
            f"warm rerun was not fully cached "
            f"({warm_cache.stats.hits}/{cells} hits, "
            f"{warm_cache.stats.misses} misses)"
        )
    if t_warm > args.warm_budget_s:
        failures.append(
            f"warm rerun took {t_warm:.2f} s "
            f"(budget {args.warm_budget_s:.2f} s)"
        )

    if args.telemetry_dir:
        telemetry_dir = Path(args.telemetry_dir)
        telemetry_dir.mkdir(parents=True, exist_ok=True)
        traced, t_tel = _telemetry_pass(
            app, spec, caps, args, telemetry_dir
        )
        trace_path = export_chrome_trace(telemetry_dir)
        jsonl_files = sorted(telemetry_dir.glob("*.jsonl"))
        log.info(
            "telemetry pass",
            telemetry_s=t_tel, baseline_s=t_cold,
            files=len(jsonl_files), trace=str(trace_path),
        )
        if _encode(traced) != _encode(cold):
            failures.append(
                "telemetry-enabled sweep changed the measured results"
            )
        if not any(p.name.startswith("task-") for p in jsonl_files):
            failures.append(
                "telemetry pass produced no per-cell task-*.jsonl logs"
            )
        # 0.25 s absolute grace: sub-second CI baselines make a pure
        # ratio gate flaky on shared runners.
        budget = args.telemetry_overhead_factor * t_cold + 0.25
        if t_tel > budget:
            failures.append(
                f"telemetry-enabled sweep took {t_tel:.2f} s; budget "
                f"{budget:.2f} s "
                f"({args.telemetry_overhead_factor:.2f}x disabled "
                f"baseline {t_cold:.2f} s)"
            )

    for failure in failures:
        log.error("smoke FAIL", reason=failure)
    if not failures:
        log.info("smoke OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
