"""CI chaos target for the tuning service's degradation chain.

Boots a REAL ``repro serve`` daemon (background thread, ephemeral
port) with a hostile network plan armed on BOTH sides - refused
connects, hung/slow responses, torn and corrupt payloads, mid-write
server crashes (``examples/netfaults.json``) - then runs the same
short sweep three ways:

1. **service-less baseline** - the reference results;
2. **cold service under faults** - must be byte-identical to the
   baseline once the ``config source ...`` degradation notes are
   stripped: every network failure degrades to a correct local
   answer, and nothing else about the run changes;
3. **warm service rerun** - a second pass against the now-populated
   daemon; offline cells may skip tuning via service hits, but
   everything except ``tuning_runs`` must still match.

The run fails (exit 1) on any divergence or on any unhandled error
out of a sweep cell.  With ``--telemetry-dir`` the faulted passes run
under the telemetry bus, so the JSONL timeline of every fallback /
breaker / retry decision ships as a CI artifact.

Usage::

    PYTHONPATH=src python tools/service_chaos.py \
        --faults examples/netfaults.json --telemetry-dir out/
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from repro.experiments.cache import result_to_json
from repro.experiments.figures import power_sweep
from repro.faults.plan import load_fault_plan
from repro.machine.spec import machine_by_name
from repro.service.daemon import ThreadedDaemon
from repro.telemetry import JsonlSink, TelemetryBus, install
from repro.util.log import configure, get_logger
from repro.workloads.registry import application_by_name

log = get_logger("service_chaos")

_NOTE_PREFIX = "config source "


def _canonical(sweep, *, drop_tuning_runs: bool = False) -> str:
    """The sweep's full-fidelity JSON with service-chain degradation
    notes stripped (they are the *record* of surviving faults, not a
    measurement difference)."""
    blobs = {}
    for (label, strategy), result in sorted(sweep.results.items()):
        blob = result_to_json(result)
        blob["degradations"] = [
            d
            for d in blob["degradations"]
            if not d.startswith(_NOTE_PREFIX)
        ]
        if drop_tuning_runs:
            blob.pop("tuning_runs")
        blobs[f"{label}/{strategy}"] = blob
    return json.dumps(blobs, sort_keys=True)


def _service_notes(sweep) -> int:
    return sum(
        1
        for result in sweep.results.values()
        for d in result.degradations
        if d.startswith(_NOTE_PREFIX)
    )


def _run_sweep(app, spec, caps, args, *, service=None, telemetry=None):
    """One sweep pass (optionally against a service, optionally under
    telemetry); returns the PowerSweep."""
    plan = load_fault_plan(args.faults)
    kwargs = dict(
        repeats=args.repeats,
        seed=args.seed,
        fault_plan=plan,
        service=service,
    )
    if telemetry is None:
        return power_sweep(app, spec, caps, **kwargs)
    telemetry.mkdir(parents=True, exist_ok=True)
    parent = TelemetryBus(enabled=True)
    parent.add_sink(JsonlSink(telemetry / "service_chaos.jsonl"))
    parent.meta(
        tool="service_chaos",
        app=app.label,
        machine=spec.name,
        service=service or "",
    )
    previous = install(parent)
    try:
        return power_sweep(
            app,
            spec,
            caps,
            telemetry_dir=str(telemetry),
            **kwargs,
        )
    finally:
        install(previous)
        parent.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("--app", default="synthetic")
    parser.add_argument("--workload", default=None)
    parser.add_argument("--machine", default="crill")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--caps", type=float, nargs="+", default=[85.0],
        help="power caps (W) swept in each pass",
    )
    parser.add_argument(
        "--faults", default="examples/netfaults.json",
        help="fault plan armed on both the clients and the daemon",
    )
    parser.add_argument(
        "--telemetry-dir", default=None,
        help="write the faulted passes' telemetry JSONL here",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
    )
    args = parser.parse_args(argv)
    if args.log_level:
        configure(level=args.log_level)

    spec = machine_by_name(args.machine)
    app = application_by_name(args.app, args.workload)
    plan = load_fault_plan(args.faults)
    caps = tuple(args.caps)
    telemetry = (
        Path(args.telemetry_dir) if args.telemetry_dir else None
    )

    t0 = time.perf_counter()
    log.info(
        "service-less baseline pass",
        app=app.label,
        caps=list(caps),
        faults=args.faults,
    )
    baseline = _run_sweep(app, spec, caps, args)
    expected = _canonical(baseline)

    try:
        with tempfile.TemporaryDirectory() as tmp:
            with ThreadedDaemon(
                Path(tmp) / "store", fault_plan=plan
            ) as td:
                host, port = td.address
                address = f"{host}:{port}"
                log.info(
                    "cold faulted service pass", service=address
                )
                cold = _run_sweep(
                    app,
                    spec,
                    caps,
                    args,
                    service=address,
                    telemetry=telemetry,
                )
                if _canonical(cold) != expected:
                    raise AssertionError(
                        "cold service pass diverged from the "
                        "service-less baseline (beyond config-source "
                        "degradation notes)"
                    )

                log.info("warm faulted service pass", service=address)
                warm = _run_sweep(
                    app,
                    spec,
                    caps,
                    args,
                    service=address,
                    telemetry=telemetry,
                )
                if _canonical(
                    warm, drop_tuning_runs=True
                ) != _canonical(baseline, drop_tuning_runs=True):
                    raise AssertionError(
                        "warm service pass diverged from the "
                        "service-less baseline (beyond tuning_runs "
                        "and degradation notes)"
                    )

                # same process: read the daemon directly rather than
                # risking one last faulted network round-trip
                requests = td.daemon.requests
                store_stats = td.daemon.store.stats_json()
    except AssertionError as exc:
        log.error("service chaos FAIL", reason=str(exc))
        return 1

    log.info(
        "service chaos OK",
        cells=len(baseline.results),
        cold_fallback_notes=_service_notes(cold),
        warm_fallback_notes=_service_notes(warm),
        daemon_requests=requests,
        daemon_entries=store_stats["entries"],
        daemon_hits=store_stats["hits"],
        elapsed_s=round(time.perf_counter() - t0, 2),
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
