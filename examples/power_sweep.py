#!/usr/bin/env python
"""Power-cap sweep: how the optimal configuration shifts with the cap.

Sweeps the paper's five Crill power levels (55/70/85/100/115 W), tunes
SP with ARCS-Offline at each level, and shows (a) normalized time and
energy per level and (b) how the chosen per-region configurations
change with the cap - the Section II motivation ("the optimal
configurations for these kernels change across different power levels").

Run:  python examples/power_sweep.py
"""

from repro import (
    CRILL_POWER_LEVELS,
    ExperimentSetup,
    crill,
    run_arcs_offline,
    run_default,
    sp_application,
)
from repro.core.history import HistoryStore
from repro.util.tables import format_table


def main() -> None:
    app = sp_application("B")
    spec = crill()
    history = HistoryStore()

    rows = []
    configs_by_cap = {}
    for cap in CRILL_POWER_LEVELS:
        cap_arg = None if cap >= spec.tdp_w else cap
        label = "TDP" if cap_arg is None else f"{cap:g}W"
        setup = ExperimentSetup(spec=spec, cap_w=cap_arg, repeats=3)
        base = run_default(app, setup)
        offline = run_arcs_offline(app, setup, history=history)
        rows.append(
            (
                label,
                f"{base.time_s:.2f}",
                f"{offline.time_s / base.time_s:.3f}",
                f"{offline.energy_j / base.energy_j:.3f}",
            )
        )
        configs_by_cap[label] = offline.chosen_configs
        print(f"  {label}: done")

    print()
    print(
        format_table(
            ("power", "default time (s)", "ARCS time (norm)",
             "ARCS energy (norm)"),
            rows,
            title="SP-B, ARCS-Offline vs default across power levels",
        )
    )

    print("\nChosen configuration for y_solve at each power level:")
    for label, configs in configs_by_cap.items():
        print(f"  {label:5s} -> {configs['y_solve'].label()}")


if __name__ == "__main__":
    main()
