#!/usr/bin/env python
"""Watching ARCS-Online converge, region call by region call.

Attaches ARCS with the Nelder-Mead strategy to a single imbalanced
synthetic region and prints every execution: the configuration the
tuning session proposed and the measured region time.  The trace shows
the Section III-C *search overhead* - early candidate configurations
are slow - and the convergence to a configuration that beats the
default.

Run:  python examples/online_convergence.py
"""

from repro import ARCS, OpenMPRuntime, SimulatedNode, crill
from repro.openmp.ompt import OmptEvent
from repro.workloads.synthetic import imbalanced_region


def main() -> None:
    node = SimulatedNode(crill())
    runtime = OpenMPRuntime(node, seed=11, noise_sigma=0.005)
    node.set_power_cap(85.0)
    node.settle_after_cap()

    region = imbalanced_region(iterations=1024, amplitude=0.8)

    # measure the default configuration first
    baseline = runtime.parallel_for(region).time_s
    print(f"default config (32, static, default): {baseline * 1e3:.3f} ms")
    print()

    arcs = ARCS(runtime, strategy="nelder-mead", max_evals=30)
    arcs.attach()

    trace = []
    runtime.ompt.register(
        OmptEvent.PARALLEL_END,
        lambda payload: trace.append(
            (payload.record.config.label(), payload.record.time_s)
        ),
    )

    print("call  configuration             time (ms)   vs default")
    for call in range(1, 41):
        runtime.parallel_for(region)
        config, time_s = trace[-1]
        marker = " <- converged" if arcs.converged and call > 1 else ""
        print(
            f"{call:4d}  {config:24s} {time_s * 1e3:9.3f}   "
            f"{100 * (time_s / baseline - 1):+6.1f}%{marker}"
        )

    session = arcs.policy.sessions()[region.name]
    print()
    print(f"converged after {session.stats.converged_at_report} "
          f"measurements; best = {arcs.chosen_configs()[region.name].label()}")
    report = arcs.overhead_report()
    print(f"search overhead: {report.search_s * 1e3:.2f} ms "
          f"(sub-optimal candidates tried during the search)")
    arcs.finalize()


if __name__ == "__main__":
    main()
