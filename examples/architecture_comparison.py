#!/usr/bin/env python
"""Architecture comparison: the same application on Crill vs Minotaur.

The paper validates ARCS "across different architectures" (Intel Sandy
Bridge with 2-way HT vs IBM POWER8 with SMT-8).  This example runs SP
class B on both simulated machines and shows how the default
configuration's pathologies - and the configurations ARCS picks -
differ with the architecture.  Minotaur has no energy counters, so its
column reports time only (as in the paper).

Run:  python examples/architecture_comparison.py
"""

from repro import (
    ExperimentSetup,
    crill,
    minotaur,
    run_arcs_offline,
    run_default,
    sp_application,
)
from repro.util.tables import format_table


def main() -> None:
    app = sp_application("B")
    rows = []
    configs = {}
    for spec in (crill(), minotaur()):
        setup = ExperimentSetup(spec=spec, repeats=3)
        print(f"Running {app.label} on {spec.name} "
              f"({spec.total_hw_threads} hw threads, "
              f"summary={setup.summary_mode}) ...")
        base = run_default(app, setup)
        offline = run_arcs_offline(app, setup)
        gain = 100 * (1 - offline.time_s / base.time_s)
        rows.append(
            (
                spec.name,
                f"{base.time_s:.2f}",
                f"{offline.time_s:.2f}",
                f"{gain:+.1f}%",
                "-"
                if base.energy_j is None
                else f"{100 * (1 - offline.energy_j / base.energy_j):+.1f}%",
            )
        )
        configs[spec.name] = offline.chosen_configs

    print()
    print(
        format_table(
            ("machine", "default (s)", "ARCS-Offline (s)",
             "time gain", "energy gain"),
            rows,
            title="SP-B across architectures (TDP)",
        )
    )
    print("\nChosen configs for the four major regions:")
    majors = ("compute_rhs", "x_solve", "y_solve", "z_solve")
    cmp_rows = [
        (name, configs["crill"][name].label(),
         configs["minotaur"][name].label())
        for name in majors
    ]
    print(
        format_table(
            ("region", "crill", "minotaur"), cmp_rows,
        )
    )


if __name__ == "__main__":
    main()
