#!/usr/bin/env python
"""Quickstart: tune one OpenMP application under a power cap with ARCS.

Builds the simulated Crill node (dual-socket Sandy Bridge), caps each
package at 85 W via RAPL, runs NPB SP class B with the default OpenMP
configuration, then with ARCS-Online (Nelder-Mead tuning in the same
run) and ARCS-Offline (exhaustive tuning run + replayed best configs),
and prints the comparison - a miniature of the paper's Figure 4.

Run:  python examples/quickstart.py
"""

from repro import (
    ExperimentSetup,
    crill,
    run_arcs_offline,
    run_arcs_online,
    run_default,
    sp_application,
)
from repro.util.tables import format_table


def main() -> None:
    app = sp_application("B")
    setup = ExperimentSetup(spec=crill(), cap_w=85.0, repeats=3)

    print(f"Running {app.label} on {setup.spec.name} @ {setup.cap_w} W "
          f"(3 repeats, mean reported) ...")
    base = run_default(app, setup)
    online = run_arcs_online(app, setup)
    offline = run_arcs_offline(app, setup)

    rows = []
    for result in (base, online, offline):
        rows.append(
            (
                result.strategy,
                f"{result.time_s:.3f}",
                f"{result.time_s / base.time_s:.3f}",
                f"{result.energy_j:.1f}",
                f"{result.energy_j / base.energy_j:.3f}",
            )
        )
    print()
    print(
        format_table(
            ("strategy", "time (s)", "norm", "pkg energy (J)", "norm"),
            rows,
            title=f"{app.label} under an {setup.cap_w:g} W package cap",
        )
    )

    print("\nPer-region configurations chosen by ARCS-Offline:")
    for region, config in sorted(offline.chosen_configs.items()):
        print(f"  {region:16s} -> {config.label()}")


if __name__ == "__main__":
    main()
