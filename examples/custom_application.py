#!/usr/bin/env python
"""Tuning your own application: define regions, attach ARCS directly.

Shows the lower-level public API: build :class:`RegionProfile`s with
explicit compute/memory/imbalance characteristics, assemble an
:class:`Application`, drive the :class:`OpenMPRuntime` yourself, and
attach an :class:`ARCS` controller with a history file so a second
process run skips the search ("the saved values can be used instead of
repeating the search process").

Run:  python examples/custom_application.py
"""

from pathlib import Path
from tempfile import TemporaryDirectory

from repro import (
    ARCS,
    Application,
    HistoryStore,
    ImbalanceSpec,
    OpenMPRuntime,
    RegionCall,
    RegionProfile,
    SimulatedNode,
    crill,
    experiment_key,
    run_application,
)
from repro.machine.cache import MemoryProfile
from repro.util.units import MIB


def build_app() -> Application:
    """A made-up solver: one imbalanced assembly loop plus one
    bandwidth-hungry smoother."""
    assembly = RegionProfile(
        name="assemble_matrix",
        iterations=4096,
        cpu_ns_per_iter=4.0e4,
        memory=MemoryProfile(
            bytes_per_iter=512.0,
            stride_bytes=8.0,
            footprint_bytes=24 * MIB,
            reuse_fraction=0.55,
        ),
        # boundary rows cost 2.5x interior rows
        imbalance=ImbalanceSpec(
            kind="step", amplitude=1.5, heavy_fraction=0.1
        ),
    )
    smoother = RegionProfile(
        name="jacobi_smooth",
        iterations=512,
        cpu_ns_per_iter=1.5e5,
        memory=MemoryProfile(
            bytes_per_iter=256.0e3,
            stride_bytes=8.0,
            footprint_bytes=96 * MIB,
            reuse_fraction=0.75,
            reuse_window_bytes=8 * MIB,
        ),
        imbalance=ImbalanceSpec(kind="random", amplitude=0.03),
    )
    return Application(
        name="mysolver",
        workload="demo",
        step_sequence=(
            RegionCall(region=assembly),
            RegionCall(region=smoother),
        ),
        timesteps=50,
    )


def main() -> None:
    with TemporaryDirectory() as tmp:
        history_path = Path(tmp) / "arcs_history.json"
        app = build_app()
        key = experiment_key(app.name, "crill", 70.0, app.workload)

        # --- first run: ARCS-Online searches and saves its results ----
        node = SimulatedNode(crill())
        runtime = OpenMPRuntime(node, seed=1)
        node.set_power_cap(70.0)
        node.settle_after_cap()

        baseline = run_application(app, OpenMPRuntime(SimulatedNode(
            crill()), seed=1))

        arcs = ARCS(
            runtime,
            strategy="nelder-mead",
            history=HistoryStore(history_path),
            history_key=key,
        )
        arcs.attach()
        tuned = run_application(app, runtime)
        arcs.finalize()

        print(f"default : {baseline.time_s:.3f} s")
        print(f"online  : {tuned.time_s:.3f} s "
              f"({100 * (1 - tuned.time_s / baseline.time_s):+.1f}%)")
        print("chosen configs:")
        for region, config in sorted(arcs.chosen_configs().items()):
            print(f"  {region:16s} -> {config.label()}")
        report = arcs.overhead_report()
        print(f"overheads: config-change {report.config_change_s * 1e3:.1f} "
              f"ms, instrumentation {report.instrumentation_s * 1e3:.1f} ms, "
              f"search {report.search_s * 1e3:.1f} ms")

        # --- second run: replay from the history file ------------------
        node2 = SimulatedNode(crill())
        runtime2 = OpenMPRuntime(node2, seed=2)
        node2.set_power_cap(70.0)
        node2.settle_after_cap()
        arcs2 = ARCS(
            runtime2,
            history=HistoryStore(history_path),
            history_key=key,
            replay=True,
        )
        arcs2.attach()
        replayed = run_application(app, runtime2)
        arcs2.finalize()
        print(f"replayed: {replayed.time_s:.3f} s (no search this time, "
              f"best configs read from {history_path.name})")


if __name__ == "__main__":
    main()
