"""Strict power-budget enforcement.

Related-work positioning (Section VI): Bailey et al.'s adaptive scheme
"more than 10% of the time it violates the given power budget.  The
approach is not useful for a system working under a strict power
budget."  ARCS relies on RAPL doing the clamping, so the simulated
stack must never let average package power exceed the cap - for *any*
configuration, region type, or machine state.  These are
property-based acceptance tests of that guarantee.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.openmp.types import OMPConfig, ScheduleKind
from repro.workloads.sp import sp_application
from tests.test_openmp_engine import make_region

#: tolerance: RAPL controls a running average; tiny overshoot from the
#: discretized energy accounting is acceptable, 10%-style violations
#: are not.
_TOLERANCE = 1.02


def capped_engine(cap_w):
    node = SimulatedNode(crill())
    node.set_power_cap(cap_w)
    node.settle_after_cap()
    return ExecutionEngine(node)


@settings(max_examples=40, deadline=None)
@given(
    cap=st.sampled_from([55.0, 70.0, 85.0, 100.0]),
    n_threads=st.sampled_from([2, 4, 8, 16, 24, 32]),
    schedule=st.sampled_from(list(ScheduleKind)),
    chunk=st.sampled_from([None, 1, 32, 512]),
    cpu_ns=st.floats(1e4, 2e6),
)
def test_no_configuration_violates_the_cap(
    cap, n_threads, schedule, chunk, cpu_ns
):
    engine = capped_engine(cap)
    region = make_region(iterations=400, cpu_ns=cpu_ns)
    rec = engine.execute(region, OMPConfig(n_threads, schedule, chunk))
    per_package = rec.avg_power_w / crill().sockets
    assert per_package <= cap * _TOLERANCE


@pytest.mark.parametrize("cap", [55.0, 70.0, 85.0, 100.0])
def test_sp_regions_respect_budget(cap):
    """Every SP region under the default config stays within budget."""
    engine = capped_engine(cap)
    dflt = OMPConfig(32, ScheduleKind.STATIC, None)
    for rc in sp_application("B").step_sequence:
        rec = engine.execute(rc.region, dflt)
        assert rec.avg_power_w / crill().sockets <= cap * _TOLERANCE


def test_budget_holds_through_whole_application():
    """Average power over a full ARCS-tuned run stays within the cap
    (the app-level statement of the strict-budget property)."""
    from repro.experiments.runner import ExperimentSetup, run_arcs_online

    setup = ExperimentSetup(spec=crill(), cap_w=70.0, repeats=1)
    result = run_arcs_online(sp_application("B"), setup)
    avg_power = result.energy_j / result.time_s
    assert avg_power / crill().sockets <= 70.0 * _TOLERANCE


def test_uncapped_power_bounded_by_physics():
    """Without a cap, power is bounded by turbo physics, not by TDP."""
    node = SimulatedNode(crill())
    engine = ExecutionEngine(node)
    rec = engine.execute(
        make_region(cpu_ns=1e6), OMPConfig(32)
    )
    max_possible = 2 * node.power.package_power_w(
        crill().turbo_freq_ghz, n_active=8
    )
    assert rec.avg_power_w <= max_possible