"""Tests for the APEX layer: timers, profiles, introspection, policy
engine and the OMPT bridge."""

from __future__ import annotations

import pytest

from repro.apex.instrument import APEX_EVENT_OVERHEAD_S, ApexOmptBridge
from repro.apex.introspection import Introspection
from repro.apex.policy import Policy, PolicyEngine, TimerEventContext
from repro.apex.profile import ApexProfile
from repro.apex.timers import TimerRegistry
from tests.test_openmp_engine import make_region


class TestTimerRegistry:
    def test_start_stop_elapsed(self):
        reg = TimerRegistry()
        reg.start("t", now_s=1.0)
        assert reg.stop("t", now_s=3.5) == pytest.approx(2.5)

    def test_first_encounter_flag(self):
        reg = TimerRegistry()
        _, first = reg.start("t", 0.0)
        assert first
        reg.stop("t", 1.0)
        _, first = reg.start("t", 2.0)
        assert not first

    def test_double_start_rejected(self):
        reg = TimerRegistry()
        reg.start("t", 0.0)
        with pytest.raises(RuntimeError):
            reg.start("t", 1.0)

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            TimerRegistry().stop("t", 1.0)

    def test_seen_and_counts(self):
        reg = TimerRegistry()
        reg.start("a", 0.0)
        reg.stop("a", 1.0)
        reg.start("b", 1.0)
        assert reg.seen() == {"a", "b"}
        assert reg.total_starts == 2
        assert reg.is_running("b") and not reg.is_running("a")


class TestApexProfile:
    def test_streaming_stats(self):
        prof = ApexProfile()
        for v in (1.0, 3.0, 2.0):
            prof.observe("t", v)
        stats = prof.stats("t")
        assert stats.calls == 3
        assert stats.total_s == 6.0
        assert stats.min_s == 1.0
        assert stats.max_s == 3.0
        assert stats.last_s == 2.0
        assert stats.mean_s == pytest.approx(2.0)

    def test_unknown_timer(self):
        with pytest.raises(KeyError):
            ApexProfile().stats("missing")

    def test_top_by_total(self):
        prof = ApexProfile()
        prof.observe("small", 1.0)
        prof.observe("big", 10.0)
        prof.observe("mid", 5.0)
        tops = prof.top_by_total(2)
        assert [t.name for t in tops] == ["big", "mid"]

    def test_negative_rejected(self):
        prof = ApexProfile()
        with pytest.raises(ValueError):
            prof.observe("t", -1.0)


class TestIntrospection:
    def test_energy_readback(self, crill_node):
        intro = Introspection(crill_node)
        crill_node.advance(0.01)
        crill_node.deposit_energy(0, 2.0)
        assert intro.package_energy_j() == pytest.approx(2.0, abs=0.01)

    def test_current_power_sampling(self, crill_node):
        intro = Introspection(crill_node)
        intro.current_power_w()           # establish the baseline
        crill_node.advance(0.5)
        crill_node.deposit_energy(0, 50.0)
        assert intro.current_power_w() == pytest.approx(100.0, rel=0.01)

    def test_power_caps_visible(self, crill_node):
        intro = Introspection(crill_node)
        crill_node.set_power_cap(70.0)
        crill_node.settle_after_cap()
        assert intro.power_caps_w() == (70.0, 70.0)


class _RecordingPolicy(Policy):
    name = "recording"

    def __init__(self):
        self.events = []

    def on_startup(self, engine):
        self.events.append("startup")

    def on_timer_start(self, context):
        self.events.append(("start", context.timer_name))

    def on_timer_stop(self, context):
        self.events.append(("stop", context.timer_name))

    def on_periodic(self, now_s):
        self.events.append(("tick", now_s))

    def on_shutdown(self):
        self.events.append("shutdown")


class TestPolicyEngine:
    def make_engine(self, node):
        return PolicyEngine(introspection=Introspection(node))

    def test_startup_on_register(self, crill_node):
        engine = self.make_engine(crill_node)
        policy = _RecordingPolicy()
        engine.register(policy)
        assert policy.events == ["startup"]

    def test_double_register_rejected(self, crill_node):
        engine = self.make_engine(crill_node)
        policy = _RecordingPolicy()
        engine.register(policy)
        with pytest.raises(ValueError):
            engine.register(policy)

    def test_timer_events_dispatched(self, crill_node):
        engine = self.make_engine(crill_node)
        policy = _RecordingPolicy()
        engine.register(policy)
        engine.timer_started(
            TimerEventContext("r", now_s=0.0, first_encounter=True)
        )
        engine.timer_stopped(
            TimerEventContext(
                "r", now_s=1.0, first_encounter=True, elapsed_s=1.0
            )
        )
        assert ("start", "r") in policy.events
        assert ("stop", "r") in policy.events

    def test_stop_updates_profile(self, crill_node):
        engine = self.make_engine(crill_node)
        engine.timer_stopped(
            TimerEventContext(
                "r", now_s=1.0, first_encounter=True, elapsed_s=0.4
            )
        )
        assert engine.profile.stats("r").total_s == pytest.approx(0.4)

    def test_stop_requires_elapsed(self, crill_node):
        engine = self.make_engine(crill_node)
        with pytest.raises(ValueError):
            engine.timer_stopped(
                TimerEventContext("r", now_s=1.0, first_encounter=True)
            )

    def test_periodic_fires_when_time_passes(self, crill_node):
        engine = self.make_engine(crill_node)
        policy = _RecordingPolicy()
        engine.register(policy, period_s=1.0)
        crill_node.advance(2.5)
        engine.timer_started(
            TimerEventContext("r", now_s=2.5, first_encounter=True)
        )
        ticks = [e for e in policy.events if e[0] == "tick"]
        assert len(ticks) == 2

    def test_deregister(self, crill_node):
        engine = self.make_engine(crill_node)
        policy = _RecordingPolicy()
        engine.register(policy)
        engine.deregister(policy)
        engine.timer_started(
            TimerEventContext("r", now_s=0.0, first_encounter=True)
        )
        assert ("start", "r") not in policy.events

    def test_shutdown_notifies(self, crill_node):
        engine = self.make_engine(crill_node)
        policy = _RecordingPolicy()
        engine.register(policy)
        engine.shutdown()
        assert "shutdown" in policy.events


class TestApexOmptBridge:
    def test_timers_driven_by_region_execution(self, runtime):
        bridge = ApexOmptBridge(runtime)
        bridge.attach()
        rec = runtime.parallel_for(make_region(name="br"))
        stats = bridge.policy_engine.profile.stats("br")
        assert stats.calls == 1
        # elapsed covers the region plus the stop-side instrumentation
        assert stats.total_s >= rec.time_s

    def test_instrumentation_overhead_charged(self, runtime):
        bridge = ApexOmptBridge(runtime)
        bridge.attach()
        runtime.parallel_for(make_region())
        assert bridge.instrumentation_time_s == pytest.approx(
            2 * APEX_EVENT_OVERHEAD_S
        )

    def test_policy_sees_first_encounter(self, runtime):
        bridge = ApexOmptBridge(runtime)
        bridge.attach()
        policy = _RecordingPolicy()
        bridge.policy_engine.register(policy)
        runtime.parallel_for(make_region(name="x"))
        runtime.parallel_for(make_region(name="x"))
        starts = [e for e in policy.events if e[0] == "start"]
        assert len(starts) == 2

    def test_double_attach_rejected(self, runtime):
        bridge = ApexOmptBridge(runtime)
        bridge.attach()
        with pytest.raises(RuntimeError):
            bridge.attach()

    def test_detach_stops_instrumentation(self, runtime):
        bridge = ApexOmptBridge(runtime)
        bridge.attach()
        bridge.detach()
        runtime.parallel_for(make_region())
        assert bridge.instrumentation_time_s == 0.0

    def test_shutdown_idempotent_detach(self, runtime):
        bridge = ApexOmptBridge(runtime)
        bridge.attach()
        bridge.shutdown()
        with pytest.raises(RuntimeError):
            bridge.detach()
