"""Property wall for the learned surrogate model.

The surrogate sits between cached measurements and live tuning
decisions, so the properties here are the ones the strategy and
cold-start layers lean on:

* fitting is deterministic under (corpus, seed) - byte-identical
  weights and saved JSON;
* predictions are finite for *arbitrary* region-context values,
  including NaNs and infinities (a surrogate that emits NaN would
  poison a tuning session's simplex);
* top-k prefixes nest, so recall of the truly-best configurations
  never degrades as k grows;
* save -> load -> predict round-trips byte-identically.
"""

from __future__ import annotations

import json
import math

import pytest

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is an extra
    pytest.skip(
        "hypothesis is not installed", allow_module_level=True
    )

from repro.core.config import config_from_point, search_space_for
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.openmp.types import OMPConfig, ScheduleKind
from repro.surrogate.model import (
    FEATURE_VERSION,
    MODEL_SCHEMA_VERSION,
    RegionContext,
    SurrogateError,
    SurrogateModel,
    context_from_profile,
    fit_surrogate,
    load_model,
    save_model,
)
from repro.surrogate.corpus import TrainingRecord
from repro.workloads.registry import application_by_name

BOUNDED = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

APP = application_by_name("synthetic", "mixed")
SPEC = crill()
SPACE = search_space_for(SPEC)
CAP_W = 85.0


def _corpus() -> list[TrainingRecord]:
    """Full-space sweep of the synthetic app's regions at one cap,
    measured noiselessly - small, fast, and fully resolvable."""
    node = SimulatedNode(SPEC)
    node.set_power_cap(CAP_W)
    node.settle_after_cap()
    engine = ExecutionEngine(node)
    records = []
    for profile in APP.regions():
        for indices in SPACE.iter_indices():
            config = config_from_point(SPACE.decode(indices))
            time_s = engine._simulate(profile, config).time_s
            records.append(
                TrainingRecord(
                    app=APP.label,
                    machine=SPEC.name,
                    region=profile.name,
                    cap_w=CAP_W,
                    n_threads=config.n_threads,
                    schedule=config.schedule.value,
                    chunk=config.chunk,
                    time_s=time_s,
                    energy_j=None,
                    source="cache",
                    provenance="test_surrogate_model",
                )
            )
    return records


@pytest.fixture(scope="module")
def corpus():
    return _corpus()


@pytest.fixture(scope="module")
def model(corpus) -> SurrogateModel:
    fitted = fit_surrogate(corpus, seed=3)
    assert fitted.usable
    return fitted


def _configs() -> st.SearchStrategy[OMPConfig]:
    return st.builds(
        OMPConfig,
        n_threads=st.integers(min_value=1, max_value=128),
        schedule=st.sampled_from(list(ScheduleKind)),
        chunk=st.one_of(
            st.none(), st.integers(min_value=1, max_value=4096)
        ),
    )


_ANY_FLOAT = st.floats(allow_nan=True, allow_infinity=True)


def _contexts() -> st.SearchStrategy[RegionContext]:
    """Arbitrary - including degenerate - region contexts."""
    return st.builds(
        RegionContext,
        region_key=st.text(
            alphabet="ab.|=_0123456789", min_size=0, max_size=24
        ),
        machine=st.sampled_from(["crill", "whale_es2", "nowhere"]),
        tdp_w=_ANY_FLOAT,
        cap_w=st.one_of(st.none(), _ANY_FLOAT),
        iterations=_ANY_FLOAT,
        cpu_ns_per_iter=_ANY_FLOAT,
        serial_ns=_ANY_FLOAT,
        bytes_per_iter=_ANY_FLOAT,
        stride_bytes=_ANY_FLOAT,
        footprint_bytes=_ANY_FLOAT,
        reuse_fraction=_ANY_FLOAT,
        neighbourhood_bytes=_ANY_FLOAT,
        imb_kind=st.sampled_from(["none", "gaussian", "block", "?"]),
        imb_amplitude=_ANY_FLOAT,
    )


class TestFitDeterminism:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_same_corpus_and_seed_fit_byte_identically(
        self, corpus, tmp_path_factory, seed
    ):
        a = fit_surrogate(corpus, seed=seed)
        b = fit_surrogate(corpus, seed=seed)
        assert (a.weights == b.weights).all()
        assert a.report == b.report
        tmp = tmp_path_factory.mktemp("fits")
        save_model(a, tmp / "a.json")
        save_model(b, tmp / "b.json")
        assert (tmp / "a.json").read_bytes() == (
            tmp / "b.json"
        ).read_bytes()

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_mlp_refinement_is_deterministic(self, corpus, seed):
        a = fit_surrogate(corpus, seed=seed, mlp=True)
        b = fit_surrogate(corpus, seed=seed, mlp=True)
        assert a.mlp is not None and b.mlp is not None
        for pa, pb in zip(a.mlp[:3], b.mlp[:3]):
            assert (pa == pb).all()
        assert a.mlp[3] == b.mlp[3]


class TestPredictionFiniteness:
    @BOUNDED
    @given(ctx=_contexts(), config=_configs())
    def test_prediction_is_finite_for_arbitrary_features(
        self, model, ctx, config
    ):
        assert math.isfinite(model.predict_log_time(ctx, config))


class TestTopKRecall:
    @pytest.fixture(scope="class")
    def ranking(self, model, corpus):
        """(ranked order, truly-relevant set) for one warm region."""
        profile = next(iter(APP.regions()))
        ctx = context_from_profile(
            APP.label, SPEC.name, CAP_W, profile, SPEC.tdp_w
        )
        ranked = model.rank(ctx, SPACE)
        true = {
            (r.n_threads, r.schedule, r.chunk): r.time_s
            for r in corpus
            if r.region == profile.name
        }

        def time_of(indices):
            config = config_from_point(SPACE.decode(indices))
            return true[
                (config.n_threads, config.schedule.value, config.chunk)
            ]

        relevant = set(sorted(ranked, key=time_of)[:10])
        return ranked, relevant

    @BOUNDED
    @given(data=st.data())
    def test_recall_never_degrades_as_k_grows(self, ranking, data):
        ranked, relevant = ranking
        k1 = data.draw(
            st.integers(min_value=1, max_value=len(ranked) - 1)
        )
        k2 = data.draw(
            st.integers(min_value=k1 + 1, max_value=len(ranked))
        )
        top1, top2 = set(ranked[:k1]), set(ranked[:k2])
        assert top1 <= top2  # prefixes nest
        recall1 = len(top1 & relevant) / len(relevant)
        recall2 = len(top2 & relevant) / len(relevant)
        assert recall2 >= recall1

    def test_full_space_recall_is_total(self, ranking):
        ranked, relevant = ranking
        assert set(ranked) >= relevant
        assert len(ranked) == SPACE.size
        assert len(set(ranked)) == SPACE.size  # a permutation


class TestPersistenceRoundTrip:
    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        mlp=st.booleans(),
    )
    def test_save_load_predict_round_trips_bytes(
        self, corpus, tmp_path_factory, seed, mlp
    ):
        tmp = tmp_path_factory.mktemp("roundtrip")
        fitted = fit_surrogate(corpus, seed=seed, mlp=mlp)
        save_model(fitted, tmp / "m.json")
        loaded = load_model(tmp / "m.json")
        save_model(loaded, tmp / "m2.json")
        assert (tmp / "m.json").read_bytes() == (
            tmp / "m2.json"
        ).read_bytes()
        profile = next(iter(APP.regions()))
        ctx = context_from_profile(
            APP.label, SPEC.name, CAP_W, profile, SPEC.tdp_w
        )
        for indices in list(SPACE.iter_indices())[:: SPACE.size // 9]:
            config = config_from_point(SPACE.decode(indices))
            assert fitted.predict_log_time(
                ctx, config
            ) == loaded.predict_log_time(ctx, config)
        assert loaded.report == fitted.report


class TestDegenerateFits:
    def test_empty_corpus_is_unusable_not_an_error(self):
        fitted = fit_surrogate([], seed=0)
        assert not fitted.usable
        assert "empty" in (fitted.report.reason or "")

    def test_unresolvable_records_are_counted(self, corpus):
        bogus = [
            TrainingRecord(
                app="no_such_app.X",
                machine="crill",
                region="nowhere",
                cap_w=None,
                n_threads=4,
                schedule="static",
                chunk=None,
                time_s=1.0,
                energy_j=None,
                source="cache",
                provenance="t",
            )
        ]
        fitted = fit_surrogate(corpus[:40] + bogus, seed=0)
        assert fitted.report.n_unresolvable == 1

    def test_all_unresolvable_reports_reason(self):
        bogus = TrainingRecord(
            app="no_such_app.X",
            machine="crill",
            region="nowhere",
            cap_w=None,
            n_threads=4,
            schedule="static",
            chunk=None,
            time_s=1.0,
            energy_j=None,
            source="cache",
            provenance="t",
        )
        fitted = fit_surrogate([bogus], seed=0)
        assert not fitted.usable
        assert "1 unresolvable" in (fitted.report.reason or "")


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SurrogateError, match="cannot read"):
            load_model(tmp_path / "missing.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"schema": ')
        with pytest.raises(SurrogateError, match="cannot read"):
            load_model(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": MODEL_SCHEMA_VERSION + 1}))
        with pytest.raises(SurrogateError, match="unsupported schema"):
            load_model(path)

    def test_wrong_feature_version(self, tmp_path, corpus):
        path = tmp_path / "refeatured.json"
        fitted = fit_surrogate(corpus[:40], seed=0)
        save_model(fitted, path)
        blob = json.loads(path.read_text())
        blob["feature_version"] = FEATURE_VERSION + 1
        path.write_text(json.dumps(blob))
        with pytest.raises(SurrogateError, match="feature version"):
            load_model(path)

    def test_truncated_weights(self, tmp_path, corpus):
        path = tmp_path / "short.json"
        fitted = fit_surrogate(corpus[:40], seed=0)
        save_model(fitted, path)
        blob = json.loads(path.read_text())
        blob["weights"] = blob["weights"][:-3]
        path.write_text(json.dumps(blob))
        with pytest.raises(SurrogateError, match="corrupt"):
            load_model(path)
