"""Tests for the analytic cache model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.cache import CacheModel, MemoryProfile
from repro.machine.spec import crill
from repro.util.units import MIB


@pytest.fixture
def model():
    return CacheModel(crill().cache)


def profile(**kw):
    defaults = dict(
        bytes_per_iter=4096.0,
        stride_bytes=8.0,
        footprint_bytes=32 * MIB,
        reuse_fraction=0.6,
    )
    defaults.update(kw)
    return MemoryProfile(**defaults)


class TestMemoryProfileValidation:
    def test_valid(self):
        profile()

    def test_bad_reuse(self):
        with pytest.raises(ValueError):
            profile(reuse_fraction=1.0)

    def test_bad_bytes(self):
        with pytest.raises(ValueError):
            profile(bytes_per_iter=0.0)

    def test_default_neighbourhood(self):
        p = profile(reuse_window_bytes=None)
        assert p.neighbourhood_bytes == pytest.approx(
            4 * p.bytes_per_iter
        )

    def test_explicit_neighbourhood(self):
        p = profile(reuse_window_bytes=1e6)
        assert p.neighbourhood_bytes == 1e6


class TestMissRateStructure:
    def test_rates_hierarchical(self, model):
        t = model.predict(profile(), 256, 8, 16, 16.0)
        assert 0.0 <= t.l3_miss_rate <= t.l2_miss_rate <= t.l1_miss_rate
        assert t.l1_miss_rate <= 1.0

    def test_unit_stride_low_l1(self, model):
        t = model.predict(profile(stride_bytes=8.0), 256, 8, 16, 16.0)
        assert t.l1_miss_rate < 0.3

    def test_long_stride_misses_every_access(self, model):
        t = model.predict(
            profile(stride_bytes=8192.0, reuse_fraction=0.0),
            256, 8, 16, 16.0,
        )
        assert t.l1_miss_rate > 0.9

    def test_stall_increases_with_stride(self, model):
        short = model.predict(profile(stride_bytes=8.0), 256, 8, 16, 16.0)
        long = model.predict(
            profile(stride_bytes=4096.0), 256, 8, 16, 16.0
        )
        assert long.stall_ns_per_access > short.stall_ns_per_access

    def test_dram_traffic_consistent_with_l3(self, model):
        t = model.predict(profile(), 256, 8, 16, 16.0)
        expected = (
            t.l3_miss_rate * t.accesses_per_iter * crill().cache.line_bytes
        )
        assert t.dram_bytes_per_iter == pytest.approx(expected)


class TestSharedL3Mechanism:
    """The paper's Section V-A mechanism: thread count and scheduling
    quantum shape shared-L3 behaviour."""

    def test_more_threads_more_l3_pressure(self, model):
        p = profile(footprint_bytes=40 * MIB, reuse_window_bytes=2 * MIB,
                    reuse_fraction=0.8)
        few = model.predict(p, 100, 4, 8, 100 / 8)
        many = model.predict(p, 100, 16, 32, 100 / 32)
        # compare the *local* L3 miss ratio (misses-of-L2-misses): the
        # global rate also reflects L1/L2 shifts with team size
        assert (
            many.l3_miss_rate / many.l2_miss_rate
            > few.l3_miss_rate / few.l2_miss_rate
        )

    def test_small_chunks_cluster_fronts(self, model):
        """Default static (chunk = N/threads) spreads fronts; chunk-1
        dynamic clusters them, improving L3 reuse."""
        p = profile(footprint_bytes=40 * MIB, reuse_window_bytes=2 * MIB,
                    reuse_fraction=0.8)
        spread = model.predict(p, 100, 16, 32, 100 / 32)
        clustered = model.predict(p, 100, 16, 32, 1.0)
        assert clustered.l3_miss_rate < spread.l3_miss_rate

    def test_smt_sharing_raises_l1_misses(self, model):
        p = profile()
        solo = model.predict(p, 256, 8, 16, 16.0, smt_share=1.0)
        shared = model.predict(p, 256, 16, 32, 16.0, smt_share=2.0)
        assert shared.l1_miss_rate > solo.l1_miss_rate

    def test_tiny_footprint_always_cache_friendly(self, model):
        p = profile(
            footprint_bytes=0.5 * MIB,
            reuse_window_bytes=0.1 * MIB,
            reuse_fraction=0.8,
        )
        t = model.predict(p, 1000, 16, 32, 1000 / 32)
        assert t.l3_miss_rate < 0.2


class TestUncoreScale:
    def test_uncore_scale_inflates_stall(self, model):
        p = profile()
        base = model.predict(p, 256, 8, 16, 16.0, uncore_scale=1.0)
        capped = model.predict(p, 256, 8, 16, 16.0, uncore_scale=1.5)
        assert capped.stall_ns_per_access > base.stall_ns_per_access


class TestArgumentValidation:
    def test_rejects_bad_iterations(self, model):
        with pytest.raises(ValueError):
            model.predict(profile(), 0, 8, 16, 16.0)

    def test_rejects_bad_threads(self, model):
        with pytest.raises(ValueError):
            model.predict(profile(), 256, 0, 16, 16.0)

    def test_rejects_bad_chunk(self, model):
        with pytest.raises(ValueError):
            model.predict(profile(), 256, 8, 16, 0.0)


@given(
    threads=st.integers(min_value=1, max_value=16),
    chunk=st.floats(min_value=1.0, max_value=128.0),
    stride=st.floats(min_value=8.0, max_value=16384.0),
    reuse=st.floats(min_value=0.0, max_value=0.95),
)
def test_rates_always_valid(threads, chunk, stride, reuse):
    model = CacheModel(crill().cache)
    p = profile(stride_bytes=stride, reuse_fraction=reuse)
    t = model.predict(p, 1024, threads, threads * 2, chunk)
    assert 0.0 <= t.l3_miss_rate <= t.l2_miss_rate <= t.l1_miss_rate <= 1.0
    assert t.stall_ns_per_access >= 0.0
    assert t.dram_bytes_per_iter >= 0.0
