"""Tests for the reporting-statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    geomean,
    improvement_pct,
    normalize,
    summarize_runs,
)


class TestSummarizeRuns:
    def test_mean_mode(self):
        assert summarize_runs([1.0, 2.0, 3.0], "mean") == pytest.approx(2.0)

    def test_min_mode(self):
        assert summarize_runs([3.0, 1.0, 2.0], "min") == pytest.approx(1.0)

    def test_single_value(self):
        assert summarize_runs([5.0], "mean") == 5.0
        assert summarize_runs([5.0], "min") == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([], "mean")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            summarize_runs([1.0], "median")

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=10))
    def test_min_leq_mean(self, values):
        assert summarize_runs(values, "min") <= summarize_runs(
            values, "mean"
        ) + 1e-9


class TestNormalize:
    def test_normalizes_to_baseline(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)

    def test_negative_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize([1.0], -1.0)


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geomean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=8))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestImprovementPct:
    def test_improvement(self):
        assert improvement_pct(10.0, 6.0) == pytest.approx(40.0)

    def test_regression_is_negative(self):
        assert improvement_pct(10.0, 12.0) == pytest.approx(-20.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            improvement_pct(0.0, 1.0)
