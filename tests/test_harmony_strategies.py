"""Tests for the Active Harmony search strategies.

A strategy is driven through the ask/tell protocol against synthetic
objectives; the key invariants: exhaustive finds the global optimum,
Nelder-Mead/PRO converge on well-behaved landscapes within budget,
every strategy respects the protocol, and all proposals stay in-space.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harmony.engine import STRATEGIES, make_strategy
from repro.harmony.exhaustive import ExhaustiveSearch
from repro.harmony.neldermead import NelderMeadSearch
from repro.harmony.pro import ParallelRankOrderSearch
from repro.harmony.random_search import RandomSearch
from repro.harmony.space import Parameter, SearchSpace
from repro.util.rng import rng_for


def small_space():
    return SearchSpace(
        parameters=(
            Parameter("x", tuple(range(6))),
            Parameter("y", tuple(range(5))),
            Parameter("z", tuple(range(4))),
        )
    )


def drive(strategy, objective, max_steps=10_000):
    """Run the ask/tell loop to convergence; returns evaluation count."""
    steps = 0
    while not strategy.converged and steps < max_steps:
        indices = strategy.ask()
        if indices is None:
            break
        strategy.tell(indices, objective(indices))
        steps += 1
    return steps


def convex(indices):
    """Smooth bowl with minimum at (2, 3, 1)."""
    target = (2, 3, 1)
    return 1.0 + sum((i - t) ** 2 for i, t in zip(indices, target))


class TestExhaustive:
    def test_visits_every_point_once(self):
        space = small_space()
        seen = []
        strategy = ExhaustiveSearch(space)
        drive(strategy, lambda idx: (seen.append(idx), 1.0)[1])
        assert len(seen) == space.size
        assert len(set(seen)) == space.size

    def test_finds_global_minimum(self):
        strategy = ExhaustiveSearch(small_space())
        drive(strategy, convex)
        best, value = strategy.best
        assert best == (2, 3, 1)
        assert value == 1.0

    def test_finds_minimum_of_random_landscape(self):
        space = small_space()
        rng = rng_for(11, "landscape")
        table = {
            idx: float(rng.uniform(0, 100))
            for idx in space.iter_indices()
        }
        strategy = ExhaustiveSearch(space)
        drive(strategy, lambda idx: table[idx])
        best, value = strategy.best
        assert value == min(table.values())
        assert table[best] == value

    def test_tell_must_match_ask(self):
        strategy = ExhaustiveSearch(small_space())
        strategy.ask()
        with pytest.raises(ValueError):
            strategy.tell((5, 4, 3), 1.0)

    def test_converged_after_enumeration(self):
        strategy = ExhaustiveSearch(small_space())
        drive(strategy, convex)
        assert strategy.converged
        assert strategy.ask() is None


class TestNelderMead:
    def test_converges_on_convex(self):
        strategy = NelderMeadSearch(small_space(), max_evals=60)
        evals = drive(strategy, convex)
        best, value = strategy.best
        assert value <= convex((3, 3, 1))  # at least near the bowl
        assert evals <= 60

    def test_respects_budget(self):
        strategy = NelderMeadSearch(small_space(), max_evals=10)
        evals = drive(strategy, convex)
        assert evals <= 10
        assert strategy.converged

    def test_proposals_stay_in_space(self):
        space = small_space()
        strategy = NelderMeadSearch(space, max_evals=60)

        def checked(indices):
            assert space.clamp(indices) == indices
            return convex(indices)

        drive(strategy, checked)

    def test_start_point_used_first(self):
        strategy = NelderMeadSearch(
            small_space(), max_evals=50, start=(5, 4, 3)
        )
        assert strategy.ask() == (5, 4, 3)

    def test_cached_revisits_cost_nothing(self):
        """Lattice rounding revisits points; those must not consume
        extra external evaluations."""
        strategy = NelderMeadSearch(small_space(), max_evals=100)
        seen = []

        def objective(indices):
            seen.append(indices)
            return convex(indices)

        drive(strategy, objective)
        assert len(seen) == len(set(seen))

    def test_much_cheaper_than_exhaustive(self):
        space = small_space()
        nm = NelderMeadSearch(space, max_evals=space.size)
        evals = drive(nm, convex)
        assert evals < space.size / 2


class TestPRO:
    def test_converges_on_convex(self):
        strategy = ParallelRankOrderSearch(small_space(), max_evals=80)
        drive(strategy, convex)
        _best, value = strategy.best
        assert value <= convex((3, 2, 2))

    def test_respects_budget(self):
        strategy = ParallelRankOrderSearch(small_space(), max_evals=12)
        assert drive(strategy, convex) <= 12

    def test_no_duplicate_external_evals(self):
        strategy = ParallelRankOrderSearch(small_space(), max_evals=100)
        seen = []
        drive(strategy, lambda idx: (seen.append(idx), convex(idx))[1])
        assert len(seen) == len(set(seen))


class TestRandomSearch:
    def test_distinct_samples(self):
        strategy = RandomSearch(small_space(), max_evals=30, seed=5)
        seen = []
        drive(strategy, lambda idx: (seen.append(idx), convex(idx))[1])
        assert len(seen) == 30
        assert len(set(seen)) == 30

    def test_budget_capped_at_space_size(self):
        space = small_space()
        strategy = RandomSearch(space, max_evals=10_000, seed=0)
        assert strategy.max_evals == space.size

    def test_seeded_reproducible(self):
        a = RandomSearch(small_space(), max_evals=10, seed=3)
        b = RandomSearch(small_space(), max_evals=10, seed=3)
        plan_a, plan_b = [], []
        drive(a, lambda idx: (plan_a.append(idx), 1.0)[1])
        drive(b, lambda idx: (plan_b.append(idx), 1.0)[1])
        assert plan_a == plan_b

    def test_tracks_best(self):
        strategy = RandomSearch(small_space(), max_evals=40, seed=1)
        drive(strategy, convex)
        best, value = strategy.best
        assert convex(best) == value


class TestFactory:
    @pytest.mark.parametrize("name", STRATEGIES)
    def test_every_strategy_constructible(self, name):
        strategy = make_strategy(name, small_space(), max_evals=20)
        drive(strategy, convex)
        assert strategy.best is not None

    def test_aliases(self):
        assert isinstance(
            make_strategy("nm", small_space()), NelderMeadSearch
        )

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("bayesian", small_space())


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(["nelder-mead", "pro", "random"]),
    seed=st.integers(0, 100),
)
def test_strategies_always_terminate_and_stay_in_space(name, seed):
    space = small_space()
    strategy = make_strategy(name, space, max_evals=30, seed=seed)
    rng = rng_for(seed, "objective")

    def objective(indices):
        assert space.clamp(indices) == indices
        return float(rng.uniform(0, 10))

    steps = drive(strategy, objective, max_steps=500)
    assert strategy.converged
    assert steps <= 500
    assert strategy.best is not None
