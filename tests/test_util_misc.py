"""Tests for validation, units and table-formatting helpers."""

from __future__ import annotations

import pytest

from repro.util.tables import format_table
from repro.util.units import GHZ, KIB, MIB, ghz, gib_per_s, ms, ns, us
from repro.util.validation import (
    require_in,
    require_nonnegative,
    require_positive,
)


class TestValidation:
    def test_require_positive_passes(self):
        assert require_positive("x", 1.5) == 1.5

    def test_require_positive_zero_fails(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive("x", 0)

    def test_require_nonnegative_zero_ok(self):
        assert require_nonnegative("x", 0) == 0

    def test_require_nonnegative_negative_fails(self):
        with pytest.raises(ValueError):
            require_nonnegative("x", -1)

    def test_require_in(self):
        assert require_in("x", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError):
            require_in("x", "c", ("a", "b"))


class TestUnits:
    def test_binary_sizes(self):
        assert KIB == 1024
        assert MIB == 1024 * 1024

    def test_time_conversions(self):
        assert ms(1) == pytest.approx(1e-3)
        assert us(1) == pytest.approx(1e-6)
        assert ns(1) == pytest.approx(1e-9)

    def test_frequency(self):
        assert ghz(2.4) == pytest.approx(2.4 * GHZ)

    def test_bandwidth(self):
        assert gib_per_s(1) == pytest.approx(2**30)


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(("a", "bb"), [("x", 1), ("yy", 22)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        out = format_table(("v",), [(1.23456789,)])
        assert "1.235" in out

    def test_row_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_wide_cells_expand_columns(self):
        out = format_table(("h",), [("a-very-long-cell",)])
        header, sep, row = out.splitlines()
        assert len(header) == len(sep) == len(row)
