"""Tests for the benchmark applications and their paper-mandated
characteristics."""

from __future__ import annotations

import pytest

from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.types import default_config
from repro.workloads.base import Application, RegionCall, run_application
from repro.workloads.bt import bt_application, bt_motivation_region
from repro.workloads.lulesh import lulesh_application
from repro.workloads.registry import application_by_name
from repro.workloads.sp import sp_application
from repro.workloads.synthetic import (
    cache_hostile_region,
    imbalanced_region,
    synthetic_application,
    tiny_region,
)


def default_records(app):
    """Execute every region once with the default config; return
    {name: record}."""
    engine = ExecutionEngine(SimulatedNode(crill()))
    cfg = default_config(32)
    return {
        rc.region.name: engine.execute(rc.region, cfg)
        for rc in app.step_sequence
    }


class TestSPCharacterization:
    """Section V-A: SP has 13 loop regions; ~75% of time in four."""

    def test_thirteen_regions(self):
        assert len(sp_application("B").step_sequence) == 13

    def test_major_four_dominate(self):
        app = sp_application("B")
        records = default_records(app)
        major = sum(
            records[n].time_s
            for n in ("compute_rhs", "x_solve", "y_solve", "z_solve")
        )
        total = sum(r.time_s for r in records.values())
        assert 0.65 <= major / total <= 0.9

    def test_solvers_poor_cache(self):
        """y/z solvers stride by rows/planes -> terrible L1 behaviour."""
        records = default_records(sp_application("B"))
        assert records["y_solve"].l1_miss_rate > 0.9
        assert records["z_solve"].l1_miss_rate > 0.9

    def test_compute_rhs_poor_balance(self):
        records = default_records(sp_application("B"))
        assert (
            records["compute_rhs"].barrier_fraction
            > records["x_solve"].barrier_fraction
        )

    def test_class_c_is_larger(self):
        b = default_records(sp_application("B"))
        c = default_records(sp_application("C"))
        assert c["x_solve"].time_s > 2 * b["x_solve"].time_s

    def test_invalid_class_rejected(self):
        with pytest.raises(ValueError):
            sp_application("D")


class TestBTCharacterization:
    """Section V-B: BT is well balanced with good cache behaviour,
    except compute_rhs (long-stride rhsz stencil)."""

    def test_twelve_regions(self):
        assert len(bt_application("B").step_sequence) == 12

    def test_solvers_well_behaved(self):
        records = default_records(bt_application("B"))
        for name in ("x_solve", "y_solve", "z_solve"):
            assert records[name].barrier_fraction < 0.10
            assert records[name].l3_miss_rate < 0.2

    def test_compute_rhs_long_stride(self):
        records = default_records(bt_application("B"))
        assert records["compute_rhs"].l1_miss_rate > 0.9

    def test_motivation_region_distinct(self):
        region = bt_motivation_region("B")
        assert region.name == "bt_x_solve_motivation"
        assert region.imbalance.amplitude > 0.1


class TestLULESHCharacterization:
    """Section V-C: tiny EOS/pressure regions with per-call times
    comparable to the 0.8 ms configuration-change overhead."""

    def test_nine_regions(self):
        assert len(lulesh_application(45).step_sequence) == 9

    def test_eval_eos_per_call_time(self):
        records = default_records(lulesh_application(45))
        per_call = records["EvalEOSForElems_"].time_s
        assert 0.4e-3 < per_call < 1.5e-3

    def test_calc_pressure_per_call_time(self):
        records = default_records(lulesh_application(45))
        per_call = records["CalcPressureForElems_"].time_s
        assert 0.8e-3 < per_call < 2.5e-3

    def test_tiny_regions_barrier_dominated(self):
        """Figure 9: EvalEOS's inclusive time is mostly barrier."""
        records = default_records(lulesh_application(45))
        rec = records["EvalEOSForElems_"]
        assert rec.barrier_fraction > 0.3

    def test_big_regions_nearly_perfectly_balanced(self):
        records = default_records(lulesh_application(45))
        assert records["CalcKinematicsForElems_"].barrier_fraction < 0.05
        assert (
            records["CalcMonotonicQGradientsForElems_"].barrier_fraction
            < 0.05
        )

    def test_eos_called_in_bursts(self):
        app = lulesh_application(45)
        calls = {
            rc.region.name: rc.calls for rc in app.step_sequence
        }
        assert calls["EvalEOSForElems_"] == 48
        assert calls["CalcPressureForElems_"] == 24

    def test_mesh_60_larger(self):
        r45 = default_records(lulesh_application(45))
        r60 = default_records(lulesh_application(60))
        assert (
            r60["CalcKinematicsForElems_"].time_s
            > 2 * r45["CalcKinematicsForElems_"].time_s
        )

    def test_invalid_mesh_rejected(self):
        with pytest.raises(ValueError):
            lulesh_application(50)


class TestApplicationModel:
    def test_duplicate_region_names_rejected(self):
        region = tiny_region()
        with pytest.raises(ValueError, match="duplicate"):
            Application(
                name="x",
                workload="w",
                step_sequence=(
                    RegionCall(region=region),
                    RegionCall(region=region),
                ),
                timesteps=1,
            )

    def test_region_call_validation(self):
        with pytest.raises(ValueError):
            RegionCall(region=tiny_region(), calls=0)

    def test_calls_per_step(self):
        app = lulesh_application(45)
        assert app.calls_per_step() == 7 + 48 + 24

    def test_label(self):
        assert sp_application("B").label == "sp.B"


class TestRunApplication:
    def test_accumulates_per_region_totals(self):
        node = SimulatedNode(crill())
        runtime = OpenMPRuntime(node, noise_sigma=0.0)
        app = synthetic_application(timesteps=3)
        result = run_application(app, runtime)
        assert result.total_region_calls == 3 * app.calls_per_step()
        for rc in app.step_sequence:
            totals = result.region_totals[rc.region.name]
            assert totals.calls == 3 * rc.calls
            assert totals.implicit_task_s > 0

    def test_wall_time_is_clock_delta(self):
        node = SimulatedNode(crill())
        runtime = OpenMPRuntime(node, noise_sigma=0.0)
        app = synthetic_application(timesteps=2)
        result = run_application(app, runtime)
        assert result.time_s == pytest.approx(node.now_s)

    def test_time_covers_region_totals(self):
        node = SimulatedNode(crill())
        runtime = OpenMPRuntime(node, noise_sigma=0.0)
        result = run_application(synthetic_application(timesteps=2),
                                 runtime)
        region_sum = sum(
            t.implicit_task_s for t in result.region_totals.values()
        )
        assert result.time_s == pytest.approx(region_sum, rel=1e-6)

    def test_energy_measured_on_crill(self):
        node = SimulatedNode(crill())
        runtime = OpenMPRuntime(node, noise_sigma=0.0)
        result = run_application(synthetic_application(timesteps=2),
                                 runtime)
        assert result.energy_j is not None and result.energy_j > 0

    def test_energy_none_on_minotaur(self, minotaur_node):
        runtime = OpenMPRuntime(minotaur_node, noise_sigma=0.0)
        result = run_application(synthetic_application(timesteps=1),
                                 runtime)
        assert result.energy_j is None


class TestSyntheticAndRegistry:
    def test_imbalanced_region_kinds(self):
        region = imbalanced_region(kind="sawtooth", amplitude=0.4)
        assert region.imbalance.kind == "sawtooth"

    def test_cache_hostile_profile(self):
        region = cache_hostile_region(stride_bytes=4096.0)
        assert region.memory.stride_bytes == 4096.0

    def test_registry_lookup(self):
        assert application_by_name("sp").label == "sp.B"
        assert application_by_name("bt", "C").label == "bt.C"
        assert application_by_name("lulesh", "60").label == "lulesh.60"
        assert application_by_name("synthetic").name == "synthetic"

    def test_registry_unknown(self):
        with pytest.raises(ValueError):
            application_by_name("miniFE")
