"""Tests for the OpenMP runtime facade: omp_* routines, OMPT dispatch,
configuration-change overhead and measurement noise."""

from __future__ import annotations

import pytest

from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.ompt import OmptEvent
from repro.openmp.runtime import CONFIG_CALL_OVERHEAD_S, OpenMPRuntime
from repro.openmp.types import ScheduleKind
from tests.test_openmp_engine import make_region


class TestOmpRoutines:
    def test_defaults(self, runtime):
        assert runtime.omp_get_max_threads() == 32
        assert runtime.omp_get_num_threads() == 32
        assert runtime.omp_get_schedule() == (ScheduleKind.STATIC, None)

    def test_set_num_threads(self, runtime):
        runtime.omp_set_num_threads(8)
        assert runtime.omp_get_num_threads() == 8

    def test_set_num_threads_bounds(self, runtime):
        with pytest.raises(ValueError):
            runtime.omp_set_num_threads(0)
        with pytest.raises(ValueError):
            runtime.omp_set_num_threads(33)

    def test_set_schedule(self, runtime):
        runtime.omp_set_schedule(ScheduleKind.GUIDED, 16)
        assert runtime.omp_get_schedule() == (ScheduleKind.GUIDED, 16)

    def test_set_schedule_validates(self, runtime):
        with pytest.raises(TypeError):
            runtime.omp_set_schedule("guided")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            runtime.omp_set_schedule(ScheduleKind.DYNAMIC, 0)

    def test_current_config(self, runtime):
        runtime.omp_set_num_threads(4)
        runtime.omp_set_schedule(ScheduleKind.DYNAMIC, 2)
        cfg = runtime.current_config()
        assert (cfg.n_threads, cfg.schedule, cfg.chunk) == (
            4, ScheduleKind.DYNAMIC, 2,
        )


class TestConfigChangeOverhead:
    """Section III-C: each omp_set_* call costs real time (~0.4 ms; two
    calls make the paper's ~0.8 ms per configuration change)."""

    def test_each_call_costs_time(self, runtime):
        t0 = runtime.node.now_s
        runtime.omp_set_num_threads(8)
        assert runtime.node.now_s - t0 == pytest.approx(
            CONFIG_CALL_OVERHEAD_S
        )

    def test_overhead_accumulates(self, runtime):
        runtime.omp_set_num_threads(8)
        runtime.omp_set_schedule(ScheduleKind.DYNAMIC, 1)
        assert runtime.config_change_calls == 2
        assert runtime.config_change_time_s == pytest.approx(
            2 * CONFIG_CALL_OVERHEAD_S
        )

    def test_full_change_near_paper_value(self, runtime):
        """Two routine calls ~ 0.8 ms, the paper's Crill measurement."""
        runtime.omp_set_num_threads(8)
        runtime.omp_set_schedule(ScheduleKind.GUIDED, 8)
        assert runtime.config_change_time_s == pytest.approx(0.8e-3)

    def test_overhead_burns_energy(self, runtime):
        runtime.omp_set_num_threads(8)
        assert runtime.node.read_package_energy_j() > 0


class TestParallelFor:
    def test_executes_with_current_config(self, runtime):
        runtime.omp_set_num_threads(4)
        rec = runtime.parallel_for(make_region())
        assert rec.config.n_threads == 4

    def test_noiseless_matches_engine(self, runtime):
        rec1 = runtime.parallel_for(make_region())
        rec2 = runtime.parallel_for(make_region())
        assert rec1.time_s == rec2.time_s

    def test_clock_advances_by_region_time(self, runtime):
        t0 = runtime.node.now_s
        rec = runtime.parallel_for(make_region())
        assert runtime.node.now_s - t0 == pytest.approx(rec.time_s)


class TestNoise:
    def test_noise_perturbs_time(self, noisy_runtime):
        r1 = noisy_runtime.parallel_for(make_region())
        r2 = noisy_runtime.parallel_for(make_region())
        assert r1.time_s != r2.time_s

    def test_noise_reproducible_by_seed(self):
        def run(seed):
            rt = OpenMPRuntime(
                SimulatedNode(crill()), seed=seed, noise_sigma=0.02
            )
            return [rt.parallel_for(make_region()).time_s for _ in range(5)]

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_noise_never_speeds_up(self, noisy_runtime):
        """Interference only adds time (floor at the deterministic
        value), so the min-of-3 methodology finds quiet runs."""
        det = OpenMPRuntime(SimulatedNode(crill()), noise_sigma=0.0)
        base = det.parallel_for(make_region()).time_s
        for _ in range(10):
            assert noisy_runtime.parallel_for(
                make_region()
            ).time_s >= base - 1e-12

    def test_noise_scales_energy_consistently(self, noisy_runtime):
        rec = noisy_runtime.parallel_for(make_region())
        assert rec.energy_j == pytest.approx(
            rec.avg_power_w * rec.time_s, rel=0.05
        )


class TestOmptDispatch:
    def test_no_tool_no_events(self, runtime):
        # has_tool() False -> no parallel ids consumed
        runtime.parallel_for(make_region())
        assert runtime.ompt._next_parallel_id == 1

    def test_begin_end_fired_in_order(self, runtime):
        events = []
        runtime.ompt.register(
            OmptEvent.PARALLEL_BEGIN, lambda p: events.append(("b", p))
        )
        runtime.ompt.register(
            OmptEvent.PARALLEL_END, lambda p: events.append(("e", p))
        )
        runtime.parallel_for(make_region(name="evented"))
        assert [k for k, _ in events] == ["b", "e"]
        begin, end = events[0][1], events[1][1]
        assert begin.region_name == end.region_name == "evented"
        assert begin.parallel_id == end.parallel_id
        assert end.timestamp_s > begin.timestamp_s

    def test_callback_can_change_this_execution(self, runtime):
        """ARCS's key hook: configuring inside PARALLEL_BEGIN affects
        the same region execution."""
        runtime.ompt.register(
            OmptEvent.PARALLEL_BEGIN,
            lambda p: runtime.omp_set_num_threads(2),
        )
        rec = runtime.parallel_for(make_region())
        assert rec.config.n_threads == 2

    def test_aggregate_events(self, runtime):
        durations = {}
        for ev in (
            OmptEvent.IMPLICIT_TASK,
            OmptEvent.WORK_LOOP,
            OmptEvent.SYNC_REGION_BARRIER,
        ):
            runtime.ompt.register(
                ev, lambda p, ev=ev: durations.setdefault(ev, p.duration_s)
            )
        rec = runtime.parallel_for(make_region())
        assert durations[OmptEvent.IMPLICIT_TASK] == pytest.approx(
            rec.time_s
        )
        assert durations[OmptEvent.WORK_LOOP] <= rec.time_s
        assert durations[OmptEvent.SYNC_REGION_BARRIER] >= 0
