"""Tests for the Active Harmony search-space abstraction."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harmony.space import Parameter, SearchSpace


@pytest.fixture
def space():
    return SearchSpace(
        parameters=(
            Parameter("threads", (2, 4, 8, 16)),
            Parameter("schedule", ("static", "dynamic", "guided")),
            Parameter("chunk", (None, 1, 8)),
        )
    )


class TestParameter:
    def test_cardinality(self):
        assert Parameter("p", (1, 2, 3)).cardinality == 3

    def test_value_index_roundtrip(self):
        p = Parameter("p", ("a", "b", "c"))
        for i, v in enumerate(p.values):
            assert p.value_at(i) == v
            assert p.index_of(v) == i

    def test_out_of_range(self):
        p = Parameter("p", (1, 2))
        with pytest.raises(IndexError):
            p.value_at(2)
        with pytest.raises(ValueError):
            p.index_of(99)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Parameter("p", ())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Parameter("p", (1, 1))


class TestSearchSpace:
    def test_size(self, space):
        assert space.size == 4 * 3 * 3

    def test_decode(self, space):
        point = space.decode((1, 2, 0))
        assert point == {"threads": 4, "schedule": "guided", "chunk": None}

    def test_encode_roundtrip(self, space):
        indices = (3, 0, 2)
        assert space.encode(space.decode(indices)) == indices

    def test_encode_missing_parameter(self, space):
        with pytest.raises(ValueError, match="missing"):
            space.encode({"threads": 2})

    def test_clamp(self, space):
        assert space.clamp((-1, 5, 1)) == (0, 2, 1)

    def test_arity_checked(self, space):
        with pytest.raises(ValueError):
            space.decode((0, 0))

    def test_iter_indices_complete_and_unique(self, space):
        points = list(space.iter_indices())
        assert len(points) == space.size
        assert len(set(points)) == space.size

    def test_iter_indices_in_bounds(self, space):
        for indices in space.iter_indices():
            assert space.clamp(indices) == indices

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(
                parameters=(Parameter("a", (1,)), Parameter("a", (2,)))
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(parameters=())


@given(
    st.tuples(
        st.integers(-10, 20), st.integers(-10, 20), st.integers(-10, 20)
    )
)
def test_clamp_always_valid(indices):
    space = SearchSpace(
        parameters=(
            Parameter("a", (1, 2, 3)),
            Parameter("b", ("x", "y")),
            Parameter("c", (0, 1, 2, 3, 4)),
        )
    )
    clamped = space.clamp(indices)
    # decoding the clamped vector never raises
    space.decode(clamped)
