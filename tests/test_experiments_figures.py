"""Tests for the figure/table generators (fast configurations)."""

from __future__ import annotations

import pytest

from repro.core.history import HistoryStore
from repro.experiments.figures import (
    FEATURES,
    SP_MAJOR_REGIONS,
    feature_comparison,
    fig1_motivation,
    fig9_lulesh_regions,
    power_sweep,
)
from repro.experiments.runner import ExperimentSetup
from repro.experiments.tables import (
    table1_search_space,
    table2_sp_optimal_configs,
)
from repro.machine.spec import crill
from repro.workloads.synthetic import synthetic_application


class TestTable1:
    def test_rows(self):
        rows = table1_search_space()
        assert len(rows) == 4
        assert rows[0].parameter.startswith("Number of threads (Crill")
        assert "guided" in rows[2].values
        assert rows[3].values.endswith("default")


class TestTable2:
    def test_uses_shared_history(self):
        history = HistoryStore()
        setup = ExperimentSetup(spec=crill(), repeats=1)
        rows1 = table2_sp_optimal_configs(setup, history=history)
        rows2 = table2_sp_optimal_configs(setup, history=history)
        assert rows1 == rows2
        assert [r.region for r in rows1] == list(SP_MAJOR_REGIONS)


class TestFig1:
    def test_row_structure(self):
        rows = fig1_motivation(caps=(55.0, 115.0), calls=10)
        capped = [r for r in rows if r.default_time_s is not None]
        nocap = [r for r in rows if r.default_time_s is None]
        assert len(capped) == 2
        assert len(nocap) == 5
        for row in capped:
            assert row.time_s <= row.default_time_s
            assert row.improvement_pct >= 0


class TestFeatureComparison:
    def test_synthetic_features_normalized(self):
        app = synthetic_application(timesteps=6, include_tiny=False)
        setup = ExperimentSetup(spec=crill(), repeats=1)
        comparison = feature_comparison(
            app, ("synthetic_imbalanced",), setup
        )
        feats = comparison.offline_normalized["synthetic_imbalanced"]
        assert set(feats) == set(FEATURES)
        assert all(v > 0 for v in feats.values())
        assert "synthetic_imbalanced" in comparison.offline_configs


class TestPowerSweep:
    def test_cells_complete(self):
        app = synthetic_application(timesteps=6, include_tiny=False)
        sweep = power_sweep(app, crill(), (85.0,), repeats=1)
        for strategy in ("default", "arcs-online", "arcs-offline"):
            cell = sweep.cells[("85W", strategy)]
            assert cell.time_norm > 0
            assert cell.energy_norm is not None
        assert sweep.cells[("85W", "default")].time_norm == 1.0

    def test_tdp_label(self):
        app = synthetic_application(timesteps=4, include_tiny=False)
        sweep = power_sweep(app, crill(), (115.0,), repeats=1)
        assert ("TDP", "default") in sweep.cells


class TestFig9:
    def test_tau_based_breakdown(self):
        setup = ExperimentSetup(spec=crill(), repeats=1)
        rows = fig9_lulesh_regions(setup, top=3)
        assert len(rows) == 3
        assert rows[0].implicit_task_s >= rows[1].implicit_task_s
        for row in rows:
            assert row.loop_s <= row.implicit_task_s * 1.05
            assert row.barrier_s >= 0
