"""Tests for the tuning-session ask/tell wrapper."""

from __future__ import annotations

import pytest

from repro.harmony.exhaustive import ExhaustiveSearch
from repro.harmony.neldermead import NelderMeadSearch
from repro.harmony.session import TuningSession
from repro.harmony.space import Parameter, SearchSpace


def space2():
    return SearchSpace(
        parameters=(
            Parameter("a", (0, 1, 2)),
            Parameter("b", (0, 1)),
        )
    )


def objective(point):
    return 1.0 + point["a"] + 2 * point["b"]


class TestSessionProtocol:
    def test_suggest_then_report_loop(self):
        space = space2()
        session = TuningSession(space, ExhaustiveSearch(space))
        while not session.converged:
            point = session.suggest()
            session.report(objective(point))
        assert session.best_point() == {"a": 0, "b": 0}
        assert session.best_value() == 1.0

    def test_repeated_suggest_returns_same_outstanding(self):
        space = space2()
        session = TuningSession(space, ExhaustiveSearch(space))
        p1 = session.suggest()
        p2 = session.suggest()
        assert p1 == p2

    def test_suggest_after_convergence_returns_best(self):
        space = space2()
        session = TuningSession(space, ExhaustiveSearch(space))
        while not session.converged:
            session.report(objective(session.suggest()))
        for _ in range(3):
            assert session.suggest() == {"a": 0, "b": 0}

    def test_reports_after_convergence_ignored_by_strategy(self):
        space = space2()
        session = TuningSession(space, ExhaustiveSearch(space))
        while not session.converged:
            session.report(objective(session.suggest()))
        best = session.best_value()
        session.suggest()
        session.report(0.0001)       # post-convergence measurement
        assert session.best_value() == best

    def test_invalid_objective_rejected(self):
        space = space2()
        session = TuningSession(space, ExhaustiveSearch(space))
        session.suggest()
        with pytest.raises(ValueError):
            session.report(-1.0)
        with pytest.raises(ValueError):
            session.report(float("nan"))

    def test_stats_track_convergence(self):
        space = space2()
        session = TuningSession(space, ExhaustiveSearch(space))
        while not session.converged:
            session.report(objective(session.suggest()))
        assert session.stats.converged_at_report == space.size
        assert session.stats.reports == space.size

    def test_search_values_recorded(self):
        space = space2()
        session = TuningSession(space, ExhaustiveSearch(space))
        while not session.converged:
            session.report(objective(session.suggest()))
        assert len(session.search_values) == space.size

    def test_mismatched_space_rejected(self):
        space = space2()
        other = SearchSpace(parameters=(Parameter("z", (1, 2)),))
        with pytest.raises(ValueError):
            TuningSession(other, ExhaustiveSearch(space))

    def test_works_with_simplex_strategy(self):
        space = space2()
        session = TuningSession(
            space, NelderMeadSearch(space, max_evals=20)
        )
        while not session.converged:
            session.report(objective(session.suggest()))
        assert session.best_point() is not None
