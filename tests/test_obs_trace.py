"""Trace-context propagation: one end-to-end test per process/layer
boundary, asserting parent/child span linkage and stable trace ids
under the repro seed - including with ``service.*`` and ``fleet.*``
fault sites armed."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.journal import SweepJournal
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    SweepTask,
    task_run_id,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.machine.spec import crill
from repro.obs.trace import (
    TraceContext,
    build_trace_trees,
    child_context,
    render_trace_tree,
    root_context,
    traced_span,
)
from repro.service.client import ServiceClient
from repro.service.daemon import ThreadedDaemon
from repro.telemetry import (
    JsonlSink,
    TelemetryBus,
    bus,
    install,
    load_telemetry_dir,
    read_jsonl,
)
from repro.workloads.synthetic import synthetic_application


def small_app():
    return synthetic_application(timesteps=8)


@pytest.fixture
def session(tmp_path):
    """An installed enabled bus with a rooted trace, mirroring what
    ``_telemetry_session`` sets up for a CLI command."""
    out = tmp_path / "tel"
    tb = TelemetryBus(enabled=True)
    tb.add_sink(JsonlSink(out / "session.jsonl"))
    tb.trace = root_context(command="test", seed=0)
    tb.meta(command="test", seed=0)
    previous = install(tb)
    try:
        yield tb, out
    finally:
        install(previous)
        tb.close()


def spans_by_name(records, name):
    return [
        r
        for r in records
        if r.get("type") == "span" and r.get("name") == name
    ]


class TestTraceContext:
    def test_traceparent_round_trip(self):
        ctx = root_context(command="run", seed=3)
        parsed = TraceContext.from_traceparent(ctx.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    def test_malformed_traceparent_is_none(self):
        for bad in (None, "", "garbage", "00-xyz-abc-01", 7):
            assert TraceContext.from_traceparent(bad) is None

    def test_root_context_is_deterministic(self):
        a = root_context(command="run", seed=3)
        b = root_context(seed=3, command="run")
        assert a == b  # identity is key-sorted, order-free

    def test_sibling_children_get_distinct_span_ids(self):
        tb = TelemetryBus(enabled=True)
        parent = root_context(command="x")
        a = child_context(tb, parent)
        b = child_context(tb, parent)
        assert a.trace_id == b.trace_id == parent.trace_id
        assert a.span_id != b.span_id
        assert a.parent_id == b.parent_id == parent.span_id


class TestCliToRunnerBoundary:
    def _run(self, out, seed=3):
        code = main(
            [
                "run", "--app", "synthetic", "--strategy",
                "arcs-online", "--repeats", "1", "--seed", str(seed),
                "--telemetry", str(out),
            ]
        )
        assert code == 0
        return load_telemetry_dir(out)

    def test_runner_spans_chain_to_session_root(self, tmp_path, capsys):
        loaded = self._run(tmp_path / "tel")
        trees = build_trace_trees(loaded)
        assert len(trees) == 1  # one CLI invocation, one trace
        (tree,) = trees.values()
        roots = tree["roots"]
        assert len(roots) == 1
        root = tree["nodes"][roots[0]]
        # the synthesized session node is labeled from the stamped meta
        assert root["name"] == "session:run"
        child_names = {
            tree["nodes"][c]["name"] for c in root["children"]
        }
        assert "run.strategy" in child_names
        strategy = next(
            tree["nodes"][c]
            for c in root["children"]
            if tree["nodes"][c]["name"] == "run.strategy"
        )
        grandchildren = {
            tree["nodes"][c]["name"] for c in strategy["children"]
        }
        assert "run.repeat" in grandchildren

    def test_trace_ids_stable_under_seed(self, tmp_path, capsys):
        a = self._run(tmp_path / "a")
        b = self._run(tmp_path / "b")
        assert set(build_trace_trees(a)) == set(build_trace_trees(b))

    def test_render_tree_cli(self, tmp_path, capsys):
        self._run(tmp_path / "tel")
        capsys.readouterr()
        assert main(["trace", str(tmp_path / "tel"), "--tree"]) == 0
        text = capsys.readouterr().out
        assert "session:run" in text
        assert "run.strategy" in text


class TestClientDaemonBoundary:
    def _exchange(self, tmp_path, fault_plan=None):
        """One get through a real daemon sharing the in-process bus;
        returns (client span record, serve span records, response)."""
        with ThreadedDaemon(
            tmp_path / "store", fault_plan=fault_plan
        ) as td:
            client = ServiceClient(td.address)
            client.put("some-key", {"payload": 1})
            with traced_span("test.op"):
                payload = client.get("some-key")
        assert payload == {"payload": 1}

    def test_serve_span_is_child_of_client_request(
        self, session, tmp_path
    ):
        tb, out = session
        self._exchange(tmp_path)
        tb.close()
        records = read_jsonl(out / "session.jsonl")
        [request] = [
            s
            for s in spans_by_name(records, "service.request")
            if s["attrs"].get("op") == "get"
        ]
        serves = [
            s
            for s in spans_by_name(records, "service.serve")
            if s["attrs"].get("op") == "get"
        ]
        assert serves, "daemon never recorded a serve span"
        req_trace = request["trace"]
        for serve in serves:
            assert serve["trace"]["trace_id"] == req_trace["trace_id"]
            assert serve["trace"]["parent_id"] == req_trace["span_id"]

    def test_linkage_survives_service_faults(self, session, tmp_path):
        tb, out = session
        faults = FaultPlan(
            specs=(
                FaultSpec(
                    "service.response", "hang", probability=0.4
                ),
                FaultSpec("service.payload", "torn", probability=0.3),
            ),
            seed=1789,
        )
        self._exchange(tmp_path, fault_plan=faults)
        tb.close()
        records = read_jsonl(out / "session.jsonl")
        [request] = [
            s
            for s in spans_by_name(records, "service.request")
            if s["attrs"].get("op") == "get"
        ]
        serves = [
            s
            for s in spans_by_name(records, "service.serve")
            if s["attrs"].get("op") == "get"
        ]
        # retries may produce several serve spans; every one is a
        # child of the SAME client request span
        assert serves
        for serve in serves:
            assert (
                serve["trace"]["parent_id"]
                == request["trace"]["span_id"]
            )

    def test_response_carries_daemon_span(self, session, tmp_path):
        tb, out = session
        with ThreadedDaemon(tmp_path / "store") as td:
            client = ServiceClient(td.address)
            with traced_span("test.op"):
                response = client.ping()
        parsed = TraceContext.from_traceparent(response.get("trace"))
        assert parsed is not None
        assert parsed.trace_id == tb.trace.trace_id


class TestFleetBoundary:
    def _run_fleet(self, out, faults=None):
        argv = [
            "fleet", "run", "--nodes", "3", "--max-steps", "12",
            "--telemetry", str(out),
        ]
        if faults is not None:
            argv += ["--faults", faults]
        assert main(argv) == 0
        return read_jsonl(out / "fleet.jsonl")

    def test_tune_spans_nest_under_steps(self, tmp_path, capsys):
        records = self._run_fleet(tmp_path / "tel")
        steps = spans_by_name(records, "fleet.step")
        tunes = spans_by_name(records, "fleet.tune")
        assert steps and tunes
        step_ids = {s["trace"]["span_id"] for s in steps}
        trace_ids = {s["trace"]["trace_id"] for s in steps}
        assert len(trace_ids) == 1  # one invocation, one trace
        for tune in tunes:
            assert tune["trace"]["trace_id"] in trace_ids
            assert tune["trace"]["parent_id"] in step_ids

    def test_nesting_survives_fleet_faults(self, tmp_path, capsys):
        import json

        plan = {
            "seed": 11,
            "faults": [
                {"site": "fleet.node", "action": "crash",
                 "start": 2, "max_fires": 1},
                {"site": "fleet.telemetry", "action": "partition",
                 "start": 4, "max_fires": 1},
                {"site": "fleet.cap_write", "action": "reject",
                 "probability": 0.3},
            ],
        }
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(plan))
        records = self._run_fleet(tmp_path / "tel", faults=str(path))
        steps = spans_by_name(records, "fleet.step")
        step_ids = {s["trace"]["span_id"] for s in steps}
        tunes = spans_by_name(records, "fleet.tune")
        assert tunes
        for tune in tunes:
            assert tune["trace"]["parent_id"] in step_ids

    def test_fleet_heartbeat_and_budget_events(self, tmp_path, capsys):
        records = self._run_fleet(tmp_path / "tel")
        names = {r.get("name") for r in records}
        assert "fleet.heartbeat" in names
        assert "fleet.budget_w" in names


class TestSweepWorkerBoundary:
    def _task(self, telemetry, trace=None):
        return SweepTask(
            app=small_app(), spec=crill(), cap_w=None,
            strategy="default", repeats=1, seed=0,
            telemetry_dir=str(telemetry), trace=trace,
        )

    def test_worker_adopts_parent_handoff(self, session, tmp_path):
        tb, out = session
        parent_trace_id = tb.trace.trace_id
        telemetry = tmp_path / "tel"
        executor = ParallelSweepExecutor()
        executor.run([self._task(telemetry)])
        tb.close()
        task = self._task(telemetry)
        records = read_jsonl(
            telemetry / f"task-{task_run_id(task)}.jsonl"
        )
        [strategy] = spans_by_name(records, "run.strategy")
        # the worker's spans join the parent sweep's trace
        assert strategy["trace"]["trace_id"] == parent_trace_id

    def test_trace_is_not_part_of_the_digest(self, tmp_path):
        plain = self._task(tmp_path / "a")
        handed = self._task(
            tmp_path / "a",
            trace=root_context(x=1).to_traceparent(),
        )
        assert task_run_id(plain) == task_run_id(handed)

    def test_journal_resume_reannounces_original_trace(
        self, session, tmp_path
    ):
        tb, out = session
        telemetry = tmp_path / "tel"
        journal_path = tmp_path / "sweep.journal"
        executor = ParallelSweepExecutor(
            journal=SweepJournal(journal_path)
        )
        executor.run([self._task(telemetry)])
        traces = SweepJournal(journal_path).traceparents()
        assert len(traces) == 1
        (original,) = traces.values()
        assert original.startswith("00-")
        assert (
            TraceContext.from_traceparent(original).trace_id
            == tb.trace.trace_id
        )

        resumed = ParallelSweepExecutor(
            journal=SweepJournal(journal_path), resume=True
        )
        results = resumed.run([self._task(telemetry)])
        assert len(results) == 1
        tb.close()
        records = read_jsonl(out / "session.jsonl")
        reuses = [
            r
            for r in records
            if r.get("name") == "sweep.task_reused"
        ]
        assert reuses
        assert reuses[-1]["attrs"]["trace_handoff"] == original


class TestCrossProcessSweep:
    def test_process_pool_workers_join_the_trace(
        self, session, tmp_path
    ):
        """Worker *processes* (not threads) adopt the handed-off
        context: the stitched tree spans os-level process
        boundaries."""
        tb, out = session
        telemetry = tmp_path / "tel"
        tasks = [
            SweepTask(
                app=small_app(), spec=crill(), cap_w=None,
                strategy=strategy, repeats=1, seed=0,
                telemetry_dir=str(telemetry),
            )
            for strategy in ("default", "arcs-online")
        ]
        ParallelSweepExecutor(max_workers=2).run(tasks)
        tb.close()
        loaded = load_telemetry_dir(telemetry)
        loaded.append(
            ("session", read_jsonl(out / "session.jsonl"))
        )
        trees = build_trace_trees(loaded)
        assert len(trees) == 1
        text = render_trace_tree(loaded)
        assert "run.strategy" in text
