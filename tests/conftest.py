"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.machine.node import SimulatedNode
from repro.machine.spec import crill, minotaur
from repro.openmp.runtime import OpenMPRuntime


@pytest.fixture
def crill_spec():
    return crill()


@pytest.fixture
def minotaur_spec():
    return minotaur()


@pytest.fixture
def crill_node(crill_spec):
    return SimulatedNode(crill_spec)


@pytest.fixture
def minotaur_node(minotaur_spec):
    return SimulatedNode(minotaur_spec)


@pytest.fixture
def runtime(crill_node):
    """A noiseless runtime on Crill (deterministic timings)."""
    return OpenMPRuntime(crill_node, noise_sigma=0.0)


@pytest.fixture
def noisy_runtime(crill_node):
    return OpenMPRuntime(crill_node, seed=7, noise_sigma=0.02)
