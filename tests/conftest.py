"""Shared fixtures for the test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.machine.node import SimulatedNode
from repro.machine.spec import crill, minotaur
from repro.openmp.runtime import OpenMPRuntime

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDENS_DIR = Path(__file__).resolve().parent / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden-master files under tests/goldens/ "
        "from the current outputs instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def goldens_dir() -> Path:
    return GOLDENS_DIR


def _results_files() -> set[Path]:
    results = REPO_ROOT / "results"
    if not results.is_dir():
        return set()
    return {p for p in results.rglob("*") if p.is_file()}


@pytest.fixture(autouse=True, scope="session")
def _guard_repo_results():
    """Fail the session if a test dirties the repo's ``results/`` tree.

    Tests must write through ``tmp_path``; ``results/`` belongs to the
    benchmark suite.  (See the testing section in README.md.)
    """
    before = _results_files()
    yield
    leaked = _results_files() - before
    if leaked:
        names = ", ".join(
            str(p.relative_to(REPO_ROOT)) for p in sorted(leaked)
        )
        pytest.fail(
            f"test run created files under results/: {names}; "
            "use tmp_path fixtures instead",
            pytrace=False,
        )


@pytest.fixture
def crill_spec():
    return crill()


@pytest.fixture
def minotaur_spec():
    return minotaur()


@pytest.fixture
def crill_node(crill_spec):
    return SimulatedNode(crill_spec)


@pytest.fixture
def minotaur_node(minotaur_spec):
    return SimulatedNode(minotaur_spec)


@pytest.fixture
def runtime(crill_node):
    """A noiseless runtime on Crill (deterministic timings)."""
    return OpenMPRuntime(crill_node, noise_sigma=0.0)


@pytest.fixture
def noisy_runtime(crill_node):
    return OpenMPRuntime(crill_node, seed=7, noise_sigma=0.02)
