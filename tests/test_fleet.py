"""Tests for the fault-tolerant fleet simulation.

The heart of this file is the budget-invariant property test: under
*any* seeded fleet-tier fault plan - crashes, hangs, dropped and
partitioned heartbeats, rejected cap writes, flapping membership, and
the deaths / reclamations / quarantines they trigger - the accounted
fleet power must never exceed the global cap at any step.  Around it
sit deterministic unit tests for each fleet layer (plan, membership,
allocator, journal), the chaos/resume contract, the CLI surface and
the analysis converters.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.records import (
    RecordTable,
    capsched_timeline_records,
    fleet_survival_records,
)
from repro.cli import build_parser, main
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet import (
    BudgetAllocator,
    BudgetInvariantError,
    FleetJournal,
    FleetJournalMismatchError,
    FleetNodeSpec,
    FleetPlan,
    FleetPlanError,
    FleetSimulation,
    MembershipTracker,
    fleet_plan_fingerprint,
    fleet_result_to_json,
    load_fleet_plan,
    render_fleet,
    save_fleet_plan,
    synthesize_fleet,
)
from repro.fleet.allocator import NodeBudgetInfo
from repro.fleet.events import (
    DEGRADATION_KINDS,
    FAULT_DEGRADATIONS,
    FleetEvent,
)

_EPS = 1e-6

#: every valid fleet-tier (site, action) pair.
_FLEET_FAULTS = sorted(FAULT_DEGRADATIONS)


def _result_json(result) -> str:
    return json.dumps(fleet_result_to_json(result), sort_keys=True)


# ---------------------------------------------------------------------------
# shared runs (module-scoped: the simulations are the expensive part)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def crash_faults() -> FaultPlan:
    return FaultPlan(
        specs=(
            FaultSpec("fleet.node", "crash", start=3, max_fires=1),
            FaultSpec("fleet.telemetry", "drop", start=6, max_fires=2),
        ),
        seed=2,
    )


@pytest.fixture(scope="module")
def crash_run(tmp_path_factory, crash_faults):
    """One journaled 4-node run that loses a node to a crash."""
    plan = synthesize_fleet(4, seed=1, max_steps=80)
    journal = FleetJournal(
        tmp_path_factory.mktemp("fleet") / "fleet.jsonl"
    )
    result = FleetSimulation(
        plan, crash_faults, journal=journal
    ).run()
    return plan, journal, result


# ---------------------------------------------------------------------------
# the budget invariant, under any seeded fault plan
# ---------------------------------------------------------------------------
@st.composite
def fleet_fault_plans(draw) -> FaultPlan:
    pairs = draw(
        st.lists(
            st.sampled_from(_FLEET_FAULTS), min_size=0, max_size=4
        )
    )
    specs = tuple(
        FaultSpec(
            site=site,
            action=action,
            probability=draw(st.sampled_from([0.5, 1.0])),
            start=draw(st.integers(min_value=0, max_value=10)),
            max_fires=draw(st.sampled_from([1, 2, 3])),
        )
        for site, action in pairs
    )
    return FaultPlan(
        specs=specs, seed=draw(st.integers(min_value=0, max_value=5))
    )


class TestBudgetInvariantProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        plan_seed=st.integers(min_value=0, max_value=3),
        n_nodes=st.integers(min_value=2, max_value=4),
        faults=fleet_fault_plans(),
    )
    def test_invariant_holds_every_step_under_any_faults(
        self, plan_seed, n_nodes, faults
    ):
        """The simulation checks the invariant itself each step
        (raising BudgetInvariantError on violation); the budget series
        is the per-step record of the accounted power, so both must
        agree that the cap was never exceeded - including through node
        death, power reclamation and quarantine."""
        plan = synthesize_fleet(
            n_nodes, seed=plan_seed, max_steps=14
        )
        result = FleetSimulation(plan, faults).run()
        assert len(result.budget_series) == result.steps
        for total in result.budget_series:
            assert total <= plan.global_cap_w + _EPS
        assert result.started == (
            result.completed + result.crashed + result.unfinished
        )
        assert 0.0 <= result.survival_rate <= 1.0
        for event in result.events:
            assert event.kind in DEGRADATION_KINDS or not (
                event.degradation
            )


# ---------------------------------------------------------------------------
# chaos: graceful degradation and crash-safe resume
# ---------------------------------------------------------------------------
class TestChaos:
    def test_survivors_complete_after_a_crash(self, crash_run):
        plan, _journal, result = crash_run
        assert result.crashed == 1
        assert result.survival_rate == pytest.approx(0.75)
        survivors = [
            n for n in result.nodes if n["status"] != "crashed"
        ]
        assert survivors and all(
            n["status"] == "done" for n in survivors
        )
        kinds = {e.kind for e in result.events}
        # the crash surfaced as its typed degradation, the failure
        # detector declared the death, and the share was reclaimed
        assert "node_crashed" in kinds
        assert "node_dead" in kinds
        assert "telemetry_drop" in kinds
        assert result.reaction_latencies
        for _node, latency in result.reaction_latencies:
            assert latency >= 1

    def test_every_degradation_is_typed(self, crash_run):
        _plan, _journal, result = crash_run
        for event in result.degradations():
            assert event.kind in DEGRADATION_KINDS

    def test_resume_is_byte_identical(
        self, tmp_path, crash_run, crash_faults
    ):
        plan, _journal, reference = crash_run
        for kill_at in (1, 6):
            journal = FleetJournal(tmp_path / f"kill{kill_at}.jsonl")
            FleetSimulation(
                plan, crash_faults, journal=journal,
                stop_after=kill_at,
            ).run()
            resumed = FleetSimulation(
                plan, crash_faults, journal=journal, resume=True
            ).run()
            assert _result_json(resumed) == _result_json(reference)

    def test_resume_survives_a_torn_tail(
        self, tmp_path, crash_run, crash_faults
    ):
        plan, _journal, reference = crash_run
        journal = FleetJournal(tmp_path / "torn.jsonl")
        FleetSimulation(
            plan, crash_faults, journal=journal, stop_after=4
        ).run()
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"schema":1,"step":99,"sta')  # torn mid-write
        resumed = FleetSimulation(
            plan, crash_faults, journal=journal, resume=True
        ).run()
        assert _result_json(resumed) == _result_json(reference)

    def test_resume_refuses_a_foreign_journal(
        self, crash_run, crash_faults
    ):
        _plan, journal, _result = crash_run
        other = synthesize_fleet(4, seed=99, max_steps=80)
        with pytest.raises(FleetJournalMismatchError, match="plan"):
            FleetSimulation(
                other, crash_faults, journal=journal, resume=True
            ).run()

    def test_resume_requires_a_journal(self):
        plan = synthesize_fleet(2)
        with pytest.raises(ValueError, match="journal"):
            FleetSimulation(plan, resume=True)

    def test_stop_after_must_be_non_negative(self):
        plan = synthesize_fleet(2)
        with pytest.raises(ValueError, match="stop_after"):
            FleetSimulation(plan, stop_after=-1)


class TestCleanRun:
    def test_all_nodes_complete_under_budget(self):
        plan = synthesize_fleet(3, seed=0, max_steps=60)
        result = FleetSimulation(plan).run()
        assert result.completed == result.started == 3
        assert result.crashed == 0
        assert result.survival_rate == 1.0
        assert result.peak_budget_w <= plan.global_cap_w + _EPS
        kinds = [e.kind for e in result.events]
        assert kinds.count("node_started") == 3
        assert kinds.count("node_done") == 3
        assert render_fleet(result).startswith("Fleet of 3 nodes")


# ---------------------------------------------------------------------------
# plan layer
# ---------------------------------------------------------------------------
class TestFleetPlan:
    def test_duplicate_node_ids_rejected(self):
        node = FleetNodeSpec(node_id="a")
        with pytest.raises(FleetPlanError, match="duplicate"):
            FleetPlan(nodes=(node, node), global_cap_w=100.0)

    def test_dead_after_must_exceed_suspect_after(self):
        with pytest.raises(FleetPlanError, match="dead_after"):
            FleetPlan(
                nodes=(FleetNodeSpec(node_id="a"),),
                global_cap_w=100.0,
                suspect_after=4,
                dead_after=4,
            )

    def test_unknown_machine_rejected(self):
        with pytest.raises(FleetPlanError, match="machine"):
            FleetNodeSpec(node_id="a", machine="cray-1")

    def test_min_cap_quantizes_up(self):
        plan = synthesize_fleet(2, quantum_w=10.0)
        spec = plan.nodes[0].spec  # crill: 115 W TDP, 0.5 fraction
        assert plan.min_cap_w(spec) == 60.0  # ceil(57.5 / 10) * 10

    def test_synthesized_roster_mixes_machines(self):
        plan = synthesize_fleet(8)
        machines = [n.machine for n in plan.nodes]
        assert machines.count("minotaur") == 2  # every 4th node
        assert plan.global_cap_w < sum(
            n.spec.tdp_w for n in plan.nodes
        )

    def test_plan_round_trips_with_stable_fingerprint(self, tmp_path):
        plan = synthesize_fleet(3, seed=5, max_steps=33)
        path = tmp_path / "plan.json"
        save_fleet_plan(plan, path)
        loaded = load_fleet_plan(path)
        assert loaded == plan
        assert fleet_plan_fingerprint(loaded) == fleet_plan_fingerprint(
            plan
        )

    def test_load_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            '{"global_cap_w": 100, "nodes": [], "warp_factor": 9}'
        )
        with pytest.raises(FleetPlanError, match="warp_factor"):
            load_fleet_plan(path)


# ---------------------------------------------------------------------------
# membership layer
# ---------------------------------------------------------------------------
@pytest.fixture
def tracker():
    # suspect_after=2, dead_after=4, flap_window=8, flap_threshold=3,
    # quarantine_steps=6 (the plan defaults)
    return MembershipTracker(synthesize_fleet(2))


class TestMembership:
    def test_silence_escalates_suspect_then_dead(self, tracker):
        tracker.admit("a", 0)
        assert tracker.observe(1, set()) == []
        events = tracker.observe(2, set())
        assert [e.kind for e in events] == ["node_suspect"]
        assert tracker.state("a") == "suspect"
        assert "a" in tracker.live()  # keeps its allocation
        assert tracker.observe(3, set()) == []
        events = tracker.observe(4, set())
        assert [e.kind for e in events] == ["node_dead"]
        assert tracker.state("a") == "dead"
        assert "a" not in tracker.live()

    def test_dead_node_revives_on_heartbeat(self, tracker):
        tracker.admit("a", 0)
        for step in range(1, 5):
            tracker.observe(step, set())
        assert tracker.state("a") == "dead"
        events = tracker.observe(5, {"a"})
        assert [e.kind for e in events] == ["node_revived"]
        assert tracker.state("a") == "alive"

    def test_flapping_node_is_quarantined_with_hysteresis(
        self, tracker
    ):
        tracker.admit("a", 0)
        tracker.observe(2, set())       # flip 1: suspect
        tracker.observe(3, {"a"})       # flip 2: back alive
        tracker.observe(5, set())       # flip 3: suspect again
        events = tracker.observe(6, {"a"})  # 4th flip inside window
        assert [e.kind for e in events] == ["node_quarantined"]
        assert tracker.state("a") == "quarantined"
        assert "a" not in tracker.live()
        # hysteresis: heartbeats during quarantine do not readmit
        assert tracker.observe(8, {"a"}) == []
        assert tracker.state("a") == "quarantined"
        # expiry: re-admitted, flap history cleared
        events = tracker.observe(12, {"a"})
        assert [e.kind for e in events] == ["quarantine_lifted"]
        assert tracker.state("a") == "alive"

    def test_snapshot_round_trip(self, tracker):
        tracker.admit("a", 0)
        tracker.admit("b", 1)
        tracker.observe(3, {"b"})
        blob = json.loads(json.dumps(tracker.snapshot()))
        fresh = MembershipTracker(synthesize_fleet(2))
        fresh.restore(blob)
        assert fresh.snapshot() == tracker.snapshot()
        assert fresh.state("a") == "suspect"


# ---------------------------------------------------------------------------
# allocator layer
# ---------------------------------------------------------------------------
def _crill_plan(n: int, cap: float, **knobs) -> FleetPlan:
    nodes = tuple(
        FleetNodeSpec(node_id=f"n{i}") for i in range(n)
    )
    return FleetPlan(nodes=nodes, global_cap_w=cap, **knobs)


def _infos(plan: FleetPlan) -> list[NodeBudgetInfo]:
    return [
        NodeBudgetInfo(
            node_id=n.node_id,
            cappable=n.spec.supports_power_cap,
            tdp_w=n.spec.tdp_w,
            min_cap_w=plan.min_cap_w(n.spec),
        )
        for n in plan.nodes
    ]


class TestAllocator:
    def test_floors_guaranteed_and_quantized(self):
        plan = _crill_plan(3, 200.0)
        allocator = BudgetAllocator(plan)
        targets, _events = allocator.allocate(
            1, _infos(plan), {}, fresh_reports=3
        )
        # crill floor is 60 W; pool 200 leaves 20 W headroom shared 3
        # ways, quantized down to the 5 W grid
        assert targets == {"n0": 65.0, "n1": 65.0, "n2": 65.0}
        for cap in targets.values():
            assert cap % plan.quantum_w == 0
            assert cap >= 60.0

    def test_budget_parks_newest_when_floors_exceed_pool(self):
        plan = _crill_plan(3, 130.0)  # floors sum to 180 W
        allocator = BudgetAllocator(plan)
        targets, events = allocator.allocate(
            1, _infos(plan), {}, fresh_reports=3
        )
        assert set(targets) == {"n0", "n1"}
        parked = [
            e.node for e in events if e.kind == "node_parked"
        ]
        assert parked == ["n2"]  # newest first
        assert allocator.is_parked("n2", 1)
        assert not allocator.is_parked("n2", 2)  # one-round park

    def test_uncappable_tdp_comes_off_the_top(self):
        nodes = (
            FleetNodeSpec(node_id="cap0"),
            FleetNodeSpec(node_id="fix0", machine="minotaur"),
        )
        plan = FleetPlan(nodes=nodes, global_cap_w=280.0)
        allocator = BudgetAllocator(plan)
        infos = _infos(plan)
        targets, _events = allocator.allocate(
            1, infos, {}, fresh_reports=2
        )
        # minotaur draws its fixed 190 W; the crill node gets what is
        # left (90 W, floor 60 W respected)
        assert set(targets) == {"cap0"}
        assert targets["cap0"] == 90.0
        allocator.note_applied("cap0", targets["cap0"], 1)
        assert allocator.accounted_power(1, infos) == 280.0
        allocator.check_invariant(1, infos)  # exactly at the cap: ok

    def test_hysteresis_defers_then_coalesces(self):
        plan = _crill_plan(2, 200.0, hysteresis_steps=3)
        allocator = BudgetAllocator(plan)
        allocator.note_applied("n0", 70.0, 1)
        allocator.note_applied("n1", 70.0, 1)
        # a shifted utilization wants a different split immediately...
        targets, _events = allocator.allocate(
            2, _infos(plan), {"n0": 0.3, "n1": 1.0}, fresh_reports=2
        )
        # ...but step 2 is too soon after step 1: both held
        assert targets == {"n0": 70.0, "n1": 70.0}
        assert allocator.pending  # the deferred targets, coalesced
        later, _events = allocator.allocate(
            4, _infos(plan), {"n0": 0.3, "n1": 1.0}, fresh_reports=2
        )
        assert later != targets  # hysteresis window over: applied

    def test_hysteresis_never_overshoots_the_pool(self):
        plan = _crill_plan(2, 140.0, hysteresis_steps=5)
        allocator = BudgetAllocator(plan)
        # stale caps worth 150 W against a 140 W pool
        allocator.note_applied("n0", 75.0, 1)
        allocator.note_applied("n1", 75.0, 1)
        targets, _events = allocator.allocate(
            2, _infos(plan), {}, fresh_reports=2
        )
        assert sum(targets.values()) <= 140.0 + _EPS

    def test_blackout_holds_last_known_good_once(self):
        plan = _crill_plan(2, 200.0)
        allocator = BudgetAllocator(plan)
        infos = _infos(plan)
        first, _ = allocator.allocate(1, infos, {}, fresh_reports=2)
        for node_id, cap in first.items():
            allocator.note_applied(node_id, cap, 1)
        held, events = allocator.allocate(
            2, infos, {}, fresh_reports=0
        )
        assert held == first
        assert [e.kind for e in events] == ["allocation_held"]
        _again, events = allocator.allocate(
            3, infos, {}, fresh_reports=0
        )
        assert events == []  # the hold is reported once, not spammed

    def test_blackout_hold_yields_when_roster_outgrows_it(self):
        # regression: found by the budget-invariant property test.
        # An un-cappable node admitted *during* a blackout never
        # needed an applied cap, so the "all active nodes known"
        # hold condition passed - but its fixed TDP draw is real,
        # and holding the stale caps overshot the global cap.
        nodes = (
            FleetNodeSpec(node_id="n0"),
            FleetNodeSpec(node_id="n1"),
            FleetNodeSpec(node_id="fix", machine="minotaur"),
        )
        plan = FleetPlan(nodes=nodes, global_cap_w=402.0)
        allocator = BudgetAllocator(plan)
        infos = _infos(plan)
        first, _events = allocator.allocate(
            1, infos[:2], {}, fresh_reports=2
        )
        assert sum(first.values()) == 230.0  # the whole crill TDP
        for node_id, cap in first.items():
            allocator.note_applied(node_id, cap, 1)
        # blackout + the minotaur joins: 230 held + 190 fixed > 402,
        # so the hold must yield to a full reallocation
        targets, events = allocator.allocate(
            2, infos, {}, fresh_reports=0
        )
        assert "allocation_held" not in [e.kind for e in events]
        for node_id, cap in targets.items():
            allocator.note_applied(node_id, cap, 2)
        assert allocator.check_invariant(2, infos) <= 402.0 + _EPS

    def test_invariant_violation_raises(self):
        plan = _crill_plan(2, 100.0)
        allocator = BudgetAllocator(plan)
        allocator.note_applied("n0", 80.0, 1)
        allocator.note_applied("n1", 80.0, 1)
        with pytest.raises(BudgetInvariantError, match="exceeds"):
            allocator.check_invariant(1, _infos(plan))

    def test_snapshot_round_trip(self):
        plan = _crill_plan(2, 200.0)
        allocator = BudgetAllocator(plan)
        allocator.allocate(1, _infos(plan), {}, fresh_reports=2)
        allocator.note_applied("n0", 65.0, 1)
        allocator.park("n1", 1, 2)
        blob = json.loads(json.dumps(allocator.snapshot()))
        fresh = BudgetAllocator(plan)
        fresh.restore(blob)
        assert fresh.snapshot() == allocator.snapshot()


# ---------------------------------------------------------------------------
# journal layer
# ---------------------------------------------------------------------------
class TestFleetJournal:
    def test_missing_file_has_no_snapshot(self, tmp_path):
        journal = FleetJournal(tmp_path / "nope.jsonl")
        assert journal.load_last_snapshot() is None
        assert journal.read_header() is None

    def test_torn_tail_is_truncated_away(self, tmp_path):
        journal = FleetJournal(tmp_path / "fleet.jsonl")
        journal.write_header({"plan": "abc"})
        journal.append_snapshot(1, {"cells": {}})
        journal.append_snapshot(2, {"cells": {"x": 1}})
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"schema":1,"step":3,"st')
        step, state = journal.load_last_snapshot()
        assert step == 2
        assert state == {"cells": {"x": 1}}
        # the torn bytes are gone: appends land on an intact prefix
        assert not journal.path.read_text().rstrip().endswith('"st')

    def test_check_header_names_mismatched_keys(self, tmp_path):
        journal = FleetJournal(tmp_path / "fleet.jsonl")
        journal.write_header({"plan": "abc", "seed": 1})
        journal.check_header({"plan": "abc", "seed": 1})  # ok
        with pytest.raises(
            FleetJournalMismatchError, match="seed"
        ):
            journal.check_header({"plan": "abc", "seed": 2})

    def test_headerless_file_is_refused(self, tmp_path):
        journal = FleetJournal(tmp_path / "fleet.jsonl")
        journal.path.write_text("not json\n")
        with pytest.raises(
            FleetJournalMismatchError, match="no fleet header"
        ):
            journal.check_header({"plan": "abc"})


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestFleetCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fleet", "run"])
        assert args.command == "fleet"
        assert args.fleet_command == "run"
        assert args.nodes == 8
        assert args.global_cap is None
        assert args.journal is None
        assert args.resume is False

    def test_resume_without_journal_is_friendly(self):
        with pytest.raises(SystemExit, match="--journal"):
            main(["fleet", "run", "--resume"])

    def test_bad_plan_path_is_friendly(self):
        with pytest.raises(SystemExit, match="fleet plan"):
            main(["fleet", "run", "--plan", "/nonexistent/plan.json"])

    def test_bad_faults_path_is_friendly(self):
        with pytest.raises(SystemExit, match="fault plan"):
            main(
                ["fleet", "run", "--faults", "/nonexistent/f.json"]
            )

    def test_tiny_fleet_runs_end_to_end(self, tmp_path, capsys):
        plan = synthesize_fleet(2, seed=0, max_steps=40)
        path = tmp_path / "plan.json"
        save_fleet_plan(plan, path)
        main(["fleet", "run", "--plan", str(path)])
        out = capsys.readouterr().out
        assert "Fleet of 2 nodes" in out
        assert "survival rate" in out


# ---------------------------------------------------------------------------
# analysis converters
# ---------------------------------------------------------------------------
class TestFleetRecords:
    def test_survival_rows_from_result_json(self, crash_run):
        _plan, _journal, result = crash_run
        rows = fleet_survival_records(fleet_result_to_json(result))
        table = RecordTable(rows)
        assert table.columns == (
            "kind", "events", "nodes_affected", "nodes_survived",
            "survival_rate",
        )
        overall = rows[-1]
        assert overall["kind"] == "fleet"
        assert overall["survival_rate"] == pytest.approx(
            result.survival_rate
        )
        crashed = next(r for r in rows if r["kind"] == "node_crashed")
        assert crashed["nodes_survived"] == 0

    def test_journal_and_result_agree(self, crash_run):
        _plan, journal, result = crash_run
        from_journal = fleet_survival_records(journal.path)
        from_result = fleet_survival_records(
            fleet_result_to_json(result)
        )
        assert from_journal == from_result

    def test_empty_journal_yields_no_rows(self, tmp_path):
        assert fleet_survival_records(tmp_path / "nope.jsonl") == []

    def test_capsched_timeline_rows(self, tmp_path):
        records = [
            {"type": "event", "name": "cap.change", "seq": 4,
             "ts": 0.0, "attrs": {"invocation": 6, "cap_from": "115W",
                                  "cap_to": "85W"}},
            {"type": "event", "name": "other.event", "seq": 5,
             "ts": 0.0, "attrs": {}},
            {"type": "event", "name": "cap.change_rejected", "seq": 9,
             "ts": 0.0, "attrs": {"invocation": 14,
                                  "cap_from": "85W",
                                  "cap_to": "70W"}},
        ]
        path = tmp_path / "telemetry.jsonl"
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        rows = capsched_timeline_records(tmp_path)
        RecordTable(rows)
        assert [r["invocation"] for r in rows] == [6, 14]
        assert [r["applied"] for r in rows] == [True, False]
        assert rows[0]["cap_to"] == "85W"


class TestFleetEvents:
    def test_event_round_trip(self):
        event = FleetEvent(3, "node_dead", "n1", "details")
        assert FleetEvent.from_json(event.to_json()) == event
        assert event.degradation

    def test_every_fault_maps_to_a_degradation_kind(self):
        for kind in FAULT_DEGRADATIONS.values():
            assert kind in DEGRADATION_KINDS
