"""Tests for the watchdog supervision layer (repro/supervise.py)."""

from __future__ import annotations

import pytest

from repro.faults.inject import make_injector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.runtime import OpenMPRuntime
from repro.supervise import (
    RegionSupervisor,
    RunAbortedError,
    SuperviseConfig,
)
from tests.test_openmp_engine import make_region


def faulty_runtime(*specs, seed=0):
    plan = FaultPlan(specs=tuple(specs), seed=seed) if specs else None
    node = SimulatedNode(crill(), faults=make_injector(plan))
    return OpenMPRuntime(node, noise_sigma=0.0)


def crash_spec(**kw):
    kw.setdefault("probability", 1.0)
    return FaultSpec(site="region.exec", action="crash", **kw)


class TestConfigValidation:
    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            SuperviseConfig(deadline_s=0.0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            SuperviseConfig(max_retries=0)


class TestCleanPassThrough:
    def test_supervised_clean_run_is_identical(self):
        """No faults, no deadline: supervision must add zero simulated
        time and zero RNG draws, so records match bit for bit."""
        plain = faulty_runtime()
        supervised = faulty_runtime()
        sup = RegionSupervisor(supervised)
        for _ in range(4):
            a = plain.parallel_for(make_region(name="r"))
            b = sup.execute(make_region(name="r"))
            assert a.time_s == b.time_s
            assert a.energy_j == b.energy_j
        assert plain.node.now_s == supervised.node.now_s
        assert supervised.degradations == []


class TestEscalationLadder:
    def test_crash_retried_with_recovery_note(self):
        runtime = faulty_runtime(crash_spec(max_fires=1))
        sup = RegionSupervisor(runtime)
        record = sup.execute(make_region(name="r"))
        assert record is not None
        assert runtime.degradations == [
            "region r: recovered after 1 failed attempt(s)"
        ]

    def test_persistent_crash_pins_region(self):
        # max_retries=2 tolerates 2 retries; the 3rd consecutive crash
        # escalates to the pin rung, then the next attempt succeeds
        runtime = faulty_runtime(crash_spec(max_fires=3))
        pinned = []
        sup = RegionSupervisor(
            runtime, pin=lambda name, reason: pinned.append(name)
        )
        record = sup.execute(make_region(name="r"))
        assert record is not None
        assert pinned == ["r"]
        assert any(
            "pinned to the default configuration" in note
            for note in runtime.degradations
        )

    def test_failure_past_pin_aborts_run(self):
        runtime = faulty_runtime(crash_spec(max_fires=None))
        sup = RegionSupervisor(runtime)
        with pytest.raises(RunAbortedError, match="'r'"):
            sup.execute(make_region(name="r"))

    def test_abort_message_mentions_resume(self):
        runtime = faulty_runtime(crash_spec(max_fires=None))
        sup = RegionSupervisor(runtime)
        with pytest.raises(RunAbortedError, match="--resume-from"):
            sup.execute(make_region(name="r"))

    def test_success_resets_consecutive_failures(self):
        # 2 crashes, recovery, then 2 more: never 3 consecutive, so
        # the region is never pinned
        runtime = faulty_runtime(
            crash_spec(max_fires=2),
            crash_spec(start=3, max_fires=2),
        )
        pinned = []
        sup = RegionSupervisor(
            runtime, pin=lambda name, reason: pinned.append(name)
        )
        for _ in range(4):
            sup.execute(make_region(name="r"))
        assert pinned == []

    def test_health_tracked_per_region(self):
        runtime = faulty_runtime(crash_spec(max_fires=1))
        sup = RegionSupervisor(runtime)
        sup.execute(make_region(name="a"))   # eats the only crash
        sup.execute(make_region(name="b"))
        assert sup._health["a"].consecutive_failures == 0
        assert "region a: recovered" in runtime.degradations[0]


class TestHangsAndDeadlines:
    def test_hang_advances_clock_and_keeps_measurement(self):
        hang = FaultSpec(
            site="region.exec",
            action="hang",
            probability=1.0,
            max_fires=1,
            magnitude=2.5,
        )
        runtime = faulty_runtime(hang)
        clean = faulty_runtime()
        sup = RegionSupervisor(runtime)
        record = sup.execute(make_region(name="r"))
        reference = clean.parallel_for(make_region(name="r"))
        # the measurement itself is untouched; only wall time grows
        assert record.time_s == reference.time_s
        assert runtime.node.now_s == pytest.approx(
            clean.node.now_s + 2.5
        )

    def test_sustained_stall_escalates(self):
        # an impossible deadline makes every execution a stall; stalls
        # return their (usable) record but escalate on the 3rd
        runtime = faulty_runtime()
        pinned = []
        sup = RegionSupervisor(
            runtime,
            SuperviseConfig(deadline_s=1e-12),
            pin=lambda name, reason: pinned.append((name, reason)),
        )
        for _ in range(3):
            record = sup.execute(make_region(name="r"))
            assert record is not None
        assert len(pinned) == 1
        assert "stalled" in pinned[0][1]


class TestSnapshot:
    def test_roundtrip(self):
        runtime = faulty_runtime(crash_spec(max_fires=2))
        sup = RegionSupervisor(runtime)
        sup.execute(make_region(name="r"))
        clone = RegionSupervisor(runtime)
        clone.restore(sup.snapshot())
        assert clone.snapshot() == sup.snapshot()
        assert clone._health["r"].consecutive_failures == 0
