"""Tests for the figure/table registry (:mod:`repro.analysis.registry`)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.registry import (
    FIGURE_SCHEMA_VERSION,
    FORMATS,
    GenOptions,
    REGISTRY,
    UnknownFigureError,
    figure_names,
    generate_figure,
    generate_figures,
    get_spec,
    write_figure,
)

#: registry entries cheap enough for tests (~seconds each).
FAST = "table1_search_space"


class TestRegistry:
    def test_every_name_is_a_results_stem(self):
        # names are exactly what the benchmark suite writes
        for expected in (
            "fig1_motivation", "fig4_sp_power_sweep",
            "table1_search_space", "table2_sp_optimal_configs",
        ):
            assert expected in REGISTRY

    def test_figure_names_sorted_and_filtered(self):
        names = figure_names()
        assert names == sorted(names)
        sweeps = figure_names(cost="sweep")
        assert "fig4_sp_power_sweep" in sweeps
        assert FAST not in sweeps

    def test_unknown_name_lists_known(self):
        with pytest.raises(UnknownFigureError) as err:
            get_spec("fig99_dreams")
        assert "fig99_dreams" in str(err.value)
        assert "fig1_motivation" in str(err.value)

    def test_specs_are_complete(self):
        for spec in REGISTRY.values():
            assert spec.kind in ("figure", "table")
            assert spec.cost in ("fast", "sweep", "external")
            assert spec.title


class TestGeneration:
    def test_generate_fast_figure(self):
        artifact = generate_figure(FAST)
        assert artifact.spec.name == FAST
        assert "Chunk Size" in artifact.text
        assert artifact.table.columns == ("parameter", "values")

    def test_generation_is_deterministic(self):
        a = generate_figure(FAST)
        b = generate_figure(FAST)
        assert a.text == b.text
        assert a.table.to_json() == b.table.to_json()

    def test_write_figure_all_backends(self, tmp_path):
        artifact = generate_figure(FAST)
        paths = write_figure(artifact, tmp_path)
        assert set(paths) == set(FORMATS)
        txt = paths["txt"].read_text()
        assert txt == artifact.text + "\n"
        payload = json.loads(paths["json"].read_text())
        assert payload["schema"] == FIGURE_SCHEMA_VERSION
        assert payload["records"] == artifact.table.records
        assert paths["csv"].read_text().startswith("parameter,values")

    def test_write_figure_unknown_format(self, tmp_path):
        artifact = generate_figure(FAST)
        with pytest.raises(ValueError, match="format"):
            write_figure(artifact, tmp_path, formats=("pdf",))

    def test_txt_matches_committed_results(self):
        """The registry regenerates the committed results/ text
        byte-identically (the acceptance criterion for the refactor)."""
        from pathlib import Path

        committed = (
            Path(__file__).resolve().parent.parent
            / "results" / f"{FAST}.txt"
        )
        if not committed.exists():
            pytest.skip("no committed results file")
        assert generate_figure(FAST).text + "\n" == committed.read_text()

    def test_generate_figures_validates_names_first(self, tmp_path):
        with pytest.raises(UnknownFigureError):
            generate_figures(
                [FAST, "fig99_dreams"], out_dir=tmp_path
            )
        # nothing was generated: the bad name failed the whole batch
        assert list(tmp_path.iterdir()) == []

    def test_generate_figures_writes_and_reports(self, tmp_path):
        seen = []
        generated = generate_figures(
            [FAST], out_dir=tmp_path, formats=("txt", "csv"),
            options=GenOptions(repeats=1), progress=seen.append,
        )
        assert seen == [FAST]
        assert (tmp_path / f"{FAST}.txt").exists()
        assert (tmp_path / f"{FAST}.csv").exists()
        assert not (tmp_path / f"{FAST}.json").exists()
        assert generated[0].paths["txt"].parent == tmp_path
