"""Tests for BENCH baseline comparison (:mod:`repro.analysis.compare`)."""

from __future__ import annotations

import pytest

from repro.analysis.bench import bench_payload, write_bench_json
from repro.analysis.compare import (
    compare_dirs,
    render_comparison,
    DEFAULT_TOLERANCE,
)


def bench_dirs(tmp_path, old_metrics, new_metrics, name="speed"):
    old_dir = tmp_path / "old"
    new_dir = tmp_path / "new"
    old_dir.mkdir(exist_ok=True)
    new_dir.mkdir(exist_ok=True)
    write_bench_json(old_dir, bench_payload(name, old_metrics))
    write_bench_json(new_dir, bench_payload(name, new_metrics))
    return old_dir, new_dir


class TestCompare:
    def test_identical_is_ok(self, tmp_path):
        old, new = bench_dirs(tmp_path, {"t": 1.0}, {"t": 1.0})
        report = compare_dirs(old, new)
        assert report.ok
        assert report.regressions == []

    def test_injected_regression_is_flagged(self, tmp_path):
        # 20% slower on a lower-is-better metric, 5% tolerance
        old, new = bench_dirs(tmp_path, {"t": 1.0}, {"t": 1.2})
        report = compare_dirs(old, new, tolerance=0.05)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.metric == "t"
        assert delta.rel_change == pytest.approx(0.2)

    def test_within_tolerance_is_ok(self, tmp_path):
        old, new = bench_dirs(tmp_path, {"t": 1.0}, {"t": 1.04})
        assert compare_dirs(old, new, tolerance=0.05).ok

    def test_improvement_never_fails(self, tmp_path):
        old, new = bench_dirs(tmp_path, {"t": 1.0}, {"t": 0.2})
        report = compare_dirs(old, new)
        assert report.ok
        (delta,) = report.deltas
        assert delta.status == "better"

    def test_higher_is_better_direction(self, tmp_path):
        higher = {"value": 10.0, "direction": "higher"}
        dropped = {"value": 8.0, "direction": "higher"}
        old, new = bench_dirs(tmp_path, {"s": higher}, {"s": dropped})
        report = compare_dirs(old, new, tolerance=0.05)
        assert not report.ok  # 20% drop on higher-is-better

    def test_info_metrics_never_gated(self, tmp_path):
        info = {"value": 1.0, "direction": "info"}
        worse = {"value": 100.0, "direction": "info"}
        old, new = bench_dirs(tmp_path, {"wall": info}, {"wall": worse})
        report = compare_dirs(old, new)
        assert report.ok
        assert report.deltas == []

    def test_missing_metric_is_regression(self, tmp_path):
        old, new = bench_dirs(tmp_path, {"t": 1.0}, {})
        report = compare_dirs(old, new)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.status == "missing"

    def test_missing_bench_is_regression(self, tmp_path):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir(), new_dir.mkdir()
        write_bench_json(old_dir, bench_payload("gone", {"t": 1.0}))
        report = compare_dirs(old_dir, new_dir)
        assert not report.ok
        assert report.missing_benches == ["gone"]

    def test_new_bench_and_metric_only_noted(self, tmp_path):
        old, new = bench_dirs(
            tmp_path, {"t": 1.0}, {"t": 1.0, "extra": 9.0}
        )
        write_bench_json(new, bench_payload("fresh", {"t": 1.0}))
        report = compare_dirs(old, new)
        assert report.ok
        assert report.new_benches == ["fresh"]
        assert any(d.status == "new" for d in report.deltas)

    def test_zero_baseline_regression(self, tmp_path):
        old, new = bench_dirs(tmp_path, {"t": 0.0}, {"t": 1.0})
        report = compare_dirs(old, new)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.rel_change == float("inf")

    def test_negative_tolerance_rejected(self, tmp_path):
        old, new = bench_dirs(tmp_path, {}, {})
        with pytest.raises(ValueError, match="tolerance"):
            compare_dirs(old, new, tolerance=-0.1)

    def test_default_tolerance(self):
        assert DEFAULT_TOLERANCE == 0.05


class TestRender:
    def test_ok_summary_line(self, tmp_path):
        old, new = bench_dirs(tmp_path, {"t": 1.0}, {"t": 1.0})
        out = render_comparison(compare_dirs(old, new))
        assert out.endswith("1 gated metric(s) compared, "
                            "0 regression(s) - OK")

    def test_regression_flagged_in_table(self, tmp_path):
        old, new = bench_dirs(tmp_path, {"t": 1.0}, {"t": 2.0})
        out = render_comparison(compare_dirs(old, new))
        assert "REGRESSION" in out
        assert "+100.00%" in out
        assert "1 regression(s)" in out

    def test_missing_bench_rendered(self, tmp_path):
        old_dir = tmp_path / "old"
        new_dir = tmp_path / "new"
        old_dir.mkdir(), new_dir.mkdir()
        write_bench_json(old_dir, bench_payload("gone", {"t": 1.0}))
        out = render_comparison(compare_dirs(old_dir, new_dir))
        assert "REGRESSION: benchmark 'gone'" in out
