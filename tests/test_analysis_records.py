"""Tests for the tidy record layer (:mod:`repro.analysis.records`)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.records import (
    RecordError,
    RecordTable,
    feature_records,
    fig1_records,
    fig9_records,
    journal_records,
    result_record,
    sweep_records,
    table1_records,
    table2_records,
    telemetry_records,
)
from repro.experiments.figures import (
    FEATURES,
    FeatureComparison,
    Fig1Row,
    Fig9Row,
    PowerSweep,
    SweepCell,
)
from repro.experiments.journal import SweepJournal
from repro.experiments.runner import StrategyRunResult
from repro.experiments.tables import Table1Row, Table2Row


def result(strategy, time_s, energy_j=None):
    return StrategyRunResult(
        strategy=strategy,
        app_label="sp.B",
        machine="crill",
        cap_w=85.0,
        time_s=time_s,
        energy_j=energy_j,
        runs=(),
    )


class TestRecordTable:
    def test_columns_from_first_record(self):
        table = RecordTable([{"a": 1, "b": 2.5}, {"a": 3, "b": None}])
        assert table.columns == ("a", "b")
        assert len(table) == 2
        assert table.column("b") == [2.5, None]

    def test_rejects_non_scalar_cells(self):
        with pytest.raises(RecordError, match="non-scalar"):
            RecordTable([{"a": [1, 2]}])

    def test_rejects_heterogeneous_columns(self):
        with pytest.raises(RecordError, match="columns"):
            RecordTable([{"a": 1}, {"b": 2}])

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            RecordTable([{"a": 1}]).column("z")

    def test_json_round_trips(self):
        records = [{"x": 0.1, "s": "a,b", "n": None}]
        table = RecordTable(records)
        assert json.loads(table.to_json()) == records

    def test_csv_quotes_and_header(self):
        table = RecordTable(
            [{"x": 1, "s": 'he said "hi", twice', "n": None}]
        )
        out = table.to_csv()
        lines = out.split("\n")
        assert lines[0] == "x,s,n"
        # RFC 4180: embedded quotes doubled, field quoted, None empty
        assert lines[1] == '1,"he said ""hi"", twice",'

    def test_empty_table(self):
        table = RecordTable([])
        assert table.columns == ()
        assert table.to_json() == "[]"
        assert table.to_csv() == "\n"


class TestConverters:
    def test_result_record_is_flat(self):
        row = result_record(result("arcs-online", 4.2, 100.0))
        assert row["strategy"] == "arcs-online"
        assert row["time_s"] == 4.2
        assert row["energy_j"] == 100.0
        RecordTable([row])  # all cells scalar

    def test_sweep_records_order_and_cells(self):
        sweep = PowerSweep(
            app_label="sp.B",
            machine="crill",
            caps=(115.0, 55.0),
            cells={
                ("TDP", "default"): SweepCell(1.0, 1.0),
                ("TDP", "arcs-offline"): SweepCell(0.7, 0.65),
                ("55W", "default"): SweepCell(1.0, 1.0),
            },
            results={},
        )
        rows = sweep_records(sweep)
        # caps outer, strategy order inner; missing cells skipped
        assert [(r["power"], r["strategy"]) for r in rows] == [
            ("TDP", "default"),
            ("TDP", "arcs-offline"),
            ("55W", "default"),
        ]
        assert rows[1]["time_norm"] == 0.7
        assert rows[0]["time_s"] is None  # no full result attached
        RecordTable(rows)

    def test_fig1_and_fig9_records(self):
        f1 = fig1_records(
            [Fig1Row("55W", "16, guided, 8", 1.0, 1.5)]
        )
        assert f1[0]["improvement_pct"] == pytest.approx(100 / 3)
        f9 = fig9_records(
            [Fig9Row("EvalEOS", 1920, 1.5, 0.6, 0.8)]
        )
        assert f9[0]["calls"] == 1920
        RecordTable(f1), RecordTable(f9)

    def test_feature_records_columns(self):
        comparison = FeatureComparison(
            app_label="sp.B",
            regions=("x_solve",),
            offline_normalized={
                "x_solve": {f: 0.5 for f in FEATURES}
            },
            offline_configs={"x_solve": "16, guided, 1"},
        )
        rows = feature_records(comparison)
        assert rows[0]["config"] == "16, guided, 1"
        for feature in FEATURES:
            assert rows[0][feature] == 0.5
        RecordTable(rows)

    def test_table_records(self):
        t1 = table1_records([Table1Row("Chunk Size", "1, 8")])
        t2 = table2_records([Table2Row("x_solve", "16, guided, 1")])
        assert t1 == [{"parameter": "Chunk Size", "values": "1, 8"}]
        assert t2 == [{"region": "x_solve", "config": "16, guided, 1"}]


class TestDiskSources:
    def test_journal_records(self, tmp_path):
        journal = SweepJournal(tmp_path / "journal.jsonl")
        journal.append("bbb", "TDP/default", result("default", 5.0))
        journal.append("aaa", "TDP/arcs-online",
                       result("arcs-online", 4.0))
        rows = journal_records(journal.path)
        # sorted by digest, result flattened alongside it
        assert [r["digest"] for r in rows] == ["aaa", "bbb"]
        assert rows[0]["strategy"] == "arcs-online"
        assert rows[1]["time_s"] == 5.0
        RecordTable(rows)

    def test_journal_records_missing_file(self, tmp_path):
        assert journal_records(tmp_path / "nope.jsonl") == []

    def test_telemetry_records_flattening(self, tmp_path):
        lines = [
            {"kind": "event", "name": "cap_change",
             "attrs": {"cap_w": 55.0, "path": [1, 2]}},
            {"kind": "metric", "name": "runs", "value": 3},
        ]
        path = tmp_path / "telemetry.jsonl"
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines)
        )
        rows = telemetry_records(tmp_path)
        assert all(r["stream"] == "telemetry" for r in rows)
        # nested mapping flattened; non-scalar JSON-encoded
        assert rows[0]["attrs.cap_w"] == 55.0
        assert rows[0]["attrs.path"] == "[1, 2]"
        assert rows[1]["value"] == 3

    def test_telemetry_records_kind_filter(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text(
            json.dumps({"kind": "event", "name": "a"}) + "\n"
            + json.dumps({"kind": "metric", "name": "b"}) + "\n"
        )
        rows = telemetry_records(tmp_path, kinds=("metric",))
        assert [r["name"] for r in rows] == ["b"]
