"""Tests for the ARCS policy - the paper's Section III-B behaviour."""

from __future__ import annotations

import pytest

from repro.core.controller import ARCS
from repro.core.history import HistoryStore
from repro.core.policy import ArcsPolicy, MissingRegionConfigError
from repro.harmony.space import Parameter, SearchSpace
from repro.openmp.types import OMPConfig, ScheduleKind
from tests.test_openmp_engine import make_region


def tiny_space():
    """A small space so exhaustive search converges quickly in tests."""
    return SearchSpace(
        parameters=(
            Parameter("n_threads", (4, 8, 16, 32)),
            Parameter(
                "schedule",
                (ScheduleKind.STATIC, ScheduleKind.DYNAMIC),
            ),
            Parameter("chunk", (None, 8)),
        )
    )


def attach_arcs(runtime, **kw):
    kw.setdefault("space", tiny_space())
    arcs = ARCS(runtime, **kw)
    arcs.attach()
    return arcs


class TestSessionLifecycle:
    def test_session_created_on_first_encounter(self, runtime):
        arcs = attach_arcs(runtime, strategy="exhaustive")
        runtime.parallel_for(make_region(name="r1"))
        assert "r1" in arcs.policy.sessions()

    def test_one_session_per_region(self, runtime):
        arcs = attach_arcs(runtime, strategy="exhaustive")
        for name in ("a", "b", "a"):
            runtime.parallel_for(make_region(name=name))
        assert set(arcs.policy.sessions()) == {"a", "b"}

    def test_candidate_applied_to_execution(self, runtime):
        arcs = attach_arcs(runtime, strategy="exhaustive")
        rec = runtime.parallel_for(make_region(name="r"))
        suggested = arcs.policy.regions["r"].applied
        assert rec.config == suggested

    def test_measurements_reported_to_session(self, runtime):
        arcs = attach_arcs(runtime, strategy="exhaustive")
        for _ in range(5):
            runtime.parallel_for(make_region(name="r"))
        session = arcs.policy.sessions()["r"]
        assert session.stats.reports == 5

    def test_exhaustive_converges_and_locks_best(self, runtime):
        arcs = attach_arcs(runtime, strategy="exhaustive")
        region = make_region(name="r")
        space = arcs.policy.space
        for _ in range(space.size + 5):
            runtime.parallel_for(region)
        assert arcs.converged
        best = arcs.chosen_configs()["r"]
        # after convergence every execution uses the best config
        rec = runtime.parallel_for(region)
        assert rec.config == best

    def test_best_config_is_space_optimum(self, runtime):
        """With a noiseless runtime, the exhaustively chosen config is
        the true argmin over the space."""
        arcs = attach_arcs(runtime, strategy="exhaustive")
        region = make_region(
            name="skewed", iterations=512,
        )
        space = arcs.policy.space
        for _ in range(space.size + 1):
            runtime.parallel_for(region)
        best = arcs.chosen_configs()["skewed"]
        from repro.core.config import config_from_point
        from repro.openmp.engine import ExecutionEngine
        from repro.machine.node import SimulatedNode
        from repro.machine.spec import crill

        engine = ExecutionEngine(SimulatedNode(crill()))
        times = {}
        for indices in space.iter_indices():
            cfg = config_from_point(space.decode(indices))
            times[cfg] = engine.execute(region, cfg).time_s
        # the chosen config's deterministic time is (near) minimal; it
        # was measured with APEX instrumentation attached, so allow the
        # tiny instrumentation delta
        assert times[best] <= min(times.values()) * 1.02


class TestConfigChangeEconomy:
    def test_no_redundant_runtime_calls(self, runtime):
        """Applying an unchanged configuration must not pay the
        configuration-change overhead again."""
        history = HistoryStore()
        cfg = OMPConfig(8, ScheduleKind.DYNAMIC, 8)
        history.save("k", {"r": cfg})
        arcs = attach_arcs(
            runtime, history=history, history_key="k", replay=True
        )
        region = make_region(name="r")
        runtime.parallel_for(region)
        calls_after_first = runtime.config_change_calls
        for _ in range(5):
            runtime.parallel_for(region)
        assert runtime.config_change_calls == calls_after_first
        assert arcs.overhead_report().config_change_calls == (
            calls_after_first
        )


class TestReplayMode:
    def test_replays_saved_configs(self, runtime):
        history = HistoryStore()
        cfg = OMPConfig(4, ScheduleKind.DYNAMIC, 8)
        history.save("k", {"r": cfg})
        attach_arcs(
            runtime, history=history, history_key="k", replay=True
        )
        rec = runtime.parallel_for(make_region(name="r"))
        assert rec.config == cfg

    def test_unknown_region_raises_by_default(self, runtime):
        """Replay silently executing an unknown region with whatever
        configuration is current mis-measures the run; strict replay
        (the default) refuses instead."""
        history = HistoryStore()
        history.save("k", {"other": OMPConfig(4)})
        attach_arcs(
            runtime, history=history, history_key="k", replay=True
        )
        with pytest.raises(MissingRegionConfigError) as err:
            runtime.parallel_for(make_region(name="r"))
        assert "'r'" in str(err.value)
        assert "other" in str(err.value)

    def test_unknown_region_tolerated_when_not_strict(self, runtime):
        history = HistoryStore()
        history.save("k", {"other": OMPConfig(4)})
        attach_arcs(
            runtime, history=history, history_key="k", replay=True,
            strict_replay=False,
        )
        rec = runtime.parallel_for(make_region(name="r"))
        assert rec.config.n_threads == 32

    def test_replay_requires_history(self, runtime):
        with pytest.raises(ValueError):
            ARCS(runtime, replay=True)

    def test_replay_never_searches(self, runtime):
        history = HistoryStore()
        history.save("k", {"r": OMPConfig(4)})
        arcs = attach_arcs(
            runtime, history=history, history_key="k", replay=True
        )
        for _ in range(3):
            runtime.parallel_for(make_region(name="r"))
        assert arcs.policy.sessions() == {}
        assert arcs.converged


class TestSelectiveMode:
    """The paper's future-work extension: skip tuning tiny regions."""

    def test_tiny_region_skipped(self, runtime):
        arcs = attach_arcs(
            runtime,
            strategy="exhaustive",
            selective_threshold_s=10.0,   # everything is "tiny"
        )
        for _ in range(3):
            runtime.parallel_for(make_region(name="r"))
        assert arcs.policy.regions["r"].skipped
        assert "r" not in arcs.policy.sessions()

    def test_large_region_still_tuned(self, runtime):
        arcs = attach_arcs(
            runtime,
            strategy="exhaustive",
            selective_threshold_s=1e-9,   # nothing is "tiny"
        )
        for _ in range(3):
            runtime.parallel_for(make_region(name="r"))
        assert not arcs.policy.regions["r"].skipped
        assert "r" in arcs.policy.sessions()


class TestHistorySaving:
    def test_finalize_saves_best(self, runtime):
        history = HistoryStore()
        arcs = attach_arcs(
            runtime,
            strategy="exhaustive",
            history=history,
            history_key="k",
        )
        region = make_region(name="r")
        for _ in range(arcs.policy.space.size + 1):
            runtime.parallel_for(region)
        arcs.finalize()
        assert history.has("k")
        assert "r" in history.load("k")

    def test_overhead_report_structure(self, runtime):
        arcs = attach_arcs(runtime, strategy="nelder-mead", max_evals=10)
        for _ in range(12):
            runtime.parallel_for(make_region(name="r"))
        report = arcs.overhead_report()
        assert report.config_change_s >= 0
        assert report.instrumentation_s > 0
        assert report.search_s >= 0
        assert report.total_s == pytest.approx(
            report.config_change_s
            + report.instrumentation_s
            + report.search_s
        )


class _StubSession:
    """Minimal stand-in exposing only what ``_warm_start`` consults."""

    def __init__(self, point):
        self._point = point

    def best_point(self):
        return self._point


class TestCapAwareWarmStart:
    """The cap-schedule story: a new power level's search starts from
    the nearest already-tuned level's best configuration."""

    def _policy(self, runtime, cap_w=None):
        from repro.core.policy import ArcsPolicy, RegionTuningState

        if cap_w is not None:
            runtime.node.set_power_cap(cap_w)
            runtime.node.settle_after_cap()
        policy = ArcsPolicy(
            runtime, space=tiny_space(), cap_aware=True
        )
        return policy, RegionTuningState

    def test_no_donor_without_tuned_levels(self, runtime):
        policy, _ = self._policy(runtime, cap_w=70.0)
        assert policy._warm_start("r") is None

    def test_nearest_level_wins(self, runtime):
        policy, State = self._policy(runtime, cap_w=70.0)
        near = {
            "n_threads": 8,
            "schedule": ScheduleKind.STATIC,
            "chunk": 8,
        }
        far = {
            "n_threads": 32,
            "schedule": ScheduleKind.DYNAMIC,
            "chunk": None,
        }
        policy.regions["r@85W"] = State(session=_StubSession(near))
        policy.regions["r@tdp"] = State(session=_StubSession(far))
        assert policy._warm_start("r") == policy.space.encode(near)

    def test_tie_prefers_lower_cap(self, runtime):
        policy, State = self._policy(runtime, cap_w=70.0)
        low = {
            "n_threads": 4,
            "schedule": ScheduleKind.STATIC,
            "chunk": None,
        }
        high = {
            "n_threads": 16,
            "schedule": ScheduleKind.DYNAMIC,
            "chunk": 8,
        }
        policy.regions["r@55W"] = State(session=_StubSession(low))
        policy.regions["r@85W"] = State(session=_StubSession(high))
        assert policy._warm_start("r") == policy.space.encode(low)

    def test_other_regions_never_donate(self, runtime):
        policy, State = self._policy(runtime, cap_w=70.0)
        point = {
            "n_threads": 8,
            "schedule": ScheduleKind.STATIC,
            "chunk": 8,
        }
        policy.regions["other@85W"] = State(
            session=_StubSession(point)
        )
        assert policy._warm_start("r") is None

    def test_cap_change_seeds_session_from_donor(self, runtime):
        """End to end: converge at TDP, drop the cap, and the new
        level's session must start from the TDP best."""
        space = tiny_space()
        arcs = attach_arcs(
            runtime, strategy="exhaustive", cap_aware=True
        )
        region = make_region(name="r")
        for _ in range(space.size + 1):
            runtime.parallel_for(region)
        donor = arcs.policy.sessions()["r@tdp"].best_point()
        runtime.node.set_power_cap(55.0)
        runtime.node.settle_after_cap()
        runtime.parallel_for(region)
        state = arcs.policy.regions["r@55W"]
        assert state.session_start == space.encode(donor)


class TestPinRegion:
    def test_pinned_region_runs_default_and_degrades(self, runtime):
        arcs = attach_arcs(runtime, strategy="exhaustive")
        region = make_region(name="r")
        runtime.parallel_for(region)
        arcs.policy.pin_region("r", "kept crashing")
        record = runtime.parallel_for(region)
        state = arcs.policy.regions["r"]
        assert state.degraded == "kept crashing"
        assert record.config == arcs.policy._default_config()
        assert "r" in arcs.policy.degradations()

    def test_pin_applies_across_power_levels(self, runtime):
        arcs = attach_arcs(
            runtime, strategy="exhaustive", cap_aware=True
        )
        region = make_region(name="r")
        runtime.parallel_for(region)
        arcs.policy.pin_region("r", "kept crashing")
        runtime.node.set_power_cap(55.0)
        runtime.node.settle_after_cap()
        record = runtime.parallel_for(region)
        # the never-before-seen 55W level is pinned too: no session
        assert arcs.policy.regions["r@55W"].session is None
        assert record.config == arcs.policy._default_config()

    def test_pin_before_first_encounter(self, runtime):
        arcs = attach_arcs(runtime, strategy="exhaustive")
        arcs.policy.pin_region("r", "preemptive")
        record = runtime.parallel_for(make_region(name="r"))
        assert record.config == arcs.policy._default_config()
        assert arcs.policy.regions["r"].session is None
