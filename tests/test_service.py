"""Tests for the tuning-service daemon, client, and ConfigSource chain.

Everything here boots the REAL asyncio daemon (on an ephemeral port)
rather than mocking sockets; the network failure modes are driven by
the deterministic ``service.*`` fault sites.  The invariant under
test throughout: every failure degrades to a correct local answer,
recorded as a degradation note - never an error, and never a changed
measurement.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.core.history import HistoryStore
from repro.experiments.cache import result_to_json
from repro.experiments.parallel import SweepTask, run_sweep_task
from repro.experiments.runner import ExperimentSetup, run_arcs_offline
from repro.faults.inject import make_injector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.machine.spec import crill
from repro.service import protocol
from repro.service import source as source_mod
from repro.service.client import (
    CircuitBreaker,
    ServiceClient,
    ServiceProtocolError,
    ServiceRequestFailed,
    ServiceTimeout,
    ServiceUnavailable,
    parse_address,
)
from repro.service.daemon import ThreadedDaemon
from repro.service.source import (
    ChainedConfigSource,
    ConfigKey,
    HistorySource,
    MemoSource,
    ServiceSource,
    config_key,
    default_chain,
    entry_to_payload,
    payload_to_entry,
)
from repro.service.store import ServiceStore
from repro.workloads.registry import application_by_name

APP = application_by_name("synthetic", None)


@pytest.fixture(autouse=True)
def clean_process_memo():
    """Isolate the process-wide memo tier: a hit left behind by one
    test must not turn another test's tuning run into a cache hit."""
    source_mod._PROCESS_MEMO.clear()
    yield
    source_mod._PROCESS_MEMO.clear()


@pytest.fixture
def daemon(tmp_path):
    with ThreadedDaemon(tmp_path / "store") as td:
        yield td


def addr_str(td: ThreadedDaemon) -> str:
    host, port = td.address
    return f"{host}:{port}"


def plan_for(site: str, action: str, **kw) -> FaultPlan:
    return FaultPlan(
        specs=(FaultSpec(site=site, action=action, **kw),), seed=5
    )


def free_port() -> int:
    """A port with nothing listening (bound then released)."""
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


_ENTRY_CACHE: list = []


def make_entry():
    """One tuned (key, entry) pair; tuned once, copied per test."""
    if not _ENTRY_CACHE:
        setup = ExperimentSetup(
            spec=crill(), cap_w=85.0, repeats=1, seed=3
        )
        result = run_arcs_offline(APP, setup)
        key = config_key(APP, setup)
        values = {region: None for region in result.chosen_configs}
        _ENTRY_CACHE.append(
            (key, (dict(result.chosen_configs), values))
        )
    key, (configs, values) = _ENTRY_CACHE[0]
    return key, (dict(configs), dict(values))


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_round_trip(self):
        msg = protocol.request("put", key="k", payload={"a": 1})
        assert protocol.decode(protocol.encode(msg)) == msg

    def test_insertion_order_preserved(self):
        # payload key order is part of the determinism contract
        msg = protocol.ok(payload={"z": 1, "a": 2})
        raw = protocol.encode(msg).decode()
        assert raw.index('"z"') < raw.index('"a"')

    def test_decode_rejects_garbage(self):
        with pytest.raises(protocol.ProtocolError, match="JSON"):
            protocol.decode(b"not json\n")
        with pytest.raises(protocol.ProtocolError, match="object"):
            protocol.decode(b"[1,2]\n")

    def test_validate_request_rejects_foreign_schema(self):
        blob = protocol.request("ping")
        blob["schema"] = 99
        with pytest.raises(protocol.ProtocolError, match="schema"):
            protocol.validate_request(blob)

    def test_validate_request_field_checks(self):
        with pytest.raises(protocol.ProtocolError, match="key"):
            protocol.validate_request(
                {"schema": protocol.PROTOCOL_VERSION, "op": "get"}
            )
        with pytest.raises(protocol.ProtocolError, match="payload"):
            protocol.validate_request(
                {
                    "schema": protocol.PROTOCOL_VERSION,
                    "op": "put",
                    "key": "k",
                }
            )

    def test_unknown_op(self):
        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.request("steal")


class TestParseAddress:
    def test_host_port_string(self):
        assert parse_address("127.0.0.1:9178") == ("127.0.0.1", 9178)

    def test_tuple_passthrough(self):
        assert parse_address(("h", 1)) == ("h", 1)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_address("9178")


# ---------------------------------------------------------------------------
# daemon + client, clean network
# ---------------------------------------------------------------------------
class TestDaemonClient:
    def test_ping(self, daemon):
        response = ServiceClient(daemon.address).ping()
        assert response["ok"] is True
        assert response["entries"] == 0

    def test_get_put_round_trip(self, daemon):
        client = ServiceClient(daemon.address)
        assert client.get("k") is None
        client.put("k", {"z": 1, "a": {"nested": True}})
        assert client.get("k") == {"z": 1, "a": {"nested": True}}

    def test_many_tenants_share_the_store(self, daemon):
        a = ServiceClient(daemon.address)
        b = ServiceClient(daemon.address)
        a.put("shared", {"v": 42})
        assert b.get("shared") == {"v": 42}

    def test_stats_op(self, daemon):
        client = ServiceClient(daemon.address)
        client.put("k", {"v": 1})
        client.get("k")
        stats = client.stats()
        assert stats["stats"]["puts"] == 1
        assert stats["stats"]["hits"] == 1
        assert stats["requests"] >= 2

    def test_protocol_garbage_drops_only_that_tenant(self, daemon):
        with socket.create_connection(daemon.address, timeout=5) as s:
            s.settimeout(5)
            s.sendall(b"this is not json\n")
            response = json.loads(s.makefile().readline())
            assert response["ok"] is False
            # connection is dropped after the error frame
            assert s.recv(1) == b""
        # other tenants are unaffected
        assert ServiceClient(daemon.address).ping()["ok"] is True

    def test_daemon_persists_on_shutdown(self, tmp_path):
        with ThreadedDaemon(tmp_path / "store") as td:
            ServiceClient(td.address).put("k", {"v": 7})
        # fsynced + compacted on shutdown; a new daemon serves it
        with ThreadedDaemon(tmp_path / "store") as td:
            assert ServiceClient(td.address).get("k") == {"v": 7}

    def test_shutdown_op_stops_the_daemon(self, tmp_path):
        with ThreadedDaemon(tmp_path / "store") as td:
            client = ServiceClient(td.address)
            client.put("k", {"v": 1})
            client.shutdown()
            td._thread.join(timeout=10.0)
            assert not td._thread.is_alive()
        # the write-behind buffer was flushed+fsynced before exit
        assert ServiceStore(tmp_path / "store").get("k") == {"v": 1}


# ---------------------------------------------------------------------------
# client failure modes
# ---------------------------------------------------------------------------
class TestClientFailures:
    def test_real_connection_refused(self):
        client = ServiceClient(
            ("127.0.0.1", free_port()), deadline_s=0.5
        )
        with pytest.raises(ServiceUnavailable):
            client.ping()

    def test_injected_connect_refused(self, daemon):
        client = ServiceClient(
            daemon.address,
            faults=make_injector(
                plan_for("service.connect", "refused"), salt="c"
            ),
        )
        with pytest.raises(ServiceUnavailable, match="injected"):
            client.ping()

    def test_injected_hang_times_out(self, daemon):
        client = ServiceClient(
            daemon.address,
            faults=make_injector(
                plan_for("service.response", "hang"), salt="c"
            ),
        )
        with pytest.raises(ServiceTimeout):
            client.ping()

    def test_injected_slow_response_still_succeeds(self, daemon):
        client = ServiceClient(
            daemon.address,
            faults=make_injector(
                plan_for("service.response", "slow", magnitude=0.01),
                salt="c",
            ),
        )
        assert client.ping()["ok"] is True

    def test_torn_payload_is_protocol_error(self, daemon):
        client = ServiceClient(
            daemon.address,
            faults=make_injector(
                plan_for("service.payload", "torn"), salt="c"
            ),
        )
        with pytest.raises(ServiceProtocolError):
            client.ping()

    def test_corrupt_payload_is_protocol_error(self, daemon):
        client = ServiceClient(
            daemon.address,
            faults=make_injector(
                plan_for("service.payload", "corrupt"), salt="c"
            ),
        )
        with pytest.raises(ServiceProtocolError):
            client.ping()

    def test_server_crash_mid_write(self, tmp_path):
        plan = plan_for("service.server", "crash", max_fires=1)
        with ThreadedDaemon(tmp_path / "store", fault_plan=plan) as td:
            client = ServiceClient(td.address)
            # the first response is severed mid-frame; the bounded
            # retry gets a clean answer on the next attempt.
            assert client.ping()["ok"] is True
            assert td.daemon.injected_crashes == 1

    def test_request_failed_not_retried(self, daemon):
        # a malformed-but-parseable request is answered ok=false; the
        # client must not burn retries on a coherent negative answer
        client = ServiceClient(daemon.address)
        with pytest.raises(ServiceRequestFailed):
            client.request(
                {
                    "schema": protocol.PROTOCOL_VERSION,
                    "op": "get",
                    "key": 7,  # not a string -> daemon rejects
                }
            )

    def test_retries_transient_faults_to_success(self, daemon):
        # exactly one injected failure, then clean: one retry wins
        client = ServiceClient(
            daemon.address,
            faults=make_injector(
                plan_for("service.connect", "refused", max_fires=1),
                salt="c",
            ),
        )
        assert client.ping()["ok"] is True


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert not breaker.allow()

    def test_half_opens_on_probe_schedule(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=3)
        breaker.record_failure()
        assert breaker.state == "open"
        assert [breaker.allow() for _ in range(3)] == [
            False,
            False,
            True,
        ]
        assert breaker.state == "half_open"

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure()
        assert breaker.allow()           # probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=3, probe_interval=1)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()           # probe (half-open)
        breaker.record_failure()         # probe fails: reopen at once
        assert breaker.state == "open"
        assert breaker.opens == 2

    def test_half_open_cycle_reopen_then_reclose(self):
        """The full recovery arc: open -> half-open probe fails ->
        re-open -> half-open probe succeeds -> closed, with the skip
        and open counters tracking every transition."""
        breaker = CircuitBreaker(failure_threshold=2, probe_interval=2)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 1

        # first probe window: short-circuit once, then probe
        assert not breaker.allow()
        assert breaker.allow()
        assert breaker.state == "half_open"
        breaker.record_failure()         # sick probe: straight back
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert breaker.skipped == 0      # the window restarts

        # second probe window: service recovered
        assert not breaker.allow()
        assert breaker.allow()
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0
        assert breaker.allow()           # closed again: no gating

    def test_reclosed_breaker_needs_full_threshold_to_reopen(self):
        """Recovery resets the failure count: after a close, one
        failure must not trip a threshold-2 breaker again."""
        breaker = CircuitBreaker(failure_threshold=2, probe_interval=1)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.allow()           # probe
        breaker.record_success()         # re-close
        breaker.record_failure()         # one fresh failure
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()         # second: trips again
        assert breaker.state == "open"
        assert breaker.opens == 2


# ---------------------------------------------------------------------------
# the ConfigSource chain
# ---------------------------------------------------------------------------
class TestEntryCodec:
    def test_round_trip(self):
        key, entry = make_entry()
        payload = entry_to_payload(key, entry)
        configs, values = payload_to_entry(payload)
        assert configs == entry[0]
        assert values == entry[1]

    def test_rejects_foreign_schema(self):
        key, entry = make_entry()
        payload = entry_to_payload(key, entry)
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            payload_to_entry(payload)

    def test_rejects_empty_regions(self):
        with pytest.raises(ValueError, match="regions"):
            payload_to_entry({"schema": 1, "regions": {}})


class TestConfigKey:
    def test_distinct_contexts_distinct_digests(self):
        a = config_key(
            APP, ExperimentSetup(spec=crill(), cap_w=85.0, seed=3)
        )
        b = config_key(
            APP, ExperimentSetup(spec=crill(), cap_w=70.0, seed=3)
        )
        c = config_key(
            APP, ExperimentSetup(spec=crill(), cap_w=85.0, seed=4)
        )
        assert len({a.digest, b.digest, c.digest}) == 3
        assert a.experiment != b.experiment

    def test_stable_across_calls(self):
        setup = ExperimentSetup(spec=crill(), cap_w=85.0, seed=3)
        assert config_key(APP, setup) == config_key(APP, setup)


class TestChain:
    def test_memo_round_trip(self):
        key, entry = make_entry()
        memo = MemoSource(memo={})
        assert memo.lookup(key) is None
        memo.publish(key, entry)
        assert memo.lookup(key) == entry

    def test_memo_discards_malformed(self):
        key, entry = make_entry()
        memo = MemoSource(memo={key.digest: {"schema": 99}})
        assert memo.lookup(key) is None
        assert memo.notes
        assert key.digest not in memo.memo

    def test_memo_fifo_bound(self):
        memo = MemoSource(memo={}, capacity=2)
        key, entry = make_entry()
        for i in range(3):
            k = ConfigKey(experiment=f"e{i}", digest=f"d{i}")
            memo.publish(k, entry)
        assert len(memo.memo) == 2
        assert "d0" not in memo.memo

    def test_history_tier_round_trip(self, tmp_path):
        key, entry = make_entry()
        tier = HistorySource(HistoryStore(tmp_path / "h.json"))
        assert tier.lookup(key) is None
        tier.publish(key, entry)
        got = tier.lookup(key)
        assert got is not None and got[0] == entry[0]

    def test_service_tier_round_trip(self, daemon):
        key, entry = make_entry()
        tier = ServiceSource(ServiceClient(daemon.address))
        assert tier.lookup(key) is None
        tier.publish(key, entry)
        assert tier.lookup(key) == entry
        assert tier.drain_notes() == []

    def test_service_tier_failure_is_note_not_error(self):
        tier = ServiceSource(
            ServiceClient(("127.0.0.1", free_port()), deadline_s=0.5)
        )
        key, _ = make_entry()
        assert tier.lookup(key) is None
        notes = tier.drain_notes()
        assert len(notes) == 1
        assert notes[0].startswith("config source service: ")
        assert "ServiceUnavailable" in notes[0]
        assert "fell back" in notes[0]
        # notes carry no address/port (they must be byte-stable
        # across ephemeral ports)
        assert "127.0.0.1" not in notes[0]

    def test_breaker_short_circuits_dead_service(self):
        breaker = CircuitBreaker(failure_threshold=2, probe_interval=50)
        tier = ServiceSource(
            ServiceClient(("127.0.0.1", free_port()), deadline_s=0.5),
            breaker=breaker,
        )
        key, _ = make_entry()
        tier.lookup(key)
        tier.lookup(key)
        assert breaker.state == "open"
        tier.lookup(key)                 # short-circuited, no network
        notes = tier.drain_notes()
        assert any("circuit open" in n for n in notes)

    def test_chain_order_and_promotion(self, daemon):
        key, entry = make_entry()
        service = ServiceSource(ServiceClient(daemon.address))
        memo = MemoSource(memo={})
        chain = ChainedConfigSource([service, memo])
        memo.publish(key, entry)
        # hit lands in the memo tier; the missed service tier above it
        # is re-warmed with the entry
        assert chain.lookup(key) == entry
        assert service.lookup(key) == entry

    def test_chain_falls_through_dead_service_to_memo(self):
        key, entry = make_entry()
        chain = default_chain(
            ("127.0.0.1", free_port()), memo={}, deadline_s=0.5
        )
        chain.publish(key, entry)        # service note, memo stores
        assert chain.lookup(key) == entry
        notes = chain.drain_notes()
        assert any("remote publish failed" in n for n in notes)

    def test_chain_miss_returns_none(self):
        key, _ = make_entry()
        chain = ChainedConfigSource([MemoSource(memo={})])
        assert chain.lookup(key) is None

    def test_default_chain_tiers(self, tmp_path, daemon):
        chain = default_chain(
            addr_str(daemon),
            history=HistoryStore(tmp_path / "h.json"),
            memo={},
        )
        assert [s.name for s in chain.sources] == [
            "service",
            "memo",
            "history",
        ]


# ---------------------------------------------------------------------------
# runner integration: the acceptance criteria
# ---------------------------------------------------------------------------
def offline_setup(fault_plan=None):
    return ExperimentSetup(
        spec=crill(),
        cap_w=85.0,
        repeats=2,
        seed=3,
        fault_plan=fault_plan,
    )


def strip_service_notes(result) -> str:
    blob = result_to_json(result)
    blob["degradations"] = [
        d
        for d in blob["degradations"]
        if not d.startswith("config source ")
    ]
    return json.dumps(blob, sort_keys=True)


class TestRunnerIntegration:
    def test_service_run_byte_identical_and_publishes(self, daemon):
        baseline = run_arcs_offline(APP, offline_setup())
        chain = default_chain(addr_str(daemon), memo={})
        result = run_arcs_offline(APP, offline_setup(), source=chain)
        assert json.dumps(result_to_json(result)) == json.dumps(
            result_to_json(baseline)
        )
        # a second cold client now skips tuning entirely via the hit
        chain2 = default_chain(addr_str(daemon), memo={})
        again = run_arcs_offline(APP, offline_setup(), source=chain2)
        assert again.tuning_runs == 0
        blob_a, blob_b = (
            result_to_json(again),
            result_to_json(baseline),
        )
        blob_a.pop("tuning_runs")
        blob_b.pop("tuning_runs")
        assert json.dumps(blob_a) == json.dumps(blob_b)

    @pytest.mark.parametrize(
        "site, action, magnitude",
        [
            ("service.connect", "refused", None),
            ("service.response", "hang", None),
            ("service.response", "slow", 0.01),
            ("service.payload", "torn", None),
            ("service.payload", "corrupt", None),
            ("service.server", "crash", None),
        ],
    )
    def test_every_fault_degrades_to_local_answer(
        self, tmp_path, site, action, magnitude
    ):
        plan = FaultPlan(
            specs=(
                FaultSpec(site=site, action=action, magnitude=magnitude),
            ),
            seed=5,
        )
        setup = offline_setup(fault_plan=plan)
        # service-less reference under the SAME plan: the service.*
        # sites are simply never drawn without a client, and the plan
        # is part of the config digest, so the two runs share keys.
        baseline = run_arcs_offline(APP, setup)
        with ThreadedDaemon(tmp_path / "store", fault_plan=plan) as td:
            chain = default_chain(
                addr_str(td),
                memo={},
                faults=make_injector(plan, salt="service-client"),
            )
            result = run_arcs_offline(APP, setup, source=chain)
        assert strip_service_notes(result) == strip_service_notes(
            baseline
        )
        assert result.tuning_runs == baseline.tuning_runs

    def test_dead_service_degrades_with_note(self):
        chain = default_chain(
            ("127.0.0.1", free_port()), memo={}, deadline_s=0.5
        )
        baseline = run_arcs_offline(APP, offline_setup())
        result = run_arcs_offline(APP, offline_setup(), source=chain)
        assert strip_service_notes(result) == strip_service_notes(
            baseline
        )
        service_notes = [
            d
            for d in result.degradations
            if d.startswith("config source service")
        ]
        assert service_notes

    def test_replay_controller_pulls_from_chain(self, daemon):
        # seed the service with tuned knowledge
        chain = default_chain(addr_str(daemon), memo={})
        setup = offline_setup()
        run_arcs_offline(APP, setup, source=chain)
        # a replay-mode controller with an EMPTY history resolves the
        # entry through the chain instead of raising HistoryKeyMissing
        from repro.core.controller import ARCS
        from repro.core.history import HistoryKeyMissing, experiment_key
        from repro.experiments.runner import fresh_runtime

        key = experiment_key(
            APP.name, setup.spec.name, setup.cap_w, APP.workload
        )
        with pytest.raises(HistoryKeyMissing):
            ARCS(
                fresh_runtime(setup),
                history=HistoryStore(),
                history_key=key,
                replay=True,
            )
        fresh_chain = default_chain(addr_str(daemon), memo={})
        arcs = ARCS(
            fresh_runtime(setup),
            history=HistoryStore(),
            history_key=key,
            replay=True,
            source=fresh_chain,
            source_key=config_key(APP, setup),
        )
        assert arcs.chosen_configs()


class TestSweepTaskIntegration:
    def test_sweep_task_uses_service(self, tmp_path):
        with ThreadedDaemon(tmp_path / "store") as td:
            task = SweepTask(
                app=APP,
                spec=crill(),
                strategy="arcs-offline",
                cap_w=85.0,
                repeats=2,
                seed=3,
                service=addr_str(td),
            )
            plain = SweepTask(
                app=APP,
                spec=crill(),
                strategy="arcs-offline",
                cap_w=85.0,
                repeats=2,
                seed=3,
            )
            baseline = run_sweep_task(plain)
            first = run_sweep_task(task)
            assert json.dumps(result_to_json(first)) == json.dumps(
                result_to_json(baseline)
            )
            probe = ServiceClient(td.address)
            assert probe.stats()["stats"]["puts"] >= 1

    def test_service_field_not_in_digest(self):
        a = SweepTask(
            app=APP, spec=crill(), strategy="arcs-offline", cap_w=85.0
        )
        b = SweepTask(
            app=APP,
            spec=crill(),
            strategy="arcs-offline",
            cap_w=85.0,
            service="127.0.0.1:1",
        )
        assert a.run_id() == b.run_id()
