"""Tests for the MSR register file and the RAPL interface."""

from __future__ import annotations

import pytest

from repro.machine.msr import (
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT,
    MSR_RAPL_POWER_UNIT,
    MsrFile,
)
from repro.machine.rapl import Rapl
from repro.machine.spec import crill, minotaur


@pytest.fixture
def msr():
    return MsrFile(sockets=2)


@pytest.fixture
def rapl(msr):
    return Rapl(crill(), msr)


class TestMsrFile:
    def test_power_unit_register_initialized(self, msr):
        raw = msr.read(0, MSR_RAPL_POWER_UNIT)
        assert (raw >> 8) & 0x1F == 0x10   # 2^-16 J energy units

    def test_unknown_msr_faults(self, msr):
        with pytest.raises(KeyError, match="rdmsr fault"):
            msr.read(0, 0x123)
        with pytest.raises(KeyError, match="wrmsr fault"):
            msr.write(0, 0x123, 1)

    def test_energy_counter_read_only(self, msr):
        with pytest.raises(PermissionError):
            msr.write(0, MSR_PKG_ENERGY_STATUS, 5)

    def test_energy_counter_wraps_at_32_bits(self, msr):
        msr.bump_energy_counter(0, (1 << 32) - 1)
        msr.bump_energy_counter(0, 2)
        assert msr.read_energy_counter(0) == 1

    def test_sockets_isolated(self, msr):
        msr.bump_energy_counter(0, 100)
        assert msr.read_energy_counter(1) == 0

    def test_invalid_socket_rejected(self, msr):
        with pytest.raises(ValueError):
            msr.read(5, MSR_RAPL_POWER_UNIT)

    def test_energy_units(self, msr):
        assert msr.energy_units_per_joule(0) == pytest.approx(65536.0)


class TestRaplCapping:
    def test_cap_written_to_limit_register(self, rapl, msr):
        rapl.set_package_cap(85.0, now_s=0.0)
        raw = msr.read(0, MSR_PKG_POWER_LIMIT)
        assert raw & (1 << 15)             # enable bit
        assert (raw & 0x7FFF) == 85 * 8    # 1/8 W units

    def test_cap_settles_after_warmup(self, rapl):
        """Section IV-D's 'warm up period after enforcing a power cap'."""
        rapl.set_package_cap(55.0, now_s=1.0)
        assert rapl.effective_cap_w(0, 1.0) is None      # not yet
        assert rapl.effective_cap_w(0, 1.0 + rapl.cap_settle_s) == 55.0

    def test_clearing_cap(self, rapl):
        rapl.set_package_cap(55.0, now_s=0.0)
        rapl.set_package_cap(None, now_s=1.0)
        assert rapl.effective_cap_w(0, 2.0) is None

    def test_both_sockets_capped(self, rapl):
        rapl.set_package_cap(70.0, now_s=0.0)
        assert rapl.effective_cap_w(0, 1.0) == 70.0
        assert rapl.effective_cap_w(1, 1.0) == 70.0

    def test_minotaur_has_no_capping_privilege(self):
        msr = MsrFile(sockets=2)
        rapl = Rapl(minotaur(), msr)
        with pytest.raises(PermissionError):
            rapl.set_package_cap(100.0, now_s=0.0)

    def test_invalid_cap_rejected(self, rapl):
        with pytest.raises(ValueError):
            rapl.set_package_cap(-5.0, now_s=0.0)


class TestRaplEnergyCounters:
    def test_energy_visible_after_update_interval(self, rapl):
        rapl.deposit_energy(0, 10.0, now_s=0.0005)
        # pending: the counter refreshes only at interval boundaries
        assert rapl.read_package_energy_j(0) == 0.0
        rapl.deposit_energy(0, 10.0, now_s=0.0021)
        assert rapl.read_package_energy_j(0) == pytest.approx(
            20.0, abs=0.001
        )

    def test_force_update_flushes(self, rapl):
        rapl.deposit_energy(0, 5.0, now_s=0.0001)
        rapl.force_update(0.0001)
        assert rapl.read_package_energy_j(0) == pytest.approx(
            5.0, abs=0.001
        )

    def test_quantized_to_energy_units(self, rapl):
        rapl.deposit_energy(0, 1.0 / 65536 / 2, now_s=0.0)  # half a unit
        rapl.force_update(1.0)
        assert rapl.read_package_energy_j(0) == 0.0

    def test_unwrap_across_counter_overflow(self, rapl):
        # 2^32 units = 65536 J per wrap; deposit enough to wrap once
        big = (2**32 + 5) / 65536.0
        rapl.deposit_energy(0, big, now_s=0.0)
        rapl.force_update(1.0)
        assert rapl.read_package_energy_j(0) == pytest.approx(
            big, rel=1e-6
        )

    def test_minotaur_counters_unreadable(self):
        rapl = Rapl(minotaur(), MsrFile(sockets=2))
        with pytest.raises(PermissionError):
            rapl.read_package_energy_j(0)

    def test_negative_deposit_rejected(self, rapl):
        with pytest.raises(ValueError):
            rapl.deposit_energy(0, -1.0, now_s=0.0)
