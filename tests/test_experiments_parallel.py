"""Tests for the process-pool sweep executor and its failure modes,
plus regression tests for the runner/history bugs that parallel
execution would amplify."""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

import repro.experiments.runner as runner_mod
from repro.core.controller import ARCS
from repro.core.history import (
    CorruptHistoryError,
    HistoryStore,
    experiment_key,
)
from repro.core.policy import MissingRegionConfigError
from repro.experiments.cache import ExperimentCache, result_to_json
from repro.experiments.figures import power_sweep
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    SweepTask,
    SweepTaskError,
    run_sweep_task,
)
from repro.experiments.runner import (
    ExperimentSetup,
    TuningDidNotConverge,
    fresh_runtime,
    run_arcs_offline,
    run_application,
)
from repro.machine.spec import crill, minotaur
from repro.openmp.types import OMPConfig
from repro.workloads.synthetic import synthetic_application


def _app():
    return synthetic_application(timesteps=2, include_tiny=False)


def _task(strategy="default", cap_w=85.0, **kwargs) -> SweepTask:
    return SweepTask(
        app=_app(),
        spec=crill(),
        strategy=strategy,
        cap_w=cap_w,
        repeats=1,
        **kwargs,
    )


def _encode_sweep(sweep) -> str:
    return json.dumps(
        {
            f"{label}/{strategy}": result_to_json(result)
            for (label, strategy), result in sorted(
                sweep.results.items()
            )
        },
        sort_keys=True,
    )


# --- injectable task functions (module-level: must pickle) -----------------
# Scratch paths ride in ``history_path``, which run_sweep_task ignores
# for non-offline strategies.
def _marking_task(task: SweepTask):
    """Record each invocation as a file under the scratch dir."""
    scratch = Path(task.history_path)
    scratch.mkdir(parents=True, exist_ok=True)
    (scratch / f"call-{task.label.replace('/', '_')}-{time.time_ns()}"
     ).touch()
    return run_sweep_task(task)


def _flaky_task(task: SweepTask):
    """Fail the first attempt per task, succeed afterwards."""
    marker = Path(task.history_path)
    marker.parent.mkdir(parents=True, exist_ok=True)
    if not marker.exists():
        marker.touch()
        raise RuntimeError("injected first-attempt failure")
    return run_sweep_task(task)


def _always_failing_task(task: SweepTask):
    raise RuntimeError("injected permanent failure")


def _slow_task(task: SweepTask):
    time.sleep(8.0)
    return run_sweep_task(task)


# ---------------------------------------------------------------------------
class TestExecutorBasics:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ParallelSweepExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ParallelSweepExecutor(retries=-1)

    def test_serial_executes_in_order(self):
        tasks = [
            _task("default", cap_w=85.0),
            _task("default", cap_w=70.0),
            _task("default", cap_w=None),
        ]
        results = ParallelSweepExecutor(max_workers=1).run(tasks)
        assert [r.cap_w for r in results] == [85.0, 70.0, None]

    def test_pool_results_align_with_input_order(self):
        tasks = [
            _task("default", cap_w=cap) for cap in (55.0, 70.0, 85.0)
        ]
        results = ParallelSweepExecutor(max_workers=2).run(tasks)
        assert [r.cap_w for r in results] == [55.0, 70.0, 85.0]

    def test_parallel_equals_serial_bit_for_bit(self):
        """The acceptance property: a pooled sweep at a fixed seed is
        byte-identical to the strictly-serial path."""
        app = _app()
        caps = (85.0, 115.0)
        serial = power_sweep(app, crill(), caps, repeats=1, seed=3)
        parallel = power_sweep(
            app, crill(), caps, repeats=1, seed=3, workers=2
        )
        assert _encode_sweep(parallel) == _encode_sweep(serial)


class TestCacheIntegration:
    def test_second_run_executes_nothing(self, tmp_path):
        cache = ExperimentCache(tmp_path / "cache")
        scratch = str(tmp_path / "calls")
        tasks = [
            _task("default", cap_w=85.0, history_path=scratch),
            _task("default", cap_w=70.0, history_path=scratch),
        ]
        first = ParallelSweepExecutor(
            max_workers=1, cache=cache, task_fn=_marking_task
        ).run(tasks)
        calls_after_first = len(list(Path(scratch).iterdir()))
        assert calls_after_first == 2

        second = ParallelSweepExecutor(
            max_workers=1, cache=cache, task_fn=_marking_task
        ).run(tasks)
        assert len(list(Path(scratch).iterdir())) == calls_after_first
        assert second == first

    def test_offline_cells_share_tuned_history(self, tmp_path):
        """Exhaustive tuning happens once per (app, machine, cap):
        clearing cached *results* but keeping the tuned history must
        yield a re-measured sweep with zero tuning runs."""
        cache = ExperimentCache(tmp_path / "cache")
        app = _app()
        first = power_sweep(
            app, crill(), (85.0,), repeats=1, cache=cache
        )
        assert first.results[("85W", "arcs-offline")].tuning_runs >= 1

        for path in cache.root.glob("*.json"):   # results only
            path.unlink()
        rerun = power_sweep(
            app, crill(), (85.0,), repeats=1, cache=cache
        )
        offline = rerun.results[("85W", "arcs-offline")]
        assert offline.tuning_runs == 0
        assert offline.time_s == (
            first.results[("85W", "arcs-offline")].time_s
        )


class TestFailureHandling:
    def test_retry_recovers_from_transient_failure(self, tmp_path):
        tasks = [
            _task(
                "default", cap_w=cap,
                history_path=str(tmp_path / f"marker-{cap:g}"),
            )
            for cap in (85.0, 70.0)
        ]
        results = ParallelSweepExecutor(
            max_workers=2, retries=1, task_fn=_flaky_task
        ).run(tasks)
        assert [r.cap_w for r in results] == [85.0, 70.0]

    def test_retry_recovers_inline_too(self, tmp_path):
        task = _task(
            "default", history_path=str(tmp_path / "marker")
        )
        results = ParallelSweepExecutor(
            max_workers=1, retries=1, task_fn=_flaky_task
        ).run([task])
        assert results[0].strategy == "default"

    def test_exhausted_retries_raise_with_context(self):
        tasks = [_task("default", cap_w=85.0),
                 _task("default", cap_w=70.0)]
        with pytest.raises(SweepTaskError) as err:
            ParallelSweepExecutor(
                max_workers=2, retries=1, task_fn=_always_failing_task
            ).run(tasks)
        assert err.value.attempts == 2
        assert "injected permanent failure" in str(err.value)

    def test_timeout_raises_sweep_task_error(self):
        tasks = [_task("default", cap_w=85.0),
                 _task("default", cap_w=70.0)]
        t0 = time.monotonic()
        with pytest.raises(SweepTaskError) as err:
            ParallelSweepExecutor(
                max_workers=2, timeout_s=0.5, retries=0,
                task_fn=_slow_task,
            ).run(tasks)
        assert "timed out" in str(err.value)
        # must not have blocked for the task's full 8 s sleep
        assert time.monotonic() - t0 < 6.0


# ---------------------------------------------------------------------------
class TestBugfixRegressions:
    """One regression test per bug this PR fixes in the layers the
    parallel harness leans on."""

    def test_offline_nonconvergence_is_a_clear_error(self, monkeypatch):
        """(1) run_arcs_offline used to raise an opaque KeyError from
        history.load when tuning never converged."""
        monkeypatch.setattr(runner_mod, "MAX_TUNING_RUNS", 0)
        setup = ExperimentSetup(spec=crill(), repeats=1)
        with pytest.raises(TuningDidNotConverge) as err:
            run_arcs_offline(_app(), setup)
        assert err.value.runs_used == 0
        assert "did not converge" in str(err.value)
        assert experiment_key(
            "synthetic", "crill", None, "mixed"
        ) == err.value.key

    def test_replay_missing_region_fails_loudly(self):
        """(1b) replay mode silently skipped regions with no saved
        configuration."""
        app = _app()
        history = HistoryStore()
        history.save("k", {"not_a_region": OMPConfig(4)})
        runtime = fresh_runtime(
            ExperimentSetup(spec=crill(), repeats=1)
        )
        arcs = ARCS(
            runtime, history=history, history_key="k", replay=True
        )
        arcs.attach()
        with pytest.raises(MissingRegionConfigError) as err:
            run_application(app, runtime)
        assert "no configuration" in str(err.value)

    def test_cap_on_noncapping_machine_rejected(self):
        """(2) a cap on Minotaur was silently ignored and the result
        reported as capped."""
        with pytest.raises(ValueError, match="power-capping"):
            ExperimentSetup(spec=minotaur(), cap_w=85.0)

    def test_zero_repeats_rejected(self):
        """(4) repeats=0 used to crash later with IndexError in
        _summarize."""
        with pytest.raises(ValueError, match="repeats"):
            ExperimentSetup(spec=crill(), repeats=0)

    def test_corrupt_history_file_names_the_path(self, tmp_path):
        """(3) a half-written history file used to surface as a raw
        JSONDecodeError with no path."""
        path = tmp_path / "history.json"
        path.write_text('{"k": {"r": {"n_threads": 4,')
        with pytest.raises(CorruptHistoryError) as err:
            HistoryStore(path)
        assert str(path) in str(err.value)

    def test_history_persist_is_atomic(self, tmp_path, monkeypatch):
        """(3) a crash mid-write must leave the previous file intact."""
        path = tmp_path / "history.json"
        store = HistoryStore(path)
        store.save("k", {"r": OMPConfig(4)})
        before = path.read_text()

        import repro.util.atomicio as atomicio_mod

        def exploding_replace(src, dst):
            raise OSError("injected crash before replace")

        monkeypatch.setattr(
            atomicio_mod.os, "replace", exploding_replace
        )
        with pytest.raises(OSError):
            store.save("k2", {"r": OMPConfig(8)})
        assert path.read_text() == before
        assert list(tmp_path.glob("*.tmp")) == []


class TestJournalHeader:
    """The sweep-identity header that guards ``--resume`` against
    mixing results from a different sweep."""

    def _journal(self, tmp_path):
        from repro.experiments.journal import SweepJournal

        return SweepJournal(tmp_path / "journal.jsonl")

    def test_roundtrip(self, tmp_path):
        journal = self._journal(tmp_path)
        header = {"sweep": "abc123", "seeds": [0], "faults": []}
        journal.write_header(header)
        assert journal.read_header() == header

    def test_missing_and_empty_journals_have_no_header(self, tmp_path):
        journal = self._journal(tmp_path)
        assert journal.read_header() is None
        journal.clear()
        assert journal.read_header() is None

    def test_legacy_journal_without_header_reads_none(self, tmp_path):
        # journals written before headers existed start with a cell
        journal = self._journal(tmp_path)
        task = _task()
        digest = ParallelSweepExecutor._digest(task)
        journal.append(digest, task.label, run_sweep_task(task))
        assert journal.read_header() is None
        assert digest in journal.load()

    def test_header_is_not_a_cell(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.write_header({"sweep": "abc123"})
        task = _task()
        digest = ParallelSweepExecutor._digest(task)
        journal.append(digest, task.label, run_sweep_task(task))
        # load() must neither return the header nor truncate it away
        assert list(journal.load()) == [digest]
        assert journal.read_header() == {"sweep": "abc123"}

    def test_executor_refuses_foreign_journal(self, tmp_path):
        from repro.experiments.journal import (
            JournalHeaderMismatchError,
        )

        journal = self._journal(tmp_path)
        tasks = [_task(strategy="default", seed=0)]
        ParallelSweepExecutor(journal=journal).run(tasks)
        other = [_task(strategy="default", seed=1)]
        with pytest.raises(
            JournalHeaderMismatchError, match="seeds"
        ):
            ParallelSweepExecutor(
                journal=journal, resume=True
            ).run(other)

    def test_executor_resumes_matching_journal(self, tmp_path):
        journal = self._journal(tmp_path)
        tasks = [_task(strategy="default", seed=0)]
        first = ParallelSweepExecutor(journal=journal).run(tasks)
        resumed = ParallelSweepExecutor(
            journal=journal, resume=True
        ).run([_task(strategy="default", seed=0)])
        assert result_to_json(resumed[0]) == result_to_json(first[0])

    def test_legacy_journal_resumes_without_complaint(self, tmp_path):
        # pre-header journals must stay resumable (no header = no check)
        journal = self._journal(tmp_path)
        task = _task()
        digest = ParallelSweepExecutor._digest(task)
        journal.append(digest, task.label, run_sweep_task(task))
        results = ParallelSweepExecutor(
            journal=journal, resume=True
        ).run([_task()])
        assert results[0] is not None
