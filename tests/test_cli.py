"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "sp"
        assert args.strategy == "arcs-offline"
        assert args.cap is None

    def test_invalid_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "magic"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "crill" in out and "arcs-offline" in out

    def test_search_space(self, capsys):
        assert main(["search-space"]) == 0
        out = capsys.readouterr().out
        assert "2, 4, 8, 16, 24, 32, default" in out

    def test_search_space_bad_machine(self):
        with pytest.raises(ValueError):
            main(["search-space", "--machine", "frontier"])

    def test_run_default_strategy(self, capsys):
        code = main(
            [
                "run", "--app", "synthetic", "--strategy", "default",
                "--repeats", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "time" in out and "energy" in out

    def test_run_online_with_cap(self, capsys):
        code = main(
            [
                "run", "--app", "synthetic", "--strategy", "arcs-online",
                "--cap", "85", "--repeats", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "85W" in out
        assert "chosen configurations" in out

    def test_run_offline_with_history_file(self, tmp_path, capsys):
        history = tmp_path / "h.json"
        argv = [
            "run", "--app", "synthetic", "--strategy", "arcs-offline",
            "--repeats", "1", "--history", str(history),
        ]
        assert main(argv) == 0
        assert history.exists()
        capsys.readouterr()
        # second invocation reuses the tuned history
        assert main(argv) == 0
        assert "chosen configurations" in capsys.readouterr().out
