"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "sp"
        assert args.strategy == "arcs-offline"
        assert args.cap is None

    def test_invalid_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--strategy", "magic"])

    def test_sweep_parallel_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--workers", "4", "--no-cache", "--seed", "7"]
        )
        assert args.workers == 4
        assert args.no_cache is True
        assert args.seed == 7

    def test_sweep_defaults_to_serial_cached(self):
        args = build_parser().parse_args(["sweep"])
        assert args.workers == 1
        assert args.no_cache is False
        assert args.cache_dir.endswith(".cache")

    def test_no_batch_flag_on_run_and_sweep(self):
        assert build_parser().parse_args(["run"]).no_batch is False
        assert build_parser().parse_args(
            ["run", "--no-batch"]
        ).no_batch is True
        assert build_parser().parse_args(
            ["sweep", "--no-batch"]
        ).no_batch is True


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "crill" in out and "arcs-offline" in out

    def test_search_space(self, capsys):
        assert main(["search-space"]) == 0
        out = capsys.readouterr().out
        assert "2, 4, 8, 16, 24, 32, default" in out

    def test_search_space_bad_machine(self):
        with pytest.raises(ValueError):
            main(["search-space", "--machine", "frontier"])

    def test_run_default_strategy(self, capsys):
        code = main(
            [
                "run", "--app", "synthetic", "--strategy", "default",
                "--repeats", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "time" in out and "energy" in out

    def test_run_online_with_cap(self, capsys):
        code = main(
            [
                "run", "--app", "synthetic", "--strategy", "arcs-online",
                "--cap", "85", "--repeats", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "85W" in out
        assert "chosen configurations" in out

    def test_run_cap_on_noncapping_machine_is_friendly(self, capsys):
        """--cap on Minotaur used to silently run at TDP while
        reporting a capped result."""
        with pytest.raises(SystemExit) as err:
            main(
                [
                    "run", "--app", "synthetic",
                    "--machine", "minotaur", "--cap", "85",
                ]
            )
        assert "power-capping" in str(err.value.code)

    def test_run_zero_repeats_is_friendly(self):
        with pytest.raises(SystemExit) as err:
            main(["run", "--app", "synthetic", "--repeats", "0"])
        assert "repeats" in str(err.value.code)

    def test_sweep_rejects_zero_workers(self):
        with pytest.raises(SystemExit) as err:
            main(["sweep", "--app", "synthetic", "--workers", "0"])
        assert "--workers" in str(err.value.code)

    def test_sweep_cached_rerun_hits(self, tmp_path, capsys):
        argv = [
            "sweep", "--app", "synthetic", "--repeats", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "miss(es)" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "0 miss(es)" in second
        # the rendered sweep itself is unchanged
        assert first.splitlines()[:-1] == second.splitlines()[:-1]

    def test_sweep_no_cache_skips_cache_report(self, capsys):
        assert main(
            ["sweep", "--app", "synthetic", "--repeats", "1",
             "--no-cache"]
        ) == 0
        assert "[cache]" not in capsys.readouterr().out

    def test_run_offline_with_history_file(self, tmp_path, capsys):
        history = tmp_path / "h.json"
        argv = [
            "run", "--app", "synthetic", "--strategy", "arcs-offline",
            "--repeats", "1", "--history", str(history),
        ]
        assert main(argv) == 0
        assert history.exists()
        capsys.readouterr()
        # second invocation reuses the tuned history
        assert main(argv) == 0
        assert "chosen configurations" in capsys.readouterr().out


class TestFiguresCommand:
    def test_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.names == []
        assert args.out == "results"
        assert args.formats == "txt,json,csv"
        assert args.workers == 1

    def test_list(self, capsys):
        assert main(["figures", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1_motivation" in out
        assert "table2_sp_optimal_configs" in out
        assert "sweep" in out  # cost column

    def test_unknown_name_is_friendly(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["figures", "fig99_dreams",
                  "--out", str(tmp_path)])
        message = str(err.value.code)
        assert message.startswith("error:")
        assert "fig99_dreams" in message
        assert "fig1_motivation" in message  # lists known names

    def test_unknown_format_is_friendly(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["figures", "table1_search_space",
                  "--out", str(tmp_path), "--formats", "pdf"])
        assert "pdf" in str(err.value.code)

    def test_zero_workers_is_friendly(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["figures", "table1_search_space",
                  "--out", str(tmp_path), "--workers", "0"])
        assert "--workers" in str(err.value.code)

    def test_regenerates_fast_table(self, tmp_path, capsys):
        assert main(
            ["figures", "table1_search_space",
             "--out", str(tmp_path), "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "regenerated 1 artifact(s)" in out
        for suffix in (".txt", ".json", ".csv"):
            assert (tmp_path / f"table1_search_space{suffix}").exists()

    def test_repeated_regeneration_is_byte_identical(self, tmp_path):
        argv = ["figures", "table1_search_space", "fig9_lulesh_regions",
                "--out", str(tmp_path), "--no-cache"]
        assert main(argv) == 0
        first = {
            p.name: p.read_bytes() for p in tmp_path.iterdir()
        }
        assert main(argv) == 0
        second = {
            p.name: p.read_bytes() for p in tmp_path.iterdir()
        }
        assert first == second


class TestAnalysisCommand:
    @staticmethod
    def write_bench(directory, name, value):
        from repro.analysis.bench import bench_payload, write_bench_json

        directory.mkdir(exist_ok=True)
        write_bench_json(
            directory, bench_payload(name, {"t": value})
        )

    def test_compare_ok_exit_zero(self, tmp_path, capsys):
        self.write_bench(tmp_path / "old", "speed", 1.0)
        self.write_bench(tmp_path / "new", "speed", 1.0)
        code = main(["analysis", "compare",
                     str(tmp_path / "old"), str(tmp_path / "new")])
        assert code == 0
        assert "0 regression(s) - OK" in capsys.readouterr().out

    def test_compare_regression_exit_one(self, tmp_path, capsys):
        self.write_bench(tmp_path / "old", "speed", 1.0)
        self.write_bench(tmp_path / "new", "speed", 2.0)
        code = main(["analysis", "compare",
                     str(tmp_path / "old"), str(tmp_path / "new"),
                     "--tolerance", "0.05"])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_missing_dir_is_friendly(self, tmp_path):
        self.write_bench(tmp_path / "old", "speed", 1.0)
        with pytest.raises(SystemExit) as err:
            main(["analysis", "compare", str(tmp_path / "old"),
                  str(tmp_path / "nope")])
        assert str(err.value.code).startswith("error:")

    def test_compare_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analysis"])


def write_capsched(tmp_path, after=30, cap_w=55.0):
    import json

    path = tmp_path / "sched.json"
    path.write_text(
        json.dumps(
            {
                "events": [
                    {
                        "after_region_invocations": after,
                        "cap_w": cap_w,
                    }
                ]
            }
        )
    )
    return str(path)


class TestRobustnessFlags:
    def test_run_new_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.cap_schedule is None
        assert args.checkpoint is None
        assert args.resume_from is None

    def test_missing_fault_plan_is_friendly(self):
        with pytest.raises(SystemExit) as err:
            main(["run", "--app", "synthetic",
                  "--faults", "missing.json"])
        message = str(err.value.code)
        assert message.startswith("error:")
        assert "missing.json" in message
        assert "Traceback" not in message

    def test_missing_cap_schedule_is_friendly(self):
        with pytest.raises(SystemExit) as err:
            main(["run", "--app", "synthetic",
                  "--cap-schedule", "missing.json"])
        message = str(err.value.code)
        assert message.startswith("error:")
        assert "missing.json" in message

    def test_cap_schedule_on_noncapping_machine_is_friendly(
        self, tmp_path
    ):
        sched = write_capsched(tmp_path)
        with pytest.raises(SystemExit) as err:
            main(["run", "--app", "synthetic",
                  "--machine", "minotaur", "--cap-schedule", sched])
        assert "capping" in str(err.value.code)

    def test_run_with_cap_schedule_reports_changes(
        self, tmp_path, capsys
    ):
        code = main(
            ["run", "--app", "synthetic",
             "--strategy", "arcs-online", "--cap", "85",
             "--repeats", "1",
             "--cap-schedule", write_capsched(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cap changes:" in out
        assert "power cap 85W -> 55W" in out

    def test_checkpoint_requires_online_strategy(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["run", "--app", "synthetic",
                  "--strategy", "default",
                  "--checkpoint", str(tmp_path / "ck.json")])
        assert "arcs-online" in str(err.value.code)

    def test_resume_from_missing_checkpoint_is_friendly(self):
        with pytest.raises(SystemExit) as err:
            main(["run", "--app", "synthetic",
                  "--strategy", "arcs-online",
                  "--resume-from", "missing.json"])
        message = str(err.value.code)
        assert message.startswith("error:")
        assert "missing.json" in message

    def test_checkpoint_then_resume_prints_identical_result(
        self, tmp_path, capsys
    ):
        ck = str(tmp_path / "ck.json")
        base = ["run", "--app", "synthetic",
                "--strategy", "arcs-online", "--repeats", "1"]
        assert main(base + ["--checkpoint", ck]) == 0
        first = capsys.readouterr().out
        assert main(base + ["--resume-from", ck]) == 0
        assert capsys.readouterr().out == first

    def test_sweep_resume_with_changed_setup_is_refused(
        self, tmp_path, capsys
    ):
        journal = str(tmp_path / "journal.jsonl")
        base = ["sweep", "--app", "synthetic", "--repeats", "1",
                "--no-cache", "--journal", journal]
        assert main(base) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit) as err:
            main(base + ["--seed", "1", "--resume"])
        message = str(err.value.code)
        assert "journal" in message
        assert "seeds" in message
