"""Unit tests for the fault-injection subsystem and its hardening.

Covers the :mod:`repro.faults` plan/injector layer, the per-site
failure semantics in the machine and APEX layers, the Harmony
measurement guard, the history key error, and the sweep journal.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.history import HistoryKeyMissing, HistoryStore
from repro.experiments.journal import SweepJournal
from repro.faults import (
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    load_fault_plan,
    make_injector,
    save_fault_plan,
)
from repro.harmony.engine import make_strategy
from repro.harmony.session import (
    InvalidMeasurementError,
    MeasurementGuard,
    TuningSession,
)
from repro.harmony.space import Parameter, SearchSpace
from repro.machine.node import SimulatedNode
from repro.machine.rapl import CapWriteRejectedError, RaplReadError
from repro.machine.spec import crill
from repro.openmp.runtime import OpenMPRuntime


def _plan(*specs: FaultSpec, seed: int = 0) -> FaultPlan:
    return FaultPlan(specs=tuple(specs), seed=seed)


# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = _plan(
            FaultSpec(site="rapl.read", action="error", probability=0.5),
            FaultSpec(
                site="measure.noise",
                action="spike",
                start=3,
                max_fires=2,
                magnitude=100.0,
            ),
            seed=9,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultSpec(site="rapl.bogus", action="error")

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError, match="action"):
            FaultSpec(site="rapl.read", action="explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultSpec(site="rapl.read", action="error", probability=1.5)

    def test_unknown_json_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault-plan"):
            FaultPlan.from_json({"seed": 0, "specs": []})
        with pytest.raises(FaultPlanError, match="unknown fault-spec"):
            FaultPlan.from_json(
                {"faults": [{"site": "rapl.read", "action": "error",
                             "when": "always"}]}
            )

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert _plan(FaultSpec(site="rapl.read", action="error"))

    def test_file_round_trip(self, tmp_path):
        plan = _plan(
            FaultSpec(site="sweep.worker", action="crash"), seed=3
        )
        path = tmp_path / "plan.json"
        save_fault_plan(plan, path)
        assert load_fault_plan(path) == plan

    def test_load_missing_file_names_path(self, tmp_path):
        with pytest.raises(FaultPlanError, match="nope.json"):
            load_fault_plan(tmp_path / "nope.json")

    def test_load_bad_json_names_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(FaultPlanError, match="broken.json"):
            load_fault_plan(path)

    def test_example_plan_file_is_valid(self):
        from pathlib import Path

        example = (
            Path(__file__).resolve().parents[1]
            / "examples"
            / "faultplan.json"
        )
        plan = load_fault_plan(example)
        assert plan.specs
        for spec in plan.specs:
            assert spec.action in FAULT_SITES[spec.site]


# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_always_fires_when_probability_one(self):
        inj = FaultInjector(
            plan=_plan(FaultSpec(site="rapl.read", action="error"))
        )
        assert inj.draw("rapl.read") is not None
        assert inj.draw("rapl.cap_write") is None

    def test_deterministic_across_instances(self):
        plan = _plan(
            FaultSpec(site="rapl.read", action="error", probability=0.3),
            seed=11,
        )
        a = [FaultInjector(plan=plan).draw("rapl.read") is not None
             for _ in range(1)]
        draws_a = [
            inj.draw("rapl.read") is not None
            for inj in [FaultInjector(plan=plan)]
            for _ in range(50)
        ]
        inj_b = FaultInjector(plan=plan)
        draws_b = [
            inj_b.draw("rapl.read") is not None for _ in range(50)
        ]
        assert draws_a == draws_b
        assert any(draws_b) and not all(draws_b)

    def test_salt_changes_the_stream(self):
        plan = _plan(
            FaultSpec(site="rapl.read", action="error", probability=0.4),
            seed=5,
        )
        a = FaultInjector(plan=plan, salt=0)
        b = FaultInjector(plan=plan, salt=1)
        draws_a = [a.draw("rapl.read") is not None for _ in range(64)]
        draws_b = [b.draw("rapl.read") is not None for _ in range(64)]
        assert draws_a != draws_b

    def test_start_window(self):
        inj = FaultInjector(
            plan=_plan(
                FaultSpec(site="rapl.read", action="error", start=3)
            )
        )
        fired = [inj.draw("rapl.read") is not None for _ in range(6)]
        assert fired == [False, False, False, True, True, True]

    def test_max_fires(self):
        inj = FaultInjector(
            plan=_plan(
                FaultSpec(site="rapl.read", action="error", max_fires=2)
            )
        )
        fired = [inj.draw("rapl.read") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert inj.fired("rapl.read") == 2
        assert inj.occurrences("rapl.read") == 5

    def test_events_record_site_action_occurrence(self):
        inj = FaultInjector(
            plan=_plan(
                FaultSpec(site="rapl.read", action="stale", start=1)
            )
        )
        inj.draw("rapl.read")
        inj.draw("rapl.read")
        assert [(e.site, e.action, e.occurrence) for e in inj.events] == [
            ("rapl.read", "stale", 1)
        ]

    def test_make_injector_none_for_empty(self):
        assert make_injector(None) is None
        assert make_injector(FaultPlan()) is None
        assert make_injector(
            _plan(FaultSpec(site="rapl.read", action="error"))
        ) is not None


# ---------------------------------------------------------------------------
class TestRaplFaults:
    def _node(self, *specs: FaultSpec) -> SimulatedNode:
        return SimulatedNode(
            crill(), faults=make_injector(_plan(*specs))
        )

    def test_read_error_raises(self):
        node = self._node(FaultSpec(site="rapl.read", action="error"))
        with pytest.raises(RaplReadError, match="socket 0"):
            node.rapl.read_package_energy_j(0)

    def test_stale_read_repeats_last_value(self):
        node = self._node(
            FaultSpec(site="rapl.read", action="stale", start=2)
        )
        node.msr.bump_energy_counter(0, 1 << 16)  # 1 J
        first = node.rapl.read_package_energy_j(0)
        node.msr.bump_energy_counter(0, 1 << 16)  # +1 J
        fresh = node.rapl.read_package_energy_j(0)
        stale = node.rapl.read_package_energy_j(0)  # occurrence 2: stale
        assert fresh > first
        assert stale == fresh

    def test_wraparound_read_is_one_span_behind(self):
        node = self._node(
            FaultSpec(site="rapl.read", action="wraparound", start=1)
        )
        node.msr.bump_energy_counter(0, 5 << 16)
        clean = node.rapl.read_package_energy_j(0)
        wrapped = node.rapl.read_package_energy_j(0)
        span = node.rapl.counter_span_j(0)
        assert wrapped == pytest.approx(clean - span)

    def test_cap_write_rejected(self):
        node = self._node(
            FaultSpec(site="rapl.cap_write", action="reject")
        )
        with pytest.raises(CapWriteRejectedError, match="85"):
            node.set_power_cap(85.0)

    def test_transient_cap_write_rejection_then_success(self):
        node = self._node(
            FaultSpec(site="rapl.cap_write", action="reject", max_fires=1)
        )
        with pytest.raises(CapWriteRejectedError):
            node.set_power_cap(85.0)
        node.set_power_cap(85.0)
        node.settle_after_cap()
        assert node.effective_cap_w(0) == 85.0

    def test_energy_delta_unwraps(self):
        node = SimulatedNode(crill())
        span = node.rapl.counter_span_j(0)
        assert node.energy_delta_j(10.0, 30.0) == pytest.approx(20.0)
        assert node.energy_delta_j(span - 5.0, 3.0) == pytest.approx(8.0)

    def test_faults_survive_reset(self):
        node = self._node(FaultSpec(site="rapl.read", action="error"))
        node.reset()
        with pytest.raises(RaplReadError):
            node.rapl.read_package_energy_j(0)


# ---------------------------------------------------------------------------
class TestMeasurementGuard:
    def test_rejects_nonfinite_and_negative(self):
        guard = MeasurementGuard()
        assert not guard.is_acceptable(float("nan"), [])
        assert not guard.is_acceptable(float("inf"), [])
        assert not guard.is_acceptable(-1.0, [])

    def test_warmup_accepts_any_finite_value(self):
        guard = MeasurementGuard(warmup=3)
        assert guard.is_acceptable(1e12, [0.1, 0.2])

    def test_outlier_rejected_after_warmup(self):
        guard = MeasurementGuard(outlier_factor=50.0, warmup=3)
        accepted = [0.1, 0.12, 0.11]
        assert guard.is_acceptable(4.9, accepted)      # 49x max: ok
        assert not guard.is_acceptable(7.0, accepted)  # ~58x max: out

    def test_all_zero_history_accepts(self):
        guard = MeasurementGuard(warmup=1)
        assert guard.is_acceptable(123.0, [0.0])

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            MeasurementGuard(outlier_factor=1.0)
        with pytest.raises(ValueError):
            MeasurementGuard(warmup=0)
        with pytest.raises(ValueError):
            MeasurementGuard(max_rejects=0)
        with pytest.raises(ValueError):
            MeasurementGuard(max_restarts=-1)


def _space() -> SearchSpace:
    return SearchSpace(
        parameters=(Parameter(name="n_threads", values=(1, 2, 4, 8)),)
    )


def _session(guard=None, factory=False) -> TuningSession:
    space = _space()
    strategy = make_strategy("exhaustive", space)
    return TuningSession(
        space,
        strategy,
        guard=guard,
        strategy_factory=(
            (lambda: make_strategy("exhaustive", space))
            if factory
            else None
        ),
    )


class TestSessionGuard:
    def test_invalid_without_guard_still_raises(self):
        session = _session()
        session.suggest()
        with pytest.raises(InvalidMeasurementError):
            session.report(float("inf"))
        # and InvalidMeasurementError is a ValueError for old callers
        assert issubclass(InvalidMeasurementError, ValueError)

    def test_rejected_value_keeps_candidate_outstanding(self):
        session = _session(guard=MeasurementGuard(warmup=1))
        first = session.suggest()
        session.report(0.1)
        second = session.suggest()
        accepted = session.report(float("nan"))
        assert not accepted
        assert session.stats.rejected == 1
        # re-measure: same candidate comes back
        assert session.suggest() == second

    def test_divergence_restarts_then_fails(self):
        guard = MeasurementGuard(warmup=1, max_rejects=2, max_restarts=1)
        session = _session(guard=guard, factory=True)
        session.suggest()
        session.report(0.1)

        def reject_batch():
            rejected = 0
            while True:
                session.suggest()
                if session.failed:
                    return rejected
                if not session.report(float("nan")):
                    rejected += 1
                if session.stats.restarts or session.failed:
                    return rejected

        reject_batch()  # 3 rejections -> first restart
        assert session.stats.restarts == 1
        assert not session.failed
        while not session.failed:
            session.suggest()
            session.report(float("nan"))
        assert "diverged" in session.failure_reason
        # a failed session with history still serves its best point
        assert session.suggest() == {"n_threads": 1}

    def test_failed_session_without_best_raises(self):
        guard = MeasurementGuard(warmup=1, max_rejects=1, max_restarts=0)
        session = _session(guard=guard)
        session.suggest()
        session.report(float("nan"))
        session.suggest()
        session.report(float("nan"))
        assert session.failed
        with pytest.raises(RuntimeError, match="without a trusted"):
            session.suggest()


# ---------------------------------------------------------------------------
class TestOmptFaults:
    def _bridge_counts(self, *specs: FaultSpec):
        from repro.apex.instrument import ApexOmptBridge
        from repro.workloads.synthetic import synthetic_application
        from repro.workloads.base import run_application

        node = SimulatedNode(
            crill(), faults=make_injector(_plan(*specs))
        )
        runtime = OpenMPRuntime(node, noise_sigma=0.0)
        bridge = ApexOmptBridge(runtime)
        bridge.attach()
        app = synthetic_application(timesteps=2, include_tiny=False)
        result = run_application(app, runtime)
        bridge.shutdown()
        return bridge, result

    def test_timer_dropouts_do_not_crash(self):
        bridge, result = self._bridge_counts(
            FaultSpec(
                site="ompt.timer_stop", action="drop", probability=0.5
            )
        )
        assert bridge.timer_dropouts > 0
        assert bridge.timer_repairs > 0   # stale timers discarded
        assert math.isfinite(result.time_s)

    def test_lost_start_is_repaired(self):
        bridge, result = self._bridge_counts(
            FaultSpec(
                site="ompt.timer_start", action="drop", probability=0.5
            )
        )
        assert bridge.timer_dropouts > 0
        assert bridge.timer_repairs > 0   # stops with no matching start
        assert math.isfinite(result.time_s)

    def test_noise_spike_counted(self):
        bridge, result = self._bridge_counts(
            FaultSpec(
                site="measure.noise", action="spike", max_fires=3
            )
        )
        assert bridge.noise_spikes == 3
        assert math.isfinite(result.time_s)


# ---------------------------------------------------------------------------
class TestHistoryKeyMissing:
    def test_carries_key_path_and_known_keys(self, tmp_path):
        path = tmp_path / "history.json"
        store = HistoryStore(path)
        store.save("a|crill|85W|B", {})
        with pytest.raises(HistoryKeyMissing) as err:
            store.load("b|crill|85W|B")
        exc = err.value
        assert exc.key == "b|crill|85W|B"
        assert exc.path == path
        assert exc.known == ("a|crill|85W|B",)
        assert "no saved history" in str(exc)
        assert str(path) in str(exc)
        assert isinstance(exc, KeyError)  # old except-clauses still work

    def test_in_memory_store_message(self):
        with pytest.raises(HistoryKeyMissing, match="in-memory"):
            HistoryStore().load("missing")


# ---------------------------------------------------------------------------
class TestSweepJournal:
    def _result(self):
        from repro.experiments.runner import (
            ExperimentSetup,
            run_strategy,
        )
        from repro.workloads.synthetic import synthetic_application

        app = synthetic_application(timesteps=1, include_tiny=False)
        setup = ExperimentSetup(spec=crill(), cap_w=85.0, repeats=1)
        return run_strategy("default", app, setup)

    def test_append_load_round_trip(self, tmp_path):
        from repro.experiments.cache import result_to_json

        journal = SweepJournal(tmp_path / "j.jsonl")
        result = self._result()
        journal.append("d1", "task-1", result)
        loaded = journal.load()
        assert set(loaded) == {"d1"}
        assert result_to_json(loaded["d1"]) == result_to_json(result)

    def test_missing_file_is_empty(self, tmp_path):
        assert SweepJournal(tmp_path / "absent.jsonl").load() == {}

    def test_torn_tail_tolerated_and_truncated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        result = self._result()
        journal.append("d1", "t1", result)
        journal.append("d2", "t2", result)
        intact = path.read_text().splitlines()[0] + "\n"
        path.write_text(intact + '{"schema":1,"digest":"d2","re')
        loaded = journal.load()
        assert set(loaded) == {"d1"}
        assert path.read_text() == intact  # torn tail truncated away
        journal.append("d3", "t3", result)
        assert set(journal.load()) == {"d1", "d3"}

    def test_schema_mismatch_lines_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        result = self._result()
        path.write_text(json.dumps({"schema": 999, "digest": "x"}) + "\n")
        journal.append("d1", "t1", result)
        assert set(journal.load()) == {"d1"}

    def test_clear(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.append("d1", "t1", self._result())
        journal.clear()
        assert journal.load() == {}
