"""Tests for OpenMP chunking semantics - these are specification rules,
so they are tested exactly, including property-based coverage."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.openmp.schedule import (
    average_chunk_iters,
    chunks_for,
    fixed_chunks,
    guided_chunks,
    static_assignment,
    static_default_chunks,
)
from repro.openmp.types import OMPConfig, ScheduleKind


def covers_exactly(chunks, n):
    """Chunks partition [0, n) exactly once, in order."""
    pos = 0
    for c in chunks:
        assert c.start == pos
        assert c.size >= 1
        pos = c.stop
    assert pos == n


class TestStaticDefault:
    def test_even_split(self):
        chunks = static_default_chunks(100, 4)
        assert [c.size for c in chunks] == [25, 25, 25, 25]

    def test_remainder_to_leading_threads(self):
        chunks = static_default_chunks(10, 4)
        assert [c.size for c in chunks] == [3, 3, 2, 2]

    def test_more_threads_than_iterations(self):
        chunks = static_default_chunks(3, 8)
        assert len(chunks) == 3
        assert all(c.size == 1 for c in chunks)

    def test_single_thread(self):
        chunks = static_default_chunks(7, 1)
        assert len(chunks) == 1
        assert chunks[0].size == 7


class TestFixedChunks:
    def test_exact_division(self):
        chunks = fixed_chunks(12, 4)
        assert [c.size for c in chunks] == [4, 4, 4]

    def test_trailing_partial_chunk(self):
        chunks = fixed_chunks(10, 4)
        assert [c.size for c in chunks] == [4, 4, 2]

    def test_chunk_larger_than_space(self):
        chunks = fixed_chunks(5, 100)
        assert len(chunks) == 1 and chunks[0].size == 5

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            fixed_chunks(10, 0)


class TestGuided:
    def test_decreasing_sizes(self):
        chunks = guided_chunks(1000, 4, 1)
        sizes = [c.size for c in chunks]
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_first_chunk_is_remaining_over_threads(self):
        chunks = guided_chunks(1000, 4, 1)
        assert chunks[0].size == 250

    def test_min_chunk_respected(self):
        chunks = guided_chunks(1000, 4, 16)
        # all but the final chunk honour the floor
        assert all(c.size >= 16 for c in chunks[:-1])

    def test_min_chunk_one_terminates(self):
        covers_exactly(guided_chunks(7, 3, 1), 7)


class TestChunksFor:
    def test_static_default(self):
        cfg = OMPConfig(8, ScheduleKind.STATIC, None)
        assert len(chunks_for(cfg, 100)) == 8

    def test_static_chunked(self):
        cfg = OMPConfig(8, ScheduleKind.STATIC, 10)
        assert len(chunks_for(cfg, 100)) == 10

    def test_dynamic_default_chunk_is_one(self):
        cfg = OMPConfig(8, ScheduleKind.DYNAMIC, None)
        assert len(chunks_for(cfg, 100)) == 100

    def test_guided_uses_team_size(self):
        cfg = OMPConfig(4, ScheduleKind.GUIDED, None)
        assert chunks_for(cfg, 1000)[0].size == 250


class TestStaticAssignment:
    def test_block_for_default(self):
        cfg = OMPConfig(4, ScheduleKind.STATIC, None)
        chunks = chunks_for(cfg, 100)
        assert static_assignment(cfg, chunks) == [0, 1, 2, 3]

    def test_round_robin_for_chunked(self):
        cfg = OMPConfig(3, ScheduleKind.STATIC, 10)
        chunks = chunks_for(cfg, 100)
        assert static_assignment(cfg, chunks) == [
            0, 1, 2, 0, 1, 2, 0, 1, 2, 0,
        ]

    def test_rejects_dynamic(self):
        cfg = OMPConfig(3, ScheduleKind.DYNAMIC, 1)
        with pytest.raises(ValueError):
            static_assignment(cfg, chunks_for(cfg, 10))


class TestAverageChunk:
    def test_static_default(self):
        cfg = OMPConfig(8, ScheduleKind.STATIC, None)
        assert average_chunk_iters(cfg, 100) == pytest.approx(12.5)

    def test_dynamic_chunk(self):
        cfg = OMPConfig(8, ScheduleKind.DYNAMIC, 4)
        assert average_chunk_iters(cfg, 100) == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# property-based: every schedule partitions the iteration space exactly
# ---------------------------------------------------------------------------
schedule_strategy = st.sampled_from(list(ScheduleKind))
chunk_strategy = st.one_of(st.none(), st.integers(1, 64))


@given(
    n=st.integers(1, 2000),
    threads=st.integers(1, 64),
    schedule=schedule_strategy,
    chunk=chunk_strategy,
)
def test_every_schedule_partitions_exactly(n, threads, schedule, chunk):
    cfg = OMPConfig(threads, schedule, chunk)
    covers_exactly(chunks_for(cfg, n), n)


@given(n=st.integers(1, 2000), threads=st.integers(1, 64))
def test_static_default_at_most_threads_chunks(n, threads):
    assert len(static_default_chunks(n, threads)) <= threads


@given(
    n=st.integers(1, 500),
    threads=st.integers(1, 32),
    chunk=st.integers(1, 50),
)
def test_round_robin_assignment_within_team(n, threads, chunk):
    cfg = OMPConfig(threads, ScheduleKind.STATIC, chunk)
    owners = static_assignment(cfg, chunks_for(cfg, n))
    assert all(0 <= o < threads for o in owners)
