"""Golden-master tests: seed-pinned experiment outputs.

Each test runs a reduced (but structurally faithful) version of a
paper artifact - the Figure 4 / Figure 7 power sweeps and Table II -
serializes the :class:`StrategyRunResult` payloads to canonical JSON,
and compares them byte-for-byte against the checked-in files under
``tests/goldens/``.

When a model change *intentionally* shifts the numbers, refresh the
goldens and review the diff like any other code change:

    PYTHONPATH=src python -m pytest tests/test_golden_masters.py \
        --update-goldens

The batched evaluator must never require a golden refresh on its own:
the differential suite pins batched == scalar bit-for-bit, and these
files pin both against history.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.cache import result_to_json
from repro.experiments.figures import power_sweep
from repro.experiments.runner import ExperimentSetup
from repro.experiments.tables import table2_sp_optimal_configs
from repro.machine.spec import crill
from repro.workloads.bt import bt_application
from repro.workloads.sp import sp_application


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, indent=1) + "\n"


def check_golden(
    name: str, text: str, goldens_dir: Path, update: bool
) -> None:
    path = goldens_dir / name
    if update:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return
    if not path.exists():
        pytest.fail(
            f"golden file {path} is missing; run pytest with "
            "--update-goldens to create it",
            pytrace=False,
        )
    assert text == path.read_text(), (
        f"{name} drifted from its golden master; if the change is "
        "intentional, refresh with --update-goldens and review the diff"
    )


def sweep_payload(sweep) -> dict:
    return {
        "app": sweep.app_label,
        "machine": sweep.machine,
        "results": {
            f"{label}/{strategy}": result_to_json(result)
            for (label, strategy), result in sorted(sweep.results.items())
        },
    }


class TestGoldenMasters:
    def test_fig4_reduced_sweep(self, goldens_dir, update_goldens):
        """SP-B on Crill at TDP + 85W (reduced Figure 4), seed 0."""
        sweep = power_sweep(
            sp_application("B"), crill(), (115.0, 85.0),
            repeats=1, seed=0,
        )
        check_golden(
            "fig4_sp_reduced.json",
            canonical(sweep_payload(sweep)),
            goldens_dir,
            update_goldens,
        )

    def test_fig7_reduced_sweep(self, goldens_dir, update_goldens):
        """BT-B on Crill at 85W (reduced Figure 7), seed 0."""
        sweep = power_sweep(
            bt_application("B"), crill(), (85.0,), repeats=1, seed=0
        )
        check_golden(
            "fig7_bt_reduced.json",
            canonical(sweep_payload(sweep)),
            goldens_dir,
            update_goldens,
        )

    def test_table2_optimal_configs(self, goldens_dir, update_goldens):
        """Table II: ARCS-Offline's chosen configs for SP's four major
        regions at TDP."""
        rows = table2_sp_optimal_configs(
            ExperimentSetup(spec=crill(), repeats=1, seed=0)
        )
        payload = [
            {"region": row.region, "config": row.config} for row in rows
        ]
        check_golden(
            "table2_sp_optimal.json",
            canonical(payload),
            goldens_dir,
            update_goldens,
        )
