"""Integration tests asserting the paper's qualitative claims.

These are the reproduction's acceptance tests: the *shapes* of the
evaluation (who wins, roughly by how much, where) must match Section V.
They run full applications through all three strategies, so they are
the slowest tests in the suite.
"""

from __future__ import annotations

import pytest

from repro.core.history import HistoryStore
from repro.experiments.runner import (
    ExperimentSetup,
    run_arcs_offline,
    run_arcs_online,
    run_default,
)
from repro.machine.spec import crill, minotaur
from repro.workloads.bt import bt_application
from repro.workloads.lulesh import lulesh_application
from repro.workloads.sp import sp_application


@pytest.fixture(scope="module")
def history():
    """Shared history so offline tuning runs once per experiment key."""
    return HistoryStore()


def run_trio(app, spec, cap_w, history, repeats=1):
    setup = ExperimentSetup(
        spec=spec, cap_w=cap_w, repeats=repeats, noise_sigma=0.005
    )
    return (
        run_default(app, setup),
        run_arcs_online(app, setup),
        run_arcs_offline(app, setup, history=history),
    )


def gain(base, other):
    return 100.0 * (base.time_s - other.time_s) / base.time_s


def energy_gain(base, other):
    return 100.0 * (base.energy_j - other.energy_j) / base.energy_j


# ---------------------------------------------------------------------------
# SP - the paper's showcase (Section V-A)
# ---------------------------------------------------------------------------
class TestSPOnCrill:
    @pytest.fixture(scope="class")
    def trio(self, history):
        return run_trio(sp_application("B"), crill(), None, history)

    def test_offline_improves_time_substantially(self, trio):
        base, _online, offline = trio
        # paper: 26-40% across power levels
        assert 15.0 < gain(base, offline) < 50.0

    def test_offline_improves_energy_substantially(self, trio):
        base, _online, offline = trio
        # paper: up to ~40% energy
        assert 15.0 < energy_gain(base, offline) < 50.0

    def test_online_also_improves(self, trio):
        base, online, _offline = trio
        assert gain(base, online) > 8.0

    def test_offline_at_least_as_good_as_online(self, trio):
        _base, online, offline = trio
        assert offline.time_s <= online.time_s * 1.02

    def test_chosen_configs_differ_from_default(self, trio):
        _base, _online, offline = trio
        configs = offline.chosen_configs
        majors = ("compute_rhs", "x_solve", "y_solve", "z_solve")
        non_default = [
            name
            for name in majors
            if configs[name].label() != "32, static, default"
        ]
        assert len(non_default) == 4

    def test_some_region_uses_fewer_threads(self, trio):
        """Table II: tuned thread counts drop below the maximum."""
        _base, _online, offline = trio
        assert any(
            cfg.n_threads < 32
            for cfg in offline.chosen_configs.values()
        )

    def test_improvement_persists_under_cap(self, history):
        base, _online, offline = run_trio(
            sp_application("B"), crill(), 55.0, history
        )
        assert gain(base, offline) > 10.0

    def test_optimal_configs_change_across_caps(self, history):
        """Section II: the best configuration is cap-dependent."""
        _b1, _o1, off_tdp = run_trio(
            sp_application("B"), crill(), None, history
        )
        _b2, _o2, off_55 = run_trio(
            sp_application("B"), crill(), 55.0, history
        )
        assert off_tdp.chosen_configs != off_55.chosen_configs


class TestSPOnMinotaur:
    def test_offline_large_improvement(self, history):
        """Paper: 37% on POWER8."""
        base, _online, offline = run_trio(
            sp_application("B"), minotaur(), None, history
        )
        assert 25.0 < gain(base, offline) < 55.0


# ---------------------------------------------------------------------------
# BT - little headroom (Section V-B)
# ---------------------------------------------------------------------------
class TestBTOnCrill:
    @pytest.fixture(scope="class")
    def trio(self, history):
        return run_trio(bt_application("B"), crill(), None, history)

    def test_offline_gain_is_small(self, trio):
        base, _online, offline = trio
        # paper: at most ~3%, sometimes negative
        assert -4.0 < gain(base, offline) < 8.0

    def test_online_can_be_worse_than_default(self, trio):
        base, online, _offline = trio
        # "In some cases ARCS actually performs worse than the default"
        assert gain(base, online) < 3.0

    def test_bt_gains_much_smaller_than_sp(self, trio, history):
        base_bt, _on, off_bt = trio
        base_sp, _on2, off_sp = run_trio(
            sp_application("B"), crill(), None, history
        )
        assert gain(base_sp, off_sp) > gain(base_bt, off_bt) + 10.0


class TestBTOnMinotaur:
    def test_only_modest_offline_gain(self, history):
        """Paper: only Offline achieved ~8% on POWER8."""
        base, online, offline = run_trio(
            bt_application("B"), minotaur(), None, history
        )
        assert 2.0 < gain(base, offline) < 20.0
        assert gain(base, online) < gain(base, offline)


# ---------------------------------------------------------------------------
# LULESH - tiny regions defeat Online on Crill (Section V-C)
# ---------------------------------------------------------------------------
class TestLULESHOnCrill:
    @pytest.fixture(scope="class")
    def trio(self, history):
        return run_trio(lulesh_application(45), crill(), None, history)

    def test_online_degrades(self, trio):
        """'with ARCS-Online we observed a degradation ... for every
        power level' (Crill)."""
        base, online, _offline = trio
        assert gain(base, online) < 0.5

    def test_offline_roughly_neutral_time(self, trio):
        base, _online, offline = trio
        assert -5.0 < gain(base, offline) < 8.0

    def test_offline_still_saves_energy(self, trio):
        base, _online, offline = trio
        assert energy_gain(base, offline) > 0.0

    def test_overhead_dominated_by_config_changes(self, trio):
        _base, online, _offline = trio
        overhead = online.overhead
        assert overhead is not None
        assert overhead.config_change_s > 0


class TestLULESHOnMinotaur:
    def test_offline_wins_online_modest(self, history):
        """Paper: ~14% offline, ~4% online on POWER8."""
        base, online, offline = run_trio(
            lulesh_application(45), minotaur(), None, history
        )
        assert 4.0 < gain(base, offline) < 25.0
        assert gain(base, online) < gain(base, offline)
