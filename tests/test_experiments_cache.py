"""Tests for the content-addressed experiment result cache."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    ExperimentCache,
    app_fingerprint,
    experiment_digest,
    result_from_json,
    result_to_json,
    tuning_digest,
)
from repro.experiments.runner import (
    ExperimentSetup,
    run_arcs_offline,
    run_default,
)
from repro.machine.spec import crill
from repro.workloads.synthetic import synthetic_application

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def app():
    return synthetic_application(timesteps=3, include_tiny=False)


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(spec=crill(), cap_w=85.0, repeats=2)


@pytest.fixture(scope="module")
def offline_result(app, setup):
    return run_arcs_offline(app, setup)


@pytest.fixture
def cache(tmp_path):
    return ExperimentCache(tmp_path / "cache")


class TestDigest:
    def test_deterministic_within_process(self, app, setup):
        assert experiment_digest(app, setup, "default") == (
            experiment_digest(app, setup, "default")
        )

    def test_sensitive_to_every_keyed_field(self, app, setup):
        base = experiment_digest(app, setup, "default")
        variants = [
            experiment_digest(app, setup, "arcs-offline"),
            experiment_digest(
                app,
                ExperimentSetup(spec=crill(), cap_w=70.0, repeats=2),
                "default",
            ),
            experiment_digest(
                app,
                ExperimentSetup(spec=crill(), cap_w=85.0, repeats=3),
                "default",
            ),
            experiment_digest(
                app,
                ExperimentSetup(
                    spec=crill(), cap_w=85.0, repeats=2, seed=1
                ),
                "default",
            ),
            experiment_digest(
                app,
                ExperimentSetup(
                    spec=crill(), cap_w=85.0, repeats=2,
                    noise_sigma=0.02,
                ),
                "default",
            ),
            experiment_digest(
                app,
                ExperimentSetup(
                    spec=crill(), cap_w=85.0, repeats=2,
                    online_max_evals=10,
                ),
                "default",
            ),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_app_content_matters_not_just_label(self, setup):
        """Two apps with the same (name, workload) but different
        content must not collide in the cache."""
        a = synthetic_application(timesteps=3, include_tiny=False)
        b = synthetic_application(timesteps=4, include_tiny=False)
        assert a.label == b.label
        assert app_fingerprint(a) != app_fingerprint(b)
        assert experiment_digest(a, setup, "default") != (
            experiment_digest(b, setup, "default")
        )

    def test_stable_across_processes(self, app, setup):
        """The digest must not depend on interpreter state (e.g.
        PYTHONHASHSEED) - workers and later runs must agree."""
        script = (
            "from repro.experiments.cache import experiment_digest\n"
            "from repro.experiments.runner import ExperimentSetup\n"
            "from repro.machine.spec import crill\n"
            "from repro.workloads.synthetic import "
            "synthetic_application\n"
            "app = synthetic_application(timesteps=3, "
            "include_tiny=False)\n"
            "setup = ExperimentSetup(spec=crill(), cap_w=85.0, "
            "repeats=2)\n"
            "print(experiment_digest(app, setup, 'arcs-offline'))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        digests = set()
        for hashseed in ("1", "2"):
            env["PYTHONHASHSEED"] = hashseed
            out = subprocess.run(
                [sys.executable, "-c", script],
                env=env, capture_output=True, text=True, check=True,
            )
            digests.add(out.stdout.strip())
        digests.add(experiment_digest(app, setup, "arcs-offline"))
        assert len(digests) == 1

    def test_tuning_digest_shared_across_strategy_knobs(self, app):
        """The tuned history is keyed by (app, machine, cap, seed,
        noise) only - repeats and online budget do not re-tune."""
        a = ExperimentSetup(spec=crill(), cap_w=85.0, repeats=2)
        b = ExperimentSetup(
            spec=crill(), cap_w=85.0, repeats=3, online_max_evals=10
        )
        c = ExperimentSetup(spec=crill(), cap_w=70.0, repeats=2)
        assert tuning_digest(app, a) == tuning_digest(app, b)
        assert tuning_digest(app, a) != tuning_digest(app, c)


class TestSerialization:
    def test_roundtrip_is_lossless(self, offline_result):
        blob = result_to_json(offline_result)
        # through actual JSON text, as the cache stores it
        restored = result_from_json(json.loads(json.dumps(blob)))
        assert restored == offline_result

    def test_roundtrip_preserves_floats_exactly(self, offline_result):
        restored = result_from_json(
            json.loads(json.dumps(result_to_json(offline_result)))
        )
        assert restored.time_s == offline_result.time_s
        assert restored.energy_j == offline_result.energy_j
        for a, b in zip(restored.runs, offline_result.runs):
            assert a.time_s == b.time_s
            assert a.region_miss_rates == b.region_miss_rates

    def test_none_energy_survives(self, app):
        from repro.machine.spec import minotaur

        setup = ExperimentSetup(spec=minotaur(), repeats=1)
        result = run_default(app, setup)
        assert result.energy_j is None
        restored = result_from_json(
            json.loads(json.dumps(result_to_json(result)))
        )
        assert restored == result


class TestCacheStore:
    def test_miss_then_hit(self, cache, app, setup, offline_result):
        assert cache.get(app, setup, "arcs-offline") is None
        cache.put(app, setup, "arcs-offline", offline_result)
        assert cache.get(app, setup, "arcs-offline") == offline_result
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_distinct_cells_do_not_collide(
        self, cache, app, setup, offline_result
    ):
        cache.put(app, setup, "arcs-offline", offline_result)
        assert cache.get(app, setup, "default") is None
        other = ExperimentSetup(spec=crill(), cap_w=70.0, repeats=2)
        assert cache.get(app, other, "arcs-offline") is None

    def test_corrupt_entry_is_a_miss(
        self, cache, app, setup, offline_result
    ):
        path = cache.put(app, setup, "arcs-offline", offline_result)
        path.write_text("{ not json")
        assert cache.get(app, setup, "arcs-offline") is None
        assert cache.stats.invalidated == 1

    def test_schema_mismatch_invalidates(
        self, cache, app, setup, offline_result
    ):
        path = cache.put(app, setup, "arcs-offline", offline_result)
        blob = json.loads(path.read_text())
        blob["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(blob))
        assert cache.get(app, setup, "arcs-offline") is None
        assert cache.stats.invalidated == 1
        # a fresh put repairs the entry
        cache.put(app, setup, "arcs-offline", offline_result)
        assert cache.get(app, setup, "arcs-offline") == offline_result

    def test_truncated_entry_is_a_miss(
        self, cache, app, setup, offline_result
    ):
        """A crash mid-write must never poison later runs."""
        path = cache.put(app, setup, "arcs-offline", offline_result)
        payload = path.read_text()
        path.write_text(payload[: len(payload) // 2])
        assert cache.get(app, setup, "arcs-offline") is None

    def test_put_leaves_no_temp_files(
        self, cache, app, setup, offline_result
    ):
        path = cache.put(app, setup, "arcs-offline", offline_result)
        leftovers = [
            p for p in path.parent.iterdir() if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_clear(self, cache, app, setup, offline_result):
        cache.put(app, setup, "arcs-offline", offline_result)
        cache.history_path(app, setup).parent.mkdir(
            parents=True, exist_ok=True
        )
        cache.history_path(app, setup).write_text("{}")
        assert cache.clear() == 2
        assert cache.get(app, setup, "arcs-offline") is None
