"""Workload-size generality: classes B vs C and meshes 45 vs 60.

Section V-A: "the behavior of a region changes across different
workloads ... the configurations of the regions from SP differed
across workloads which also proves the claim we made in Section II."
"""

from __future__ import annotations

import pytest

from repro.core.history import HistoryStore
from repro.experiments.runner import (
    ExperimentSetup,
    run_arcs_offline,
    run_default,
)
from repro.machine.spec import crill
from repro.workloads.bt import bt_application
from repro.workloads.lulesh import lulesh_application
from repro.workloads.sp import sp_application


@pytest.fixture(scope="module")
def history():
    return HistoryStore()


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(spec=crill(), repeats=1, noise_sigma=0.005)


class TestSPAcrossWorkloads:
    def test_class_c_improvement_persists(self, setup, history):
        """Figure 5: up to 40%/42% improvement also on data set C."""
        app = sp_application("C")
        base = run_default(app, setup)
        offline = run_arcs_offline(app, setup, history=history)
        time_gain = 1 - offline.time_s / base.time_s
        energy_gain = 1 - offline.energy_j / base.energy_j
        assert time_gain > 0.15
        assert energy_gain > 0.15

    def test_configs_differ_across_workloads(self, setup, history):
        """The optimal configuration is workload-dependent."""
        off_b = run_arcs_offline(
            sp_application("B"), setup, history=history
        )
        off_c = run_arcs_offline(
            sp_application("C"), setup, history=history
        )
        assert off_b.chosen_configs != off_c.chosen_configs

    def test_history_keys_distinguish_workloads(self, setup, history):
        run_arcs_offline(sp_application("B"), setup, history=history)
        run_arcs_offline(sp_application("C"), setup, history=history)
        keys = history.keys()
        assert any(k.endswith("|B") for k in keys)
        assert any(k.endswith("|C") for k in keys)


class TestBTClassC:
    def test_headroom_grows_but_stays_below_sp(self, setup, history):
        """Class C's 4x footprint makes BT's compute_rhs more
        memory-bound (more tunable than at class B), but BT still
        offers far less headroom than SP at the same class."""
        bt = bt_application("C")
        bt_base = run_default(bt, setup)
        bt_off = run_arcs_offline(bt, setup, history=history)
        bt_gain = 1 - bt_off.time_s / bt_base.time_s

        sp = sp_application("C")
        sp_base = run_default(sp, setup)
        sp_off = run_arcs_offline(sp, setup, history=history)
        sp_gain = 1 - sp_off.time_s / sp_base.time_s

        assert -0.05 < bt_gain < 0.20
        assert bt_gain < sp_gain


class TestLULESHMesh60:
    def test_online_still_degrades(self, history):
        """The tiny-region overhead pathology persists at mesh 60."""
        from repro.experiments.runner import run_arcs_online

        setup = ExperimentSetup(spec=crill(), repeats=1)
        app = lulesh_application(60)
        base = run_default(app, setup)
        online = run_arcs_online(app, setup)
        assert online.time_s > base.time_s * 0.99
