"""Tests for the DRAM bandwidth/queueing model."""

from __future__ import annotations

import pytest

from repro.machine.memory import MemoryModel
from repro.machine.spec import crill, minotaur


@pytest.fixture
def mem():
    return MemoryModel(crill())


class TestEffectiveBandwidth:
    def test_full_bw_at_few_streams(self, mem):
        bw = mem.effective_bandwidth(2, crill().base_freq_ghz)
        assert bw == pytest.approx(crill().mem_bw_bytes_per_s)

    def test_stream_contention_reduces_bw(self, mem):
        few = mem.effective_bandwidth(4, 2.4)
        many = mem.effective_bandwidth(16, 2.4)
        assert many < few

    def test_frequency_droop(self, mem):
        assert mem.effective_bandwidth(2, 1.2) < mem.effective_bandwidth(
            2, 2.4
        )

    def test_minotaur_tolerates_more_streams(self):
        """POWER8's buffered memory handles concurrency much better
        (its spec has a lower stream penalty)."""
        c = MemoryModel(crill())
        m = MemoryModel(minotaur())
        c_ratio = c.effective_bandwidth(40, 2.4) / c.effective_bandwidth(
            2, 2.4
        )
        m_ratio = m.effective_bandwidth(40, 2.92) / m.effective_bandwidth(
            2, 2.92
        )
        assert m_ratio > c_ratio


class TestContentionMultiplier:
    def test_idle_bus_no_inflation(self, mem):
        assert mem.contention_multiplier(0.0, 2.4, 1) == pytest.approx(1.0)

    def test_saturated_bus_large_inflation(self, mem):
        mult = mem.contention_multiplier(1e12, 2.4, 16)
        assert mult > 10.0

    def test_multiplier_bounded(self, mem):
        mult = mem.contention_multiplier(1e15, 2.4, 16)
        assert mult <= 1.0 / (1.0 - 0.95) + 1e-9

    def test_monotone_in_traffic(self, mem):
        rates = [1e9, 1e10, 3e10, 5e10]
        mults = [mem.contention_multiplier(r, 2.4, 8) for r in rates]
        assert all(b >= a for a, b in zip(mults, mults[1:]))

    def test_negative_traffic_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.contention_multiplier(-1.0, 2.4, 1)
