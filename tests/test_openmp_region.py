"""Tests for region profiles and imbalance specs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.cache import MemoryProfile
from repro.openmp.region import ImbalanceSpec, RegionProfile


def mem():
    return MemoryProfile(bytes_per_iter=1024.0, footprint_bytes=1e6)


class TestImbalanceSpec:
    def test_none_kind_uniform(self):
        w = ImbalanceSpec(kind="none").weights(100, "r")
        assert (w == 1.0).all()

    def test_zero_amplitude_uniform(self):
        w = ImbalanceSpec(kind="linear", amplitude=0.0).weights(64, "r")
        assert (w == 1.0).all()

    def test_linear_ramp(self):
        w = ImbalanceSpec(kind="linear", amplitude=0.5).weights(101, "r")
        assert w[0] < w[-1]
        assert w.mean() == pytest.approx(1.0)

    def test_sawtooth_periodic(self):
        spec = ImbalanceSpec(kind="sawtooth", amplitude=0.4, period=8)
        w = spec.weights(64, "r")
        assert np.allclose(w[:8], w[8:16])

    def test_step_heavy_fraction(self):
        spec = ImbalanceSpec(
            kind="step", amplitude=1.0, heavy_fraction=0.25
        )
        w = spec.weights(100, "r")
        assert (w[:25] > w[50]).all()

    def test_random_seeded_by_name(self):
        spec = ImbalanceSpec(kind="random", amplitude=0.3)
        assert (spec.weights(64, "a") == spec.weights(64, "a")).all()
        assert (spec.weights(64, "a") != spec.weights(64, "b")).any()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ImbalanceSpec(kind="zigzag")

    def test_step_requires_valid_fraction(self):
        with pytest.raises(ValueError):
            ImbalanceSpec(kind="step", amplitude=1.0, heavy_fraction=0.0)

    @given(
        kind=st.sampled_from(["none", "linear", "sawtooth", "step",
                              "random"]),
        amplitude=st.floats(0.0, 2.0),
        n=st.integers(1, 500),
    )
    def test_weights_positive_mean_one(self, kind, amplitude, n):
        kwargs = {"kind": kind, "amplitude": amplitude}
        spec = ImbalanceSpec(**kwargs)
        w = spec.weights(n, "prop")
        assert (w > 0).all()
        assert w.mean() == pytest.approx(1.0)


class TestRegionProfile:
    def test_valid(self):
        r = RegionProfile(
            name="r", iterations=100, cpu_ns_per_iter=1000.0, memory=mem()
        )
        assert r.ideal_serial_seconds() == pytest.approx(1e-4)

    def test_serial_included_in_ideal(self):
        r = RegionProfile(
            name="r",
            iterations=100,
            cpu_ns_per_iter=1000.0,
            memory=mem(),
            serial_ns=5e4,
        )
        assert r.ideal_serial_seconds() == pytest.approx(1.5e-4)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RegionProfile(
                name="", iterations=1, cpu_ns_per_iter=1.0, memory=mem()
            )

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            RegionProfile(
                name="r", iterations=0, cpu_ns_per_iter=1.0, memory=mem()
            )

    def test_iteration_weights_shape(self):
        r = RegionProfile(
            name="r",
            iterations=64,
            cpu_ns_per_iter=1.0,
            memory=mem(),
            imbalance=ImbalanceSpec(kind="random", amplitude=0.2),
        )
        assert r.iteration_weights().shape == (64,)
