"""Tests for the unified telemetry layer: bus, metrics, flight
recorder, sinks, trace export, CLI surfaces and determinism."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.cache import result_to_json
from repro.experiments.journal import SweepJournal
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    SweepTask,
    SweepTaskError,
    task_run_id,
)
from repro.experiments.runner import ExperimentSetup, run_arcs_online
from repro.machine.spec import crill
from repro.supervise import RunAbortedError
from repro.telemetry import (
    FlightRecorder,
    JsonlSink,
    MetricsRegistry,
    TelemetryBus,
    bus,
    export_chrome_trace,
    install,
    load_telemetry_dir,
    read_jsonl,
    render_decision_timeline,
    render_metrics_summary,
)
from repro.workloads.synthetic import synthetic_application


@pytest.fixture
def enabled_bus(tmp_path):
    """An installed, enabled bus writing ``out/telemetry.jsonl``;
    always restores the disabled default afterwards."""
    out = tmp_path / "out"
    tb = TelemetryBus(enabled=True)
    tb.add_sink(JsonlSink(out / "telemetry.jsonl"))
    previous = install(tb)
    try:
        yield tb, out
    finally:
        install(previous)
        tb.close()


def small_app():
    return synthetic_application(timesteps=8)


def small_setup(**kw):
    kw.setdefault("spec", crill())
    kw.setdefault("repeats", 1)
    kw.setdefault("seed", 3)
    return ExperimentSetup(**kw)


# ---------------------------------------------------------------------------
# bus semantics
# ---------------------------------------------------------------------------
class TestBus:
    def test_disabled_bus_records_nothing(self):
        tb = TelemetryBus(enabled=False)
        tb.emit("x", a=1)
        tb.count("c")
        tb.gauge("g", 1.0)
        tb.observe("h", 1.0)
        with tb.span("s") as attrs:
            attrs["k"] = "v"  # must be accepted and discarded
        tb.meta(run="r")
        assert len(tb.flight) == 0
        assert not tb.metrics.counters
        assert not tb.metrics.histograms

    def test_default_process_bus_is_disabled(self):
        assert bus().enabled is False

    def test_events_carry_monotone_seq_and_ts(self):
        tb = TelemetryBus(enabled=True)
        sink_records = []
        tb.add_sink(
            type(
                "S", (), {
                    "write": lambda self, r: sink_records.append(r),
                    "flush": lambda self: None,
                    "close": lambda self: None,
                }
            )()
        )
        clock = iter([1.0, 2.0, 3.0])
        tb.bind_clock(lambda: next(clock))
        tb.emit("a")
        tb.emit("b")
        assert [r["name"] for r in sink_records] == ["a", "b"]
        assert sink_records[0]["seq"] < sink_records[1]["seq"]
        assert sink_records[0]["ts"] <= sink_records[1]["ts"]

    def test_clock_rebind_keeps_timeline_monotone(self):
        tb = TelemetryBus(enabled=True)
        tb.bind_clock(lambda: 5.0)
        assert tb.now() == pytest.approx(5.0)
        # a fresh repeat's node restarts its clock at zero; the bus
        # must pin the offset so time never goes backwards
        tb.bind_clock(lambda: 0.5)
        assert tb.now() == pytest.approx(5.5)

    def test_span_finish_matches_contextmanager_record(self):
        records_a, records_b = [], []

        def collector(records):
            return type(
                "S", (), {
                    "write": lambda self, r: records.append(r),
                    "flush": lambda self: None,
                    "close": lambda self: None,
                }
            )()

        cm = TelemetryBus(enabled=True)
        cm.add_sink(collector(records_a))
        with cm.span("omp.region", region="r") as attrs:
            attrs["time_s"] = 0.5

        fast = TelemetryBus(enabled=True)
        fast.add_sink(collector(records_b))
        begin, seq = fast.span_begin()
        fast.span_finish(
            "omp.region", begin, seq, region="r", time_s=0.5
        )
        assert records_a == records_b

    def test_close_flushes_metrics_and_is_idempotent(self, tmp_path):
        tb = TelemetryBus(enabled=True)
        tb.add_sink(JsonlSink(tmp_path / "t.jsonl"))
        tb.count("c", 2)
        tb.close()
        tb.close()
        records = read_jsonl(tmp_path / "t.jsonl")
        metric = [r for r in records if r["type"] == "metric"]
        assert metric == [
            {
                "type": "metric", "kind": "counter", "name": "c",
                "value": 2, "ts": 0.0, "seq": 1,
            }
        ]


class TestMetricsRegistry:
    def test_snapshot_sorted_and_complete(self):
        m = MetricsRegistry()
        m.count("b")
        m.count("a", 2)
        m.gauge("g", 4.5)
        m.observe("h", 1.0)
        m.observe("h", 3.0)
        snap = m.snapshot()
        assert [r["name"] for r in snap] == ["a", "b", "g", "h"]
        hist = snap[-1]
        assert hist["count"] == 2
        assert hist["min"] == 1.0
        assert hist["max"] == 3.0
        assert hist["mean"] == pytest.approx(2.0)

    def test_snapshot_is_strict_json(self):
        m = MetricsRegistry()
        m.count("a")
        for record in m.snapshot():
            json.dumps(record, allow_nan=False)


class TestFlightRecorder:
    def test_bounded_to_last_n(self):
        fr = FlightRecorder(3)
        for i in range(10):
            fr.record({"type": "event", "name": f"e{i}", "ts": 0.0,
                       "seq": i, "attrs": {}})
        assert len(fr) == 3
        dump = fr.dump()
        assert len(dump) == 3
        assert "e9" in dump[-1]

    def test_run_aborted_error_carries_flight_dump(self):
        tb = TelemetryBus(enabled=True)
        previous = install(tb)
        try:
            tb.emit("supervise.retry", region="r", attempt=1)
            err = RunAbortedError("r", "kept failing")
        finally:
            install(previous)
        assert any("supervise.retry" in line for line in err.flight)

    def test_sweep_task_error_carries_flight_dump(self):
        tb = TelemetryBus(enabled=True)
        previous = install(tb)
        task = SweepTask(
            app=small_app(), spec=crill(), cap_w=None,
            strategy="default", repeats=1, seed=0,
        )
        try:
            tb.emit("sweep.task_retry", task="t", attempt=1)
            err = SweepTaskError(task, attempts=2, cause=ValueError("x"))
        finally:
            install(previous)
        assert any("sweep.task_retry" in line for line in err.flight)


# ---------------------------------------------------------------------------
# sinks and export
# ---------------------------------------------------------------------------
class TestSinks:
    def test_read_jsonl_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a":1}\n{"b":2}\n{"tor')
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_load_telemetry_dir_requires_files(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_telemetry_dir(tmp_path)

    def test_chrome_trace_structure(self, enabled_bus):
        tb, out = enabled_bus
        tb.meta(run="test")
        with tb.span("omp.region", region="r"):
            pass
        tb.emit("cap.change", cap_from="tdp", cap_to="85W")
        tb.count("c")
        tb.close()
        trace = json.loads(export_chrome_trace(out).read_text())
        events = trace["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        names = {e["name"] for e in events}
        assert {"process_name", "omp.region", "cap.change", "c"} <= names
        # every event is on a numbered process track
        assert all(isinstance(e["pid"], int) for e in events)


# ---------------------------------------------------------------------------
# end-to-end: run, determinism, equivalence
# ---------------------------------------------------------------------------
class TestEndToEnd:
    def _run_with_telemetry(self, out, seed=3):
        tb = TelemetryBus(enabled=True)
        tb.add_sink(JsonlSink(out / "telemetry.jsonl"))
        previous = install(tb)
        try:
            result = run_arcs_online(
                small_app(), small_setup(seed=seed)
            )
        finally:
            install(previous)
            tb.close()
        return result

    def test_event_taxonomy_present(self, tmp_path):
        self._run_with_telemetry(tmp_path)
        records = read_jsonl(tmp_path / "telemetry.jsonl")
        names = {r["name"] for r in records}
        assert "omp.region" in names        # spans
        assert "policy.apply" in names      # decisions
        assert "policy.report" in names     # objective feedback
        assert "harmony.tells" in names     # search metric
        assert "ompt.dispatch" in names     # dispatch counters
        assert "run.repeat" in names        # runner phases

    def test_same_seed_runs_are_byte_identical(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        self._run_with_telemetry(a)
        self._run_with_telemetry(b)
        assert (
            (a / "telemetry.jsonl").read_bytes()
            == (b / "telemetry.jsonl").read_bytes()
        )

    def test_telemetry_does_not_change_results(self, tmp_path):
        baseline = run_arcs_online(small_app(), small_setup())
        traced = self._run_with_telemetry(tmp_path)
        assert result_to_json(traced) == result_to_json(baseline)

    def test_all_records_are_strict_json(self, tmp_path):
        self._run_with_telemetry(tmp_path)
        for line in (
            (tmp_path / "telemetry.jsonl").read_text().splitlines()
        ):
            json.loads(line)  # parse=strict; Infinity would raise below
            assert "Infinity" not in line and "NaN" not in line


# ---------------------------------------------------------------------------
# timeline / report rendering
# ---------------------------------------------------------------------------
class TestRendering:
    def _loaded(self, tmp_path):
        tb = TelemetryBus(enabled=True)
        tb.add_sink(JsonlSink(tmp_path / "telemetry.jsonl"))
        previous = install(tb)
        try:
            run_arcs_online(small_app(), small_setup(cap_w=85.0))
        finally:
            install(previous)
            tb.close()
        return load_telemetry_dir(tmp_path)

    def test_decision_timeline_pairs_apply_and_report(self, tmp_path):
        text = render_decision_timeline(self._loaded(tmp_path))
        assert "-> accept" in text or "-> reject" in text
        assert "objective=" in text
        assert "[cap=85W]" in text

    def test_region_filter(self, tmp_path):
        loaded = self._loaded(tmp_path)
        regions = {
            r["attrs"]["region"]
            for _, records in loaded
            for r in records
            if r.get("name") == "policy.apply"
        }
        pick = sorted(regions)[0]
        text = render_decision_timeline(loaded, region=pick)
        others = regions - {pick}
        assert pick in text
        assert not any(f" {other}:" in text for other in others)

    def test_metrics_summary_table(self, tmp_path):
        text = render_metrics_summary(self._loaded(tmp_path))
        assert "policy.applies" in text
        assert "counter" in text
        assert "histogram" in text


# ---------------------------------------------------------------------------
# CLI surfaces
# ---------------------------------------------------------------------------
class TestCli:
    def test_run_telemetry_writes_jsonl_and_trace(
        self, tmp_path, capsys
    ):
        out = tmp_path / "out"
        code = main(
            [
                "run", "--app", "synthetic", "--strategy",
                "arcs-online", "--repeats", "1",
                "--telemetry", str(out),
            ]
        )
        assert code == 0
        assert (out / "telemetry.jsonl").exists()
        trace = json.loads((out / "trace.json").read_text())
        assert trace["traceEvents"]
        # the meta header identifies the run
        meta = [
            r for r in read_jsonl(out / "telemetry.jsonl")
            if r["type"] == "meta"
        ]
        assert meta and meta[0]["attrs"]["strategy"] == "arcs-online"

    def test_trace_and_report_commands(self, tmp_path, capsys):
        out = tmp_path / "out"
        main(
            [
                "run", "--app", "synthetic", "--strategy",
                "arcs-online", "--repeats", "1",
                "--telemetry", str(out),
            ]
        )
        capsys.readouterr()
        assert main(["trace", str(out)]) == 0
        timeline = capsys.readouterr().out
        assert "objective=" in timeline
        assert main(["report", "--telemetry", str(out)]) == 0
        report = capsys.readouterr().out
        assert "policy.applies" in report

    def test_trace_missing_dir_is_friendly(self, tmp_path):
        with pytest.raises(SystemExit, match="error"):
            main(["trace", str(tmp_path / "nope")])

    def test_sweep_telemetry_writes_per_task_files(
        self, tmp_path, capsys
    ):
        out = tmp_path / "tel"
        code = main(
            [
                "sweep", "--app", "synthetic", "--repeats", "1",
                "--no-cache", "--telemetry", str(out),
            ]
        )
        assert code == 0
        assert (out / "sweep.jsonl").exists()
        assert list(out.glob("task-*.jsonl"))
        assert (out / "trace.json").exists()
        parent = read_jsonl(out / "sweep.jsonl")
        names = {r["name"] for r in parent}
        assert "sweep.task_start" in names
        assert "sweep.task_done" in names


# ---------------------------------------------------------------------------
# journal run-id stitching
# ---------------------------------------------------------------------------
class TestJournalRunIds:
    def test_journal_records_run_id_and_resume_reuses_it(
        self, tmp_path
    ):
        journal_path = tmp_path / "sweep.journal"
        telemetry = tmp_path / "tel"
        task = SweepTask(
            app=small_app(), spec=crill(), cap_w=None,
            strategy="default", repeats=1, seed=0,
            telemetry_dir=str(telemetry),
        )
        executor = ParallelSweepExecutor(
            journal=SweepJournal(journal_path)
        )
        executor.run([task])
        run_id = task_run_id(task)
        assert (telemetry / f"task-{run_id}.jsonl").exists()
        ids = SweepJournal(journal_path).run_ids()
        assert list(ids.values()) == [run_id]

        # a resumed executor serves the cell from the journal without
        # re-running it; the run_id mapping still ties the journaled
        # cell to its existing trace file
        resumed = ParallelSweepExecutor(
            journal=SweepJournal(journal_path), resume=True
        )
        results = resumed.run([task])
        assert len(results) == 1
        assert SweepJournal(journal_path).run_ids() == ids

    def test_telemetry_dir_does_not_change_digest(self):
        plain = SweepTask(
            app=small_app(), spec=crill(), cap_w=None,
            strategy="default", repeats=1, seed=0,
        )
        traced = SweepTask(
            app=small_app(), spec=crill(), cap_w=None,
            strategy="default", repeats=1, seed=0,
            telemetry_dir="/anywhere",
        )
        assert task_run_id(plain) == task_run_id(traced)


# ---------------------------------------------------------------------------
# histogram percentile edge cases (property-based)
# ---------------------------------------------------------------------------
class TestHistogramPercentiles:
    def test_empty_histogram_returns_none(self):
        from repro.telemetry.metrics import HistogramStats

        hist = HistogramStats()
        assert hist.percentile(50) is None
        assert hist.percentile(99) is None

    def test_single_sample_is_every_percentile(self):
        from repro.telemetry.metrics import HistogramStats

        hist = HistogramStats()
        hist.observe(7.25)
        for p in (0, 1, 50, 95, 99, 100):
            assert hist.percentile(p) == 7.25

    def test_out_of_range_percentile_raises(self):
        from repro.telemetry.metrics import HistogramStats

        hist = HistogramStats()
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(-0.1)
        with pytest.raises(ValueError):
            hist.percentile(100.1)

    def test_property_percentiles_across_sample_counts(self):
        """For every n in 0..200: never an index error, always a
        retained sample (or None when empty), monotone in p, and
        p0/p100 pin to min/max."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.telemetry.metrics import HistogramStats

        @settings(max_examples=60, deadline=None)
        @given(
            n=st.integers(min_value=0, max_value=200),
            p=st.floats(min_value=0.0, max_value=100.0),
            seed=st.integers(min_value=0, max_value=2**31),
        )
        def check(n, p, seed):
            import random

            rng = random.Random(seed)
            values = [rng.uniform(-50.0, 50.0) for _ in range(n)]
            hist = HistogramStats()
            for value in values:
                hist.observe(value)
            got = hist.percentile(p)
            if n == 0:
                assert got is None
                return
            assert got in values
            assert hist.percentile(0) == min(values)
            assert hist.percentile(100) == max(values)
            assert hist.percentile(0) <= got <= hist.percentile(100)
            # monotone in p
            assert got <= hist.percentile(min(100.0, p + 1.0))

        check()

    def test_metric_snapshot_carries_percentiles(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("h", value)
        [record] = [
            r for r in registry.snapshot() if r["kind"] == "histogram"
        ]
        assert record["p50"] == 2.0
        assert record["p95"] == 4.0
        assert record["p99"] == 4.0


# ---------------------------------------------------------------------------
# sink flush at interpreter exit
# ---------------------------------------------------------------------------
class TestAtexitFlush:
    def test_tail_records_survive_exit_without_close(self, tmp_path):
        """A worker that dies right after its last event - without
        ever reaching bus.close() - must not lose the sub-batch tail:
        the atexit hook flushes every still-open sink."""
        import subprocess
        import sys

        out = tmp_path / "telemetry.jsonl"
        script = (
            "import sys\n"
            "from repro.telemetry.bus import TelemetryBus, install\n"
            "from repro.telemetry.sinks import JsonlSink\n"
            "tb = TelemetryBus(enabled=True)\n"
            f"tb.add_sink(JsonlSink({repr(str(out))}))\n"
            "install(tb)\n"
            "for i in range(5):\n"
            "    tb.emit('worker.event', index=i)\n"
            "sys.exit(0)  # no close(), no flush: 5 records pending\n"
        )
        env = dict(
            __import__("os").environ,
            PYTHONPATH=str(
                __import__("pathlib").Path(__file__).parent.parent
                / "src"
            ),
        )
        subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            env=env,
            timeout=60,
        )
        records = read_jsonl(out)
        events = [r for r in records if r.get("type") == "event"]
        assert len(events) == 5
        assert events[-1]["attrs"]["index"] == 4  # the tail line

    def test_closed_sink_is_not_reflushed_at_exit(self, tmp_path):
        from repro.telemetry.sinks import _LIVE_SINKS

        sink = JsonlSink(tmp_path / "t.jsonl")
        assert sink in _LIVE_SINKS
        sink.close()
        assert sink not in _LIVE_SINKS
