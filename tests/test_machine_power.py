"""Tests for the package power model."""

from __future__ import annotations

import pytest

from repro.machine.power import IdleState, PowerModel
from repro.machine.spec import crill


@pytest.fixture
def power():
    return PowerModel(crill())


class TestInstantaneousPower:
    def test_full_package_at_base_is_tdp(self, power):
        spec = crill()
        draw = power.package_power_w(spec.base_freq_ghz, n_active=8)
        # all other cores default to sleep, adding a little
        assert draw == pytest.approx(spec.tdp_w, rel=0.01)

    def test_cubic_in_frequency(self, power):
        assert power.core_dynamic_w(2.0) == pytest.approx(
            8 * power.core_dynamic_w(1.0)
        )

    def test_more_active_cores_more_power(self, power):
        f = 2.4
        draws = [
            power.package_power_w(f, n_active=n) for n in range(1, 9)
        ]
        assert all(b > a for a, b in zip(draws, draws[1:]))

    def test_spin_power_below_active(self, power):
        f = 2.4
        active = power.package_power_w(f, n_active=2)
        spin = power.package_power_w(f, n_active=1, n_spin=1)
        sleep = power.package_power_w(f, n_active=1, n_spin=0)
        assert sleep < spin < active

    def test_core_states_cannot_exceed_socket(self, power):
        with pytest.raises(ValueError):
            power.package_power_w(2.4, n_active=8, n_spin=1)

    def test_negative_counts_rejected(self, power):
        with pytest.raises(ValueError):
            power.package_power_w(2.4, n_active=-1)

    def test_uncore_scales_with_frequency(self, power):
        assert power.uncore_w(2.4) > power.uncore_w(1.2)


class TestIdleIntervals:
    def test_short_wait_spins(self, power):
        acc = power.idle_interval(10e-6, 2.4)
        assert acc.state is IdleState.SPIN
        assert acc.transition_s == 0.0

    def test_long_wait_sleeps(self, power):
        acc = power.idle_interval(10e-3, 2.4)
        assert acc.state is IdleState.SLEEP
        assert acc.transition_s > 0.0

    def test_sleep_saves_energy_for_long_waits(self, power):
        wait = 50e-3
        sleeping = power.idle_interval(wait, 2.4).energy_j
        spin_w = crill().idle_spin_fraction * power.core_dynamic_w(2.4)
        assert sleeping < wait * spin_w

    def test_zero_wait_zero_energy(self, power):
        assert power.idle_interval(0.0, 2.4).energy_j == 0.0

    def test_negative_wait_rejected(self, power):
        with pytest.raises(ValueError):
            power.idle_interval(-1.0, 2.4)

    def test_energy_monotone_in_wait(self, power):
        waits = [1e-6, 1e-4, 1e-3, 1e-2, 1e-1]
        energies = [power.idle_interval(w, 2.4).energy_j for w in waits]
        assert all(b >= a for a, b in zip(energies, energies[1:]))
