"""Tests for the experiment runner (strategy orchestration)."""

from __future__ import annotations

import pytest

from repro.core.history import HistoryStore, experiment_key
from repro.experiments.runner import (
    CRILL_POWER_LEVELS,
    ExperimentSetup,
    fresh_runtime,
    run_arcs_offline,
    run_arcs_online,
    run_default,
    run_strategy,
)
from repro.machine.spec import crill, minotaur
from repro.workloads.synthetic import synthetic_application


@pytest.fixture(scope="module")
def app():
    return synthetic_application(timesteps=8, include_tiny=False)


@pytest.fixture
def setup():
    return ExperimentSetup(spec=crill(), repeats=2, noise_sigma=0.005)


class TestSetup:
    def test_power_levels_match_paper(self):
        assert CRILL_POWER_LEVELS == (55.0, 70.0, 85.0, 100.0, 115.0)

    def test_summary_modes(self):
        assert ExperimentSetup(spec=crill()).summary_mode == "mean"
        assert ExperimentSetup(spec=minotaur()).summary_mode == "min"

    def test_fresh_runtime_applies_cap(self):
        setup = ExperimentSetup(spec=crill(), cap_w=70.0)
        runtime = fresh_runtime(setup)
        assert runtime.node.effective_cap_w() == 70.0

    def test_cap_on_minotaur_rejected_at_construction(self):
        """A cap on a machine without capping privilege used to be
        silently ignored, mis-reporting an uncapped run as capped."""
        with pytest.raises(ValueError, match="power-capping"):
            ExperimentSetup(spec=minotaur(), cap_w=70.0)

    def test_uncapped_minotaur_still_fine(self):
        setup = ExperimentSetup(spec=minotaur())
        runtime = fresh_runtime(setup)
        assert runtime.node.spec.name == "minotaur"

    def test_invalid_repeats_and_cap_values_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            ExperimentSetup(spec=crill(), repeats=0)
        with pytest.raises(ValueError, match="cap_w"):
            ExperimentSetup(spec=crill(), cap_w=-5.0)

    def test_fresh_runtime_distinct_seeds(self):
        setup = ExperimentSetup(spec=crill())
        r0 = fresh_runtime(setup, run_index=0)
        r1 = fresh_runtime(setup, run_index=1)
        assert r0.seed != r1.seed


class TestRunDefault:
    def test_runs_and_summarizes(self, app, setup):
        result = run_default(app, setup)
        assert result.strategy == "default"
        assert len(result.runs) == 2
        assert result.time_s > 0
        assert result.energy_j is not None

    def test_mean_of_repeats(self, app, setup):
        result = run_default(app, setup)
        times = [r.time_s for r in result.runs]
        assert result.time_s == pytest.approx(sum(times) / len(times))

    def test_min_on_minotaur(self, app):
        setup = ExperimentSetup(
            spec=minotaur(), repeats=2, noise_sigma=0.01
        )
        result = run_default(app, setup)
        assert result.time_s == min(r.time_s for r in result.runs)
        assert result.energy_j is None


class TestRunOnline:
    def test_produces_configs_and_overhead(self, app, setup):
        result = run_arcs_online(app, setup)
        assert result.strategy == "arcs-online"
        assert result.chosen_configs
        assert result.overhead is not None
        assert result.overhead.search_s >= 0


class TestRunOffline:
    def test_tunes_then_replays(self, app, setup):
        history = HistoryStore()
        result = run_arcs_offline(app, setup, history=history)
        assert result.strategy == "arcs-offline"
        assert result.tuning_runs >= 1
        key = experiment_key(
            app.name, "crill", setup.cap_w, app.workload
        )
        assert history.has(key)

    def test_reuses_existing_history(self, app, setup):
        history = HistoryStore()
        first = run_arcs_offline(app, setup, history=history)
        second = run_arcs_offline(app, setup, history=history)
        assert first.tuning_runs >= 1
        assert second.tuning_runs == 0   # "saved values can be used"
        assert second.chosen_configs == first.chosen_configs

    def test_measured_run_has_no_search_overhead(self, app, setup):
        result = run_arcs_offline(app, setup)
        assert result.overhead is not None
        assert result.overhead.search_s == 0.0


class TestRunStrategy:
    @pytest.mark.parametrize(
        "name", ["default", "arcs-online", "arcs-offline"]
    )
    def test_dispatch(self, name, app, setup):
        result = run_strategy(name, app, setup)
        assert result.strategy == name

    def test_unknown_strategy(self, app, setup):
        with pytest.raises(ValueError):
            run_strategy("magic", app, setup)
