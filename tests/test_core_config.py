"""Tests for the ARCS search space (paper Table I)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import (
    ARCS_CHUNK_VALUES,
    ARCS_SCHEDULE_VALUES,
    arcs_thread_values,
    config_from_point,
    default_start_point,
    point_from_config,
    search_space_for,
)
from repro.machine.spec import crill, minotaur
from repro.openmp.types import OMPConfig, ScheduleKind


class TestTable1Values:
    def test_crill_threads(self):
        assert arcs_thread_values(crill()) == (2, 4, 8, 16, 24, 32)

    def test_minotaur_threads(self):
        assert arcs_thread_values(minotaur()) == (
            10, 20, 40, 80, 120, 160,
        )

    def test_chunk_values(self):
        assert ARCS_CHUNK_VALUES == (
            None, 1, 8, 16, 32, 64, 128, 256, 512,
        )

    def test_schedule_values(self):
        assert set(ARCS_SCHEDULE_VALUES) == {
            ScheduleKind.STATIC,
            ScheduleKind.DYNAMIC,
            ScheduleKind.GUIDED,
        }

    def test_unknown_machine_doubling_series(self):
        spec = dataclasses.replace(crill(), name="other")
        values = arcs_thread_values(spec)
        assert values[-1] == spec.total_hw_threads
        assert values[0] == 2
        assert all(b > a for a, b in zip(values, values[1:]))


class TestSearchSpace:
    def test_crill_space_size(self):
        assert search_space_for(crill()).size == 6 * 3 * 9

    def test_minotaur_space_size(self):
        assert search_space_for(minotaur()).size == 6 * 3 * 9

    def test_parameter_names(self):
        space = search_space_for(crill())
        assert [p.name for p in space.parameters] == [
            "n_threads", "schedule", "chunk",
        ]


class TestPointCodec:
    def test_roundtrip(self):
        cfg = OMPConfig(16, ScheduleKind.GUIDED, 8)
        assert config_from_point(point_from_config(cfg)) == cfg

    def test_decode_string_schedule(self):
        cfg = config_from_point(
            {"n_threads": 4, "schedule": "dynamic", "chunk": None}
        )
        assert cfg.schedule is ScheduleKind.DYNAMIC
        assert cfg.chunk is None

    def test_every_space_point_decodes(self):
        space = search_space_for(crill())
        for indices in space.iter_indices():
            cfg = config_from_point(space.decode(indices))
            assert 2 <= cfg.n_threads <= 32


class TestStartPoint:
    def test_start_is_default_config(self):
        spec = crill()
        space = search_space_for(spec)
        point = space.decode(default_start_point(spec, space))
        assert point["n_threads"] == 32
        assert point["schedule"] is ScheduleKind.STATIC
        assert point["chunk"] is None
