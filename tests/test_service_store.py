"""Tests for the daemon's sharded, checksummed, LRU knowledge store.

The corruption property tests (``TestCorruptionProperties``) are the
store's robustness contract: a shard truncated or bit-flipped at ANY
byte offset is detected, quarantined and rebuilt from its surviving
lines - and no other shard is ever touched.  Offsets are driven by a
seeded RNG over many trials (plain pytest, no hypothesis dependency).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.service.store import (
    DEFAULT_WRITE_BEHIND,
    STORE_SCHEMA_VERSION,
    ServiceStore,
    _line_checksum,
)


def payload(i: int) -> dict:
    return {"schema": 1, "regions": {f"r{i}": {"n": i}}}


def filled_store(root, n: int = 40, **kwargs) -> ServiceStore:
    store = ServiceStore(root, **kwargs)
    for i in range(n):
        store.put(f"key-{i:04d}", payload(i))
    store.flush(fsync=True)
    return store


class TestBasics:
    def test_round_trip(self, tmp_path):
        store = ServiceStore(tmp_path / "s")
        store.put("k", {"a": 1})
        assert store.get("k") == {"a": 1}
        assert store.get("missing") is None
        assert store.stats.hits == 1
        assert store.stats.misses == 1

    def test_persists_across_reopen(self, tmp_path):
        store = filled_store(tmp_path / "s", 20)
        store.close()
        again = ServiceStore(tmp_path / "s")
        assert len(again) == 20
        assert again.get("key-0007") == payload(7)

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            ServiceStore(tmp_path / "a", shards=0)
        with pytest.raises(ValueError, match="capacity"):
            ServiceStore(tmp_path / "b", capacity=0)
        with pytest.raises(ValueError, match="write_behind"):
            ServiceStore(tmp_path / "c", write_behind=0)

    def test_put_after_close_refused(self, tmp_path):
        store = ServiceStore(tmp_path / "s")
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.put("k", {})

    def test_last_write_wins(self, tmp_path):
        store = ServiceStore(tmp_path / "s")
        store.put("k", {"v": 1})
        store.put("k", {"v": 2})
        store.flush(fsync=True)
        store.close()
        assert ServiceStore(tmp_path / "s").get("k") == {"v": 2}


class TestWriteBehind:
    def test_pending_writes_buffer_until_window(self, tmp_path):
        store = ServiceStore(tmp_path / "s")
        store.put("k", {"v": 1})
        # not yet on disk: a fresh reader sees nothing
        assert len(ServiceStore(tmp_path / "other")) == 0
        shard = store.shard_path(store.shard_index("k"))
        assert not shard.exists()

    def test_auto_flush_at_window(self, tmp_path):
        store = ServiceStore(tmp_path / "s")
        for i in range(DEFAULT_WRITE_BEHIND):
            store.put(f"k{i}", {"v": i})
        assert store.stats.flushes == 1
        assert not store._pending

    def test_close_flushes_everything(self, tmp_path):
        store = ServiceStore(tmp_path / "s")
        store.put("k", {"v": 9})
        store.close()
        assert ServiceStore(tmp_path / "s").get("k") == {"v": 9}

    def test_close_is_idempotent(self, tmp_path):
        store = ServiceStore(tmp_path / "s")
        store.put("k", {"v": 9})
        store.close()
        store.close()


class TestLRU:
    def test_eviction_at_capacity(self, tmp_path):
        store = ServiceStore(tmp_path / "s", capacity=10)
        for i in range(15):
            store.put(f"k{i}", {"v": i})
        assert len(store) == 10
        assert store.stats.evictions == 5
        assert store.get("k0") is None   # oldest evicted
        assert store.get("k14") == {"v": 14}

    def test_get_refreshes_recency(self, tmp_path):
        store = ServiceStore(tmp_path / "s", capacity=3)
        for i in range(3):
            store.put(f"k{i}", {"v": i})
        store.get("k0")                  # touch: k1 is now oldest
        store.put("k3", {"v": 3})
        assert store.get("k0") is not None
        assert store.get("k1") is None

    def test_eviction_survives_reopen_after_compaction(self, tmp_path):
        store = ServiceStore(tmp_path / "s", capacity=5)
        for i in range(9):
            store.put(f"k{i}", {"v": i})
        store.close()                    # flush + compact
        again = ServiceStore(tmp_path / "s", capacity=5)
        assert len(again) == 5
        assert again.get("k0") is None
        assert again.get("k8") == {"v": 8}


class TestCorruptionProperties:
    """Satellite: shard damage at ANY byte offset is detected,
    quarantined, rebuilt - and cannot poison other shards."""

    def _damage_and_check(self, tmp_path, damage, trials: int = 24):
        rng = random.Random(20260808)
        for trial in range(trials):
            root = tmp_path / f"t{trial}"
            store = filled_store(root, 40)
            expected = dict(store._entries)
            store.close()
            shards = [
                p for p in sorted(root.glob("shard-*.jsonl"))
                if p.stat().st_size > 0
            ]
            victim = rng.choice(shards)
            data = victim.read_bytes()
            offset = rng.randrange(len(data))
            victim.write_bytes(damage(data, offset, rng))
            intact = {
                p.name: p.read_bytes()
                for p in shards
                if p != victim
            }

            reopened = ServiceStore(root)
            # 1. detected + quarantined (original preserved for
            #    post-mortem), shard rebuilt from surviving lines.
            assert reopened.stats.quarantined_shards == 1
            qfiles = list((root / "quarantine").iterdir())
            assert [q.name for q in qfiles] == [f"{victim.name}.0"]
            # 2. every surviving entry is served verbatim; nothing
            #    invented.
            for key, value in reopened._entries.items():
                assert expected[key] == value
            # 3. other shards untouched, their entries all present.
            for p in shards:
                if p == victim:
                    continue
                assert p.read_bytes() == intact[p.name]
            lost = set(expected) - set(reopened._entries)
            victim_index = int(victim.stem.split("-")[1])
            assert all(
                reopened.shard_index(k) == victim_index for k in lost
            )
            # 4. the rebuilt shard validates cleanly on the next load.
            reopened.close()
            final = ServiceStore(root)
            assert final.stats.quarantined_shards == 0
            assert dict(final._entries) == dict(reopened._entries)

    def test_truncation_at_any_offset(self, tmp_path):
        self._damage_and_check(
            tmp_path, lambda data, offset, rng: data[:offset]
        )

    def test_bit_flip_at_any_offset(self, tmp_path):
        def flip(data, offset, rng):
            bit = 1 << rng.randrange(8)
            return (
                data[:offset]
                + bytes([data[offset] ^ bit])
                + data[offset + 1 :]
            )

        self._damage_and_check(tmp_path, flip)

    def test_mid_file_garbage_keeps_lines_on_both_sides(self, tmp_path):
        """Unlike prefix-truncation recovery, per-line checksums also
        salvage valid lines AFTER the corrupt one."""
        root = tmp_path / "s"
        store = ServiceStore(root, shards=1)
        for i in range(10):
            store.put(f"k{i}", {"v": i})
        store.close()
        path = store.shard_path(0)
        lines = path.read_bytes().splitlines()
        lines[4] = b'{"schema": 1, "key": "k4", "garbage'
        path.write_bytes(b"\n".join(lines) + b"\n")

        again = ServiceStore(root, shards=1)
        assert again.stats.quarantined_shards == 1
        assert again.get("k4") is None
        for i in [0, 1, 2, 3, 5, 6, 7, 8, 9]:
            assert again.get(f"k{i}") == {"v": i}

    def test_wrong_schema_line_is_corrupt(self, tmp_path):
        root = tmp_path / "s"
        store = ServiceStore(root, shards=1)
        store.put("k", {"v": 1})
        store.close()
        path = store.shard_path(0)
        line = {
            "schema": STORE_SCHEMA_VERSION + 1,
            "key": "alien",
            "payload": {"v": 2},
            "crc": _line_checksum("alien", {"v": 2}),
        }
        with open(path, "a") as handle:
            handle.write(json.dumps(line) + "\n")
        again = ServiceStore(root, shards=1)
        assert again.get("alien") is None
        assert again.get("k") == {"v": 1}
        assert again.stats.quarantined_shards == 1

    def test_repeated_corruption_numbers_quarantines(self, tmp_path):
        root = tmp_path / "s"
        path = None
        for expected_n in range(2):
            store = ServiceStore(root, shards=1)
            store.put(f"k{expected_n}", {"v": expected_n})
            store.close()
            path = store.shard_path(0)
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
            again = ServiceStore(root, shards=1)
            again.close()
            names = sorted(
                p.name for p in (root / "quarantine").iterdir()
            )
            assert f"{path.name}.{expected_n}" in names

    def test_stats_surface_salvage_counts(self, tmp_path):
        root = tmp_path / "s"
        store = ServiceStore(root, shards=1)
        for i in range(6):
            store.put(f"k{i}", {"v": i})
        store.close()
        path = store.shard_path(0)
        data = path.read_bytes()
        path.write_bytes(data[:-3])      # torn final line
        again = ServiceStore(root, shards=1)
        assert again.stats.quarantined_shards == 1
        assert again.stats.salvaged_entries == 5
        blob = again.stats_json()
        assert blob["quarantined_shards"] == 1
        assert blob["salvaged_entries"] == 5
