"""Tests for session/controller/run checkpointing and kill-resume."""

from __future__ import annotations

import json

import pytest

from repro.core.checkpoint import CheckpointError
from repro.experiments.cache import result_to_json
from repro.experiments.resumable import (
    RUN_CHECKPOINT_SCHEMA,
    SimulatedKill,
    load_run_checkpoint,
    write_run_checkpoint,
)
from repro.experiments.runner import (
    ExperimentSetup,
    run_arcs_online,
    run_strategy,
)
from repro.faults.plan import FaultPlan, FaultSpec
from repro.harmony.engine import make_strategy
from repro.harmony.session import (
    MeasurementGuard,
    SessionReplayError,
    TuningSession,
)
from repro.harmony.space import Parameter, SearchSpace
from repro.machine.spec import crill
from repro.workloads.synthetic import synthetic_application


# ---------------------------------------------------------------------------
# session snapshot / replay
# ---------------------------------------------------------------------------
def space3():
    return SearchSpace(
        parameters=(
            Parameter("a", (0, 1, 2, 3)),
            Parameter("b", (0, 1, 2)),
        )
    )


def nm_session(space, seed=11):
    return TuningSession(
        space,
        make_strategy("nelder-mead", space, max_evals=30, seed=seed),
        guard=MeasurementGuard(),
        strategy_factory=lambda: make_strategy(
            "nelder-mead", space, max_evals=30, seed=seed + 1
        ),
    )


def objective(point):
    return 1.0 + 0.3 * point["a"] + 0.7 * point["b"]


class TestSessionSnapshot:
    def test_midsearch_roundtrip_continues_identically(self):
        space = space3()
        original = nm_session(space)
        for _ in range(6):
            original.report(objective(original.suggest()))

        restored = nm_session(space)
        restored.restore(
            json.loads(json.dumps(original.snapshot()))
        )
        for _ in range(30):
            if original.converged or original.failed:
                break
            original.report(objective(original.suggest()))
            restored.report(objective(restored.suggest()))
        assert restored.best_point() == original.best_point()
        assert restored.best_value() == original.best_value()
        assert restored.search_values == original.search_values
        assert restored.stats == original.stats

    def test_outstanding_candidate_survives(self):
        space = space3()
        original = nm_session(space)
        original.report(objective(original.suggest()))
        outstanding = original.suggest()   # asked, not yet reported
        restored = nm_session(space)
        restored.restore(original.snapshot())
        assert restored.suggest() == outstanding

    def test_tampered_tell_sequence_raises_replay_error(self):
        space = space3()
        original = nm_session(space, seed=11)
        for _ in range(4):
            original.report(objective(original.suggest()))
        blob = original.snapshot()
        # rewrite the first tell to a point the strategy never asked
        first = blob["events"][0][1]
        blob["events"][0][1] = [
            (i + 1) % len(p.values)
            for i, p in zip(first, space.parameters)
        ]
        fresh = nm_session(space, seed=11)
        with pytest.raises(SessionReplayError, match="diverged"):
            fresh.restore(blob)

    def test_tampered_best_raises_replay_error(self):
        space = space3()
        original = nm_session(space)
        for _ in range(4):
            original.report(objective(original.suggest()))
        blob = original.snapshot()
        blob["best"][1] = blob["best"][1] / 2
        fresh = nm_session(space)
        with pytest.raises(SessionReplayError, match="best"):
            fresh.restore(blob)


# ---------------------------------------------------------------------------
# checkpoint file handling
# ---------------------------------------------------------------------------
class TestCheckpointFile:
    def test_missing_file_is_friendly(self, tmp_path):
        with pytest.raises(CheckpointError, match="nope.json"):
            load_run_checkpoint(tmp_path / "nope.json")

    def test_invalid_json_is_friendly(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{torn")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_run_checkpoint(path)

    def test_schema_mismatch_is_friendly(self, tmp_path):
        path = tmp_path / "ck.json"
        write_run_checkpoint(path, {"schema": -1})
        with pytest.raises(CheckpointError, match="schema"):
            load_run_checkpoint(path)

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ck.json"
        blob = {"schema": RUN_CHECKPOINT_SCHEMA, "next_run": 2}
        write_run_checkpoint(path, blob)
        assert load_run_checkpoint(path) == blob


# ---------------------------------------------------------------------------
# kill / resume equivalence
# ---------------------------------------------------------------------------
def small_setup(**kw):
    kw.setdefault("spec", crill())
    kw.setdefault("cap_w", 85.0)
    kw.setdefault("repeats", 2)
    kw.setdefault("online_max_evals", 10)
    return ExperimentSetup(**kw)


def small_app():
    return synthetic_application(timesteps=4, include_tiny=False)


class TestKillResume:
    def test_resume_is_byte_identical(self, tmp_path):
        app, setup = small_app(), small_setup()
        expected = result_to_json(run_arcs_online(app, setup))
        total = sum(r["total_region_calls"] for r in expected["runs"])
        for kill in (1, total // 2, total - 1):
            ck = tmp_path / f"ck{kill}.json"
            with pytest.raises(SimulatedKill):
                run_arcs_online(
                    app, setup, checkpoint_path=ck, kill_after=kill
                )
            resumed = run_arcs_online(app, setup, resume_from=ck)
            assert result_to_json(resumed) == expected

    def test_resume_with_faults_is_byte_identical(self, tmp_path):
        app = small_app()
        setup = small_setup(
            fault_plan=FaultPlan(
                specs=(
                    FaultSpec(
                        site="region.exec",
                        action="crash",
                        probability=0.1,
                        max_fires=3,
                    ),
                ),
                seed=3,
            )
        )
        expected = result_to_json(run_arcs_online(app, setup))
        ck = tmp_path / "ck.json"
        with pytest.raises(SimulatedKill):
            run_arcs_online(
                app, setup, checkpoint_path=ck, kill_after=7
            )
        resumed = run_arcs_online(app, setup, resume_from=ck)
        assert result_to_json(resumed) == expected

    def test_resume_finished_checkpoint_returns_same_result(
        self, tmp_path
    ):
        app, setup = small_app(), small_setup(repeats=1)
        ck = tmp_path / "ck.json"
        full = run_arcs_online(app, setup, checkpoint_path=ck)
        resumed = run_arcs_online(app, setup, resume_from=ck)
        assert result_to_json(resumed) == result_to_json(full)

    def test_mismatched_checkpoint_refused(self, tmp_path):
        app = small_app()
        ck = tmp_path / "ck.json"
        with pytest.raises(SimulatedKill):
            run_arcs_online(
                app,
                small_setup(seed=0),
                checkpoint_path=ck,
                kill_after=3,
            )
        with pytest.raises(CheckpointError, match="seed"):
            run_arcs_online(
                app, small_setup(seed=1), resume_from=ck
            )

    def test_kill_after_requires_checkpoint_path(self):
        with pytest.raises(ValueError, match="checkpoint_path"):
            run_arcs_online(
                small_app(), small_setup(), kill_after=5
            )

    def test_checkpoint_rejected_for_other_strategies(self, tmp_path):
        with pytest.raises(ValueError, match="arcs-online"):
            run_strategy(
                "default",
                small_app(),
                small_setup(),
                checkpoint_path=tmp_path / "ck.json",
            )

    def test_checkpoint_written_every_invocation(self, tmp_path):
        app, setup = small_app(), small_setup(repeats=1)
        ck = tmp_path / "ck.json"
        with pytest.raises(SimulatedKill):
            run_arcs_online(
                app, setup, checkpoint_path=ck, kill_after=5
            )
        blob = load_run_checkpoint(ck)
        assert blob["next_run"] == 0
        assert blob["active"]["progress"]["invocations"] == 5
        assert blob["meta"]["strategy"] == "arcs-online"
