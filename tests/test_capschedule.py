"""Tests for dynamic power-cap schedules (core/capschedule.py)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.capschedule import (
    CapEvent,
    CapSchedule,
    CapScheduleApplier,
    CapScheduleError,
    cap_label,
    load_cap_schedule,
)
from repro.experiments.runner import ExperimentSetup, run_arcs_online
from repro.faults.plan import FaultPlan, FaultSpec
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill, minotaur
from repro.faults.inject import make_injector
from repro.openmp.runtime import OpenMPRuntime
from repro.workloads.synthetic import synthetic_application


def sched(*events, hysteresis=0):
    return CapSchedule(
        events=tuple(CapEvent(n, cap) for n, cap in events),
        hysteresis_invocations=hysteresis,
    )


class TestCapScheduleValidation:
    def test_events_must_increase(self):
        with pytest.raises(CapScheduleError, match="increasing"):
            sched((5, 70.0), (5, 55.0))

    def test_invocation_must_be_positive(self):
        with pytest.raises(CapScheduleError, match=">= 1"):
            CapEvent(0, 70.0)

    def test_cap_must_be_positive_or_null(self):
        with pytest.raises(CapScheduleError, match="> 0 or null"):
            CapEvent(5, -1.0)
        CapEvent(5, None)  # uncapped is fine

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(CapScheduleError, match="hysteresis"):
            sched((5, 70.0), hysteresis=-1)

    def test_empty_schedule_is_falsy(self):
        assert not CapSchedule()
        assert sched((5, 70.0))

    def test_unknown_fields_rejected(self):
        with pytest.raises(CapScheduleError, match="unknown"):
            CapSchedule.from_json({"events": [], "typo": 1})
        with pytest.raises(CapScheduleError, match="unknown"):
            CapSchedule.from_json(
                {"events": [{"after_region_invocations": 1, "w": 9}]}
            )


class TestCapScheduleJson:
    def test_roundtrip(self):
        schedule = sched((5, 70.0), (9, None), hysteresis=3)
        assert CapSchedule.from_json(schedule.to_json()) == schedule

    def test_fingerprint_distinguishes_schedules(self):
        a = sched((5, 70.0))
        b = sched((5, 55.0))
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == sched((5, 70.0)).fingerprint()

    def test_load_missing_file_names_path(self, tmp_path):
        with pytest.raises(CapScheduleError, match="missing.json"):
            load_cap_schedule(tmp_path / "missing.json")

    def test_load_invalid_json_names_path(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CapScheduleError, match="bad.json"):
            load_cap_schedule(path)

    def test_load_example_file(self):
        example = (
            Path(__file__).resolve().parent.parent
            / "examples"
            / "capschedule.json"
        )
        schedule = load_cap_schedule(example)
        assert schedule.events[0].cap_w == 70.0
        assert schedule.events[-1].cap_w is None

    def test_cap_label(self):
        assert cap_label(None) == "tdp"
        assert cap_label(55.0) == "55W"


def capped_runtime(cap_w=85.0, plan=None):
    node = SimulatedNode(crill(), faults=make_injector(plan))
    runtime = OpenMPRuntime(node, noise_sigma=0.0)
    if cap_w is not None:
        node.set_power_cap(cap_w)
        node.settle_after_cap()
    return runtime


class TestCapScheduleApplier:
    def test_applies_due_event(self):
        runtime = capped_runtime(85.0)
        applier = CapScheduleApplier(sched((5, 55.0)))
        applier.on_invocation(4, runtime)
        assert runtime.node.effective_cap_w(0) == 85.0
        applier.on_invocation(5, runtime)
        assert runtime.node.effective_cap_w(0) == 55.0
        assert applier.log == [
            "invocation 5: power cap 85W -> 55W"
        ]

    def test_thrash_coalesces_to_latest_target(self):
        # both events fall due between two consecutive observations:
        # only the latest is applied, the intermediate flip vanishes
        runtime = capped_runtime(85.0)
        applier = CapScheduleApplier(sched((5, 70.0), (6, 55.0)))
        applier.on_invocation(7, runtime)
        assert runtime.node.effective_cap_w(0) == 55.0
        assert len(applier.log) == 1

    def test_hysteresis_defers_then_applies(self):
        runtime = capped_runtime(85.0)
        applier = CapScheduleApplier(
            sched((2, 70.0), (4, 55.0), hysteresis=5)
        )
        for n in range(1, 10):
            applier.on_invocation(n, runtime)
        assert applier.log == [
            "invocation 2: power cap 85W -> 70W",
            # n=4..6 deferred (within 5 invocations of the change at 2)
            "invocation 7: power cap 70W -> 55W",
        ]

    def test_flip_back_to_current_cap_is_noop(self):
        runtime = capped_runtime(85.0)
        applier = CapScheduleApplier(sched((3, 85.0)))
        applier.on_invocation(3, runtime)
        assert applier.log == []
        assert runtime.node.effective_cap_w(0) == 85.0

    def test_rejected_write_degrades_and_moves_on(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="rapl.cap_write",
                    action="reject",
                    probability=1.0,
                ),
            ),
            seed=0,
        )
        node = SimulatedNode(crill(), faults=make_injector(plan))
        runtime = OpenMPRuntime(node, noise_sigma=0.0)
        applier = CapScheduleApplier(sched((2, 55.0)))
        applier.on_invocation(2, runtime)
        assert applier.log == []
        assert any(
            "cap schedule" in note and "rejected 3 times" in note
            for note in runtime.degradations
        )
        # the event is spent: no retry storm on later invocations
        notes = len(runtime.degradations)
        applier.on_invocation(3, runtime)
        assert len(runtime.degradations) == notes

    def test_snapshot_roundtrip(self):
        runtime = capped_runtime(85.0)
        applier = CapScheduleApplier(sched((2, 70.0), (8, 55.0)))
        applier.on_invocation(2, runtime)
        clone = CapScheduleApplier(applier.schedule)
        clone.restore(json.loads(json.dumps(applier.snapshot())))
        assert clone.log == applier.log
        clone.on_invocation(8, runtime)
        assert clone.log[-1].startswith("invocation 8:")


class TestScheduleInSetup:
    def test_requires_capping_privilege(self):
        with pytest.raises(ValueError, match="capping"):
            ExperimentSetup(
                spec=minotaur(), cap_schedule=sched((5, 70.0))
            )

    def test_one_retune_per_new_cap_level(self):
        """Acceptance criterion: a mid-run cap change opens exactly one
        warm-started tuning session per (region, new level), and the
        change itself appears exactly once in ``cap_changes``."""
        app = synthetic_application(timesteps=6, include_tiny=False)
        setup = ExperimentSetup(
            spec=crill(),
            cap_w=85.0,
            repeats=1,
            online_max_evals=10,
            cap_schedule=sched((4, 55.0), hysteresis=3),
        )
        result = run_arcs_online(app, setup)
        assert result.cap_changes == (
            "invocation 4: power cap 85W -> 55W",
        )
        for region in app.region_names():
            levels = [
                key
                for key in result.chosen_configs
                if key.startswith(f"{region}@")
            ]
            assert sorted(levels) == [
                f"{region}@55W", f"{region}@85W"
            ]
