"""Differential tests: batched vs scalar evaluation is bit-identical.

The batched evaluator (``repro.openmp.batch``) is only shippable under
the contract that it produces records byte-identical to the scalar
``ExecutionEngine._simulate`` path.  These tests drive both paths over
a seeded random grid of (region, cap, config-set) cells and compare
every float field bitwise, plus memo-hit vs memo-miss equivalence and
an end-to-end ``StrategyRunResult`` JSON byte-comparison with batching
on vs off.
"""

from __future__ import annotations

import dataclasses
import json
import struct

import numpy as np
import pytest

from repro.core.config import config_from_point, search_space_for
from repro.experiments.cache import result_to_json
from repro.experiments.runner import ExperimentSetup, run_strategy
from repro.machine.cache import MemoryProfile
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill, minotaur
from repro.openmp import batch
from repro.openmp.engine import ExecutionEngine
from repro.openmp.region import ImbalanceSpec, RegionProfile
from repro.openmp.types import OMPConfig, ScheduleKind
from repro.util.rng import rng_for
from repro.workloads.sp import sp_application
from repro.workloads.synthetic import synthetic_application


@pytest.fixture(autouse=True)
def _batching_on():
    """Run with batching enabled and an isolated memo, regardless of
    the environment the suite was launched in."""
    was = batch.batching_enabled()
    batch.set_batching(True)
    batch.clear_memo()
    yield
    batch.set_batching(was)
    batch.clear_memo()


def bits(x: float) -> bytes:
    return struct.pack("<d", x)


def assert_records_bit_identical(scalar, batched, label: str) -> None:
    """Compare two RegionExecutionRecords field by field, bitwise for
    floats (plain ``==`` would conflate +0.0/-0.0)."""
    for f in dataclasses.fields(scalar):
        a = getattr(scalar, f.name)
        b = getattr(batched, f.name)
        if isinstance(a, float):
            assert bits(a) == bits(b), (
                f"{label}: field {f.name} differs: {a!r} vs {b!r}"
            )
        elif isinstance(a, tuple) and a and isinstance(a[0], float):
            assert len(a) == len(b)
            for i, (x, y) in enumerate(zip(a, b)):
                assert bits(x) == bits(y), (
                    f"{label}: {f.name}[{i}] differs: {x!r} vs {y!r}"
                )
        else:
            assert a == b, f"{label}: field {f.name} differs"


def random_region(rng: np.random.Generator, tag: int) -> RegionProfile:
    """A seeded random region covering the model's behaviour space."""
    kind = ("none", "linear", "sawtooth", "step", "random")[
        int(rng.integers(0, 5))
    ]
    return RegionProfile(
        name=f"diff_region_{tag}",
        iterations=int(rng.integers(16, 600)),
        cpu_ns_per_iter=float(rng.uniform(1e3, 8e5)),
        memory=MemoryProfile(
            bytes_per_iter=float(rng.uniform(64.0, 3e5)),
            stride_bytes=float(rng.choice([8.0, 64.0, 512.0, 8192.0])),
            footprint_bytes=float(rng.uniform(0.0, 2e8)),
            reuse_fraction=float(rng.uniform(0.0, 0.9)),
        ),
        imbalance=ImbalanceSpec(
            kind=kind,
            amplitude=float(rng.uniform(0.0, 0.6)) if kind != "none"
            else 0.0,
        ),
        serial_ns=float(rng.uniform(0.0, 1e5)),
    )


def random_configs(
    rng: np.random.Generator, max_threads: int, n: int
) -> list[OMPConfig]:
    configs = []
    for _ in range(n):
        schedule = (
            ScheduleKind.STATIC,
            ScheduleKind.DYNAMIC,
            ScheduleKind.GUIDED,
        )[int(rng.integers(0, 3))]
        chunk: int | None = int(rng.choice([1, 2, 4, 8, 16, 64, 256]))
        if schedule is ScheduleKind.STATIC and rng.random() < 0.4:
            chunk = None
        configs.append(
            OMPConfig(
                n_threads=int(rng.integers(1, max_threads + 1)),
                schedule=schedule,
                chunk=chunk,
            )
        )
    return configs


class TestRandomGridBitIdentity:
    @pytest.mark.parametrize("spec_name", ["crill", "minotaur"])
    def test_random_cells(self, spec_name):
        spec = crill() if spec_name == "crill" else minotaur()
        caps = (
            (None, 85.0, 60.0) if spec.supports_power_cap else (None,)
        )
        rng = rng_for(0xD1FF, "differential", spec.name)
        for cell in range(6):
            cap = caps[cell % len(caps)]
            node = SimulatedNode(spec)
            if cap is not None:
                node.rapl.set_package_cap(cap, node.now_s)
            engine = ExecutionEngine(node)
            region = random_region(rng, cell)
            configs = random_configs(
                rng, spec.total_hw_threads, n=12
            )
            scalar = [
                engine._simulate(region, c) for c in configs
            ]
            batched = batch.BatchEvaluator(engine).evaluate(
                region, configs
            )
            for c, rs, rb in zip(configs, scalar, batched):
                assert_records_bit_identical(
                    rs, rb, f"{spec.name} cap={cap} {c.label()}"
                )

    def test_selected_best_identical_over_full_space(self):
        """Both paths must agree on the argmin over the whole Table-I
        space for every SP region (ties and all)."""
        spec = crill()
        node = SimulatedNode(spec)
        node.rapl.set_package_cap(85.0, node.now_s)
        engine = ExecutionEngine(node)
        space = search_space_for(spec)
        configs = [
            config_from_point(space.decode(idx))
            for idx in space.iter_indices()
        ]
        for region in sp_application("B").regions():
            scalar_times = [
                engine._simulate(region, c).time_s for c in configs
            ]
            batched_times = [
                r.time_s
                for r in batch.BatchEvaluator(engine).evaluate(
                    region, configs
                )
            ]
            assert [bits(t) for t in scalar_times] == [
                bits(t) for t in batched_times
            ]
            assert int(np.argmin(scalar_times)) == int(
                np.argmin(batched_times)
            )


class TestMemoEquivalence:
    def test_memo_hit_equals_memo_miss(self):
        """A record served from the process-wide memo (computed by a
        different engine instance) is bit-identical to one computed
        from scratch with batching disabled."""
        spec = crill()
        region = random_region(rng_for(0xD1FF, "memo"), 0)
        configs = random_configs(
            rng_for(0xD1FF, "memo-configs"), spec.total_hw_threads, 8
        )

        def fresh_engine():
            node = SimulatedNode(spec)
            node.rapl.set_package_cap(70.0, node.now_s)
            return ExecutionEngine(node)

        producer = fresh_engine()
        producer.prefetch(region, tuple(configs))
        stats = batch.memo_stats()
        assert stats["entries"] > 0

        consumer = fresh_engine()
        hits_before = batch.memo_stats()["hits"]
        memoized = [consumer.execute(region, c) for c in configs]
        assert batch.memo_stats()["hits"] > hits_before

        batch.set_batching(False)
        cold = fresh_engine()
        scratch = [cold.execute(region, c) for c in configs]
        for c, rm, rs in zip(configs, memoized, scratch):
            assert_records_bit_identical(rs, rm, c.label())

    def test_memo_keyed_on_cap(self):
        """Different caps must never share memo entries."""
        spec = crill()
        region = random_region(rng_for(0xD1FF, "memo-cap"), 1)
        config = OMPConfig(
            n_threads=16, schedule=ScheduleKind.DYNAMIC, chunk=4
        )
        records = {}
        for cap in (85.0, 60.0):
            node = SimulatedNode(spec)
            node.rapl.set_package_cap(cap, node.now_s)
            node.rapl.force_update(node.now_s + 10.0)
            node._now_s = node.now_s + 10.0  # let the cap settle
            engine = ExecutionEngine(node)
            engine.prefetch(region, (config,))
            records[cap] = engine.execute(region, config)
        assert records[85.0].time_s != records[60.0].time_s

    def test_memo_eviction_is_bounded(self):
        batch.clear_memo()
        for i in range(batch.MEMO_LIMIT + 5):
            batch.memo_put(("k", i), None)  # type: ignore[arg-type]
        assert batch.memo_stats()["entries"] <= batch.MEMO_LIMIT


class TestEndToEndByteIdentity:
    @pytest.mark.parametrize(
        "strategy", ["default", "arcs-online", "arcs-offline"]
    )
    def test_strategy_run_result_json_identical(self, strategy):
        app = synthetic_application(timesteps=8)
        setup = ExperimentSetup(
            spec=crill(), cap_w=85.0, repeats=1, seed=0
        )

        def run(enabled: bool) -> str:
            batch.set_batching(enabled)
            batch.clear_memo()
            result = run_strategy(strategy, app, setup)
            return json.dumps(
                result_to_json(result), sort_keys=True
            )

        assert run(True) == run(False)

    def test_explicit_batch_flag_overrides_global(self, monkeypatch):
        """batch=False on the runner suppresses prefetch hinting even
        while the process-wide switch is on - and results stay
        identical."""
        app = synthetic_application(timesteps=6)
        setup = ExperimentSetup(
            spec=crill(), cap_w=85.0, repeats=1, seed=3
        )
        calls = []
        real_evaluate = batch.BatchEvaluator.evaluate

        def counting_evaluate(self, region, configs):
            calls.append(len(configs))
            return real_evaluate(self, region, configs)

        monkeypatch.setattr(
            batch.BatchEvaluator, "evaluate", counting_evaluate
        )
        batch.clear_memo()
        forced_off = run_strategy(
            "arcs-online", app, setup, batch=False
        )
        assert not calls
        batch.clear_memo()
        forced_on = run_strategy(
            "arcs-online", app, setup, batch=True
        )
        assert calls
        assert json.dumps(
            result_to_json(forced_off), sort_keys=True
        ) == json.dumps(result_to_json(forced_on), sort_keys=True)
