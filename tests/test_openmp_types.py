"""Tests for OpenMP configuration types."""

from __future__ import annotations

import pytest

from repro.openmp.types import OMPConfig, ScheduleKind, default_config


class TestOMPConfig:
    def test_label_with_chunk(self):
        cfg = OMPConfig(16, ScheduleKind.GUIDED, 8)
        assert cfg.label() == "16, guided, 8"

    def test_label_default_chunk(self):
        cfg = OMPConfig(32, ScheduleKind.STATIC, None)
        assert cfg.label() == "32, static, default"

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            OMPConfig(0)

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            OMPConfig(4, ScheduleKind.DYNAMIC, 0)

    def test_hashable_and_comparable(self):
        a = OMPConfig(4, ScheduleKind.STATIC, None)
        b = OMPConfig(4, ScheduleKind.STATIC, None)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestDefaultConfig:
    def test_paper_definition(self):
        """'maximum number of available threads, static scheduling, and
        chunk sizes calculated dynamically' (spec-default static)."""
        cfg = default_config(32)
        assert cfg.n_threads == 32
        assert cfg.schedule is ScheduleKind.STATIC
        assert cfg.chunk is None


class TestScheduleKind:
    def test_values(self):
        assert ScheduleKind("static") is ScheduleKind.STATIC
        assert ScheduleKind("dynamic") is ScheduleKind.DYNAMIC
        assert ScheduleKind("guided") is ScheduleKind.GUIDED
