"""Tests for the OMPT interface object and team cost constants."""

from __future__ import annotations

import pytest

from repro.openmp.barrier import TeamCosts
from repro.openmp.ompt import OmptEvent, OmptInterface


class TestOmptInterface:
    def test_register_and_dispatch(self):
        ompt = OmptInterface()
        seen = []
        ompt.register(OmptEvent.PARALLEL_BEGIN, seen.append)
        ompt.dispatch(OmptEvent.PARALLEL_BEGIN, "payload")
        assert seen == ["payload"]

    def test_multiple_tools_coexist(self):
        ompt = OmptInterface()
        a, b = [], []
        ompt.register(OmptEvent.PARALLEL_END, a.append)
        ompt.register(OmptEvent.PARALLEL_END, b.append)
        ompt.dispatch(OmptEvent.PARALLEL_END, 1)
        assert a == b == [1]

    def test_unregister(self):
        ompt = OmptInterface()
        seen = []
        ompt.register(OmptEvent.WORK_LOOP, seen.append)
        ompt.unregister(OmptEvent.WORK_LOOP, seen.append)
        ompt.dispatch(OmptEvent.WORK_LOOP, 1)
        assert seen == []

    def test_unregister_unknown_rejected(self):
        ompt = OmptInterface()
        with pytest.raises(ValueError):
            ompt.unregister(OmptEvent.WORK_LOOP, lambda p: None)

    def test_has_tool(self):
        ompt = OmptInterface()
        assert not ompt.has_tool()
        cb = lambda p: None  # noqa: E731
        ompt.register(OmptEvent.IMPLICIT_TASK, cb)
        assert ompt.has_tool()
        ompt.unregister(OmptEvent.IMPLICIT_TASK, cb)
        assert not ompt.has_tool()

    def test_parallel_ids_monotone(self):
        ompt = OmptInterface()
        ids = [ompt.new_parallel_id() for _ in range(5)]
        assert ids == [1, 2, 3, 4, 5]

    def test_non_callable_rejected(self):
        ompt = OmptInterface()
        with pytest.raises(TypeError):
            ompt.register(OmptEvent.PARALLEL_BEGIN, "nope")  # type: ignore


class TestTeamCosts:
    def test_fork_grows_with_team(self):
        costs = TeamCosts()
        assert costs.fork_join_s(32) > costs.fork_join_s(2)

    def test_fork_logarithmic(self):
        costs = TeamCosts()
        delta_small = costs.fork_join_s(4) - costs.fork_join_s(2)
        delta_large = costs.fork_join_s(32) - costs.fork_join_s(16)
        assert delta_small == pytest.approx(delta_large)

    def test_single_thread_barrier_free(self):
        assert TeamCosts().barrier_s(1) == 0.0

    def test_single_thread_fork_cheap(self):
        costs = TeamCosts()
        assert costs.fork_join_s(1) < costs.fork_join_s(2)

    def test_dispatch_constant(self):
        assert TeamCosts().dispatch_s() == pytest.approx(0.35e-6)

    def test_invalid_team_rejected(self):
        with pytest.raises(ValueError):
            TeamCosts().fork_join_s(0)
