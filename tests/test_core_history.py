"""Tests for the ARCS history store."""

from __future__ import annotations

import pytest

from repro.core.history import (
    CorruptHistoryError,
    HistoryStore,
    experiment_key,
)
from repro.openmp.types import OMPConfig, ScheduleKind


def configs():
    return {
        "x_solve": OMPConfig(16, ScheduleKind.GUIDED, 1),
        "y_solve": OMPConfig(8, ScheduleKind.STATIC, None),
    }


class TestInMemory:
    def test_save_load_roundtrip(self):
        store = HistoryStore()
        store.save("k", configs(), {"x_solve": 1.5})
        assert store.load("k") == configs()
        assert store.load_values("k")["x_solve"] == 1.5
        assert store.load_values("k")["y_solve"] is None

    def test_missing_key(self):
        with pytest.raises(KeyError):
            HistoryStore().load("missing")

    def test_has_and_keys(self):
        store = HistoryStore()
        assert not store.has("k")
        store.save("k", configs())
        assert store.has("k")
        assert store.keys() == ["k"]

    def test_overwrite(self):
        store = HistoryStore()
        store.save("k", configs())
        store.save("k", {"only": OMPConfig(2)})
        assert list(store.load("k")) == ["only"]


class TestPersistence:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "history.json"
        store = HistoryStore(path)
        store.save("k", configs(), {"y_solve": 0.25})
        reloaded = HistoryStore(path)
        assert reloaded.load("k") == configs()
        assert reloaded.load_values("k")["y_solve"] == 0.25

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "h.json"
        HistoryStore(path).save("k", configs())
        assert path.exists()

    def test_chunk_none_survives_json(self, tmp_path):
        path = tmp_path / "h.json"
        HistoryStore(path).save(
            "k", {"r": OMPConfig(4, ScheduleKind.STATIC, None)}
        )
        assert HistoryStore(path).load("k")["r"].chunk is None

    def test_persist_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "h.json"
        store = HistoryStore(path)
        for i in range(3):
            store.save(f"k{i}", configs())
        assert sorted(p.name for p in tmp_path.iterdir()) == ["h.json"]


class TestCorruption:
    def test_truncated_file_raises_clear_error(self, tmp_path):
        """A crash mid-write used to surface later as a raw
        JSONDecodeError; the error must now name the bad path."""
        path = tmp_path / "h.json"
        path.write_text('{"k": {"r": {"n_threads":')
        with pytest.raises(CorruptHistoryError) as err:
            HistoryStore(path)
        assert str(path) in str(err.value)
        assert err.value.path == path

    def test_wrong_top_level_type_raises(self, tmp_path):
        path = tmp_path / "h.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CorruptHistoryError, match="JSON object"):
            HistoryStore(path)

    def test_failed_write_preserves_previous_contents(
        self, tmp_path, monkeypatch
    ):
        import repro.util.atomicio as atomicio_mod

        path = tmp_path / "h.json"
        store = HistoryStore(path)
        store.save("k", configs())
        before = path.read_text()

        def exploding_replace(src, dst):
            raise OSError("injected crash")

        monkeypatch.setattr(atomicio_mod.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            store.save("k2", {"r": OMPConfig(2)})
        assert path.read_text() == before
        assert list(tmp_path.glob("*.tmp")) == []


class TestExperimentKey:
    def test_capped(self):
        assert experiment_key("sp", "crill", 85.0, "B") == (
            "sp|crill|85W|B"
        )

    def test_uncapped_is_tdp(self):
        assert experiment_key("sp", "crill", None, "B") == (
            "sp|crill|tdp|B"
        )

    def test_distinct_per_cap(self):
        keys = {
            experiment_key("sp", "crill", cap, "B")
            for cap in (55.0, 70.0, 85.0, None)
        }
        assert len(keys) == 4
