"""Tests for the region execution engine - the simulator's core."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import MemoryProfile
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.openmp.region import ImbalanceSpec, RegionProfile
from repro.openmp.types import OMPConfig, ScheduleKind
from repro.util.units import MIB


def make_region(
    name="r",
    iterations=128,
    cpu_ns=2.0e5,
    imbalance=None,
    serial_ns=0.0,
    **mem_kw,
):
    mem_defaults = dict(
        bytes_per_iter=8192.0,
        stride_bytes=8.0,
        footprint_bytes=4 * MIB,
        reuse_fraction=0.5,
    )
    mem_defaults.update(mem_kw)
    return RegionProfile(
        name=name,
        iterations=iterations,
        cpu_ns_per_iter=cpu_ns,
        memory=MemoryProfile(**mem_defaults),
        imbalance=imbalance or ImbalanceSpec(),
        serial_ns=serial_ns,
    )


@pytest.fixture
def engine(crill_node):
    return ExecutionEngine(crill_node)


class TestBasicExecution:
    def test_produces_positive_time_and_energy(self, engine):
        rec = engine.execute(make_region(), OMPConfig(8))
        assert rec.time_s > 0
        assert rec.energy_j > 0
        assert rec.avg_power_w > 0

    def test_advances_clock_and_counters(self, engine, crill_node):
        rec = engine.execute(make_region(), OMPConfig(8))
        assert crill_node.now_s == pytest.approx(rec.time_s)
        assert crill_node.read_package_energy_j() == pytest.approx(
            rec.energy_j, rel=0.01
        )

    def test_deterministic(self, crill_node):
        e1 = ExecutionEngine(SimulatedNode(crill()))
        e2 = ExecutionEngine(SimulatedNode(crill()))
        r1 = e1.execute(make_region(), OMPConfig(8))
        r2 = e2.execute(make_region(), OMPConfig(8))
        assert r1 == r2

    def test_memoized_within_engine(self, engine):
        r1 = engine.execute(make_region(), OMPConfig(8))
        r2 = engine.execute(make_region(), OMPConfig(8))
        assert r1 is r2

    def test_rejects_oversized_team(self, engine):
        with pytest.raises(ValueError, match="hardware threads"):
            engine.execute(make_region(), OMPConfig(64))

    def test_thread_busy_matches_team(self, engine):
        rec = engine.execute(make_region(), OMPConfig(12))
        assert len(rec.thread_busy_s) == 12


class TestParallelScaling:
    def test_more_threads_faster_compute_bound(self, engine):
        region = make_region(cpu_ns=1.0e6, bytes_per_iter=64.0)
        times = [
            engine.execute(region, OMPConfig(n)).time_s
            for n in (1, 2, 4, 8)
        ]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_speedup_bounded_by_team(self, engine):
        region = make_region(cpu_ns=1.0e6, bytes_per_iter=64.0)
        t1 = engine.execute(region, OMPConfig(1)).time_s
        t8 = engine.execute(region, OMPConfig(8)).time_s
        assert t1 / t8 <= 8.01

    def test_serial_part_not_parallelized(self, engine):
        region = make_region(serial_ns=5e6)
        rec = engine.execute(region, OMPConfig(16))
        assert rec.serial_time_s == pytest.approx(5e-3)
        assert rec.time_s > 5e-3


class TestLoadImbalance:
    def test_imbalance_creates_barrier_wait(self, engine):
        balanced = make_region(name="bal")
        skewed = make_region(
            name="skew",
            imbalance=ImbalanceSpec(kind="linear", amplitude=0.8),
        )
        cfg = OMPConfig(8, ScheduleKind.STATIC, None)
        rec_b = engine.execute(balanced, cfg)
        rec_s = engine.execute(skewed, cfg)
        assert rec_s.barrier_wait_total_s > rec_b.barrier_wait_total_s

    def test_dynamic_heals_imbalance(self, engine):
        region = make_region(
            name="skewed",
            iterations=512,
            imbalance=ImbalanceSpec(kind="linear", amplitude=0.8),
        )
        static = engine.execute(
            region, OMPConfig(8, ScheduleKind.STATIC, None)
        )
        dynamic = engine.execute(
            region, OMPConfig(8, ScheduleKind.DYNAMIC, 4)
        )
        assert dynamic.time_s < static.time_s
        assert dynamic.barrier_fraction < static.barrier_fraction

    def test_guided_heals_imbalance(self, engine):
        region = make_region(
            name="skewed2",
            iterations=512,
            imbalance=ImbalanceSpec(kind="linear", amplitude=0.8),
        )
        static = engine.execute(
            region, OMPConfig(8, ScheduleKind.STATIC, None)
        )
        guided = engine.execute(
            region, OMPConfig(8, ScheduleKind.GUIDED, None)
        )
        assert guided.time_s < static.time_s

    def test_serial_section_counts_as_barrier(self, engine):
        """Master-only sections leave siblings waiting (Figure 9)."""
        region = make_region(name="serialish", serial_ns=2e6)
        rec = engine.execute(region, OMPConfig(8))
        assert rec.barrier_wait_total_s >= 7 * 2e-3


class TestDispatchCosts:
    def test_tiny_chunks_cost_dispatch(self, engine):
        region = make_region(name="dispatchy", iterations=2048,
                             cpu_ns=2e3)
        chunk1 = engine.execute(
            region, OMPConfig(8, ScheduleKind.DYNAMIC, 1)
        )
        chunk64 = engine.execute(
            region, OMPConfig(8, ScheduleKind.DYNAMIC, 64)
        )
        assert chunk1.dispatch_overhead_s > chunk64.dispatch_overhead_s

    def test_static_has_no_dispatch_overhead(self, engine):
        rec = engine.execute(
            make_region(), OMPConfig(8, ScheduleKind.STATIC, 4)
        )
        assert rec.dispatch_overhead_s == 0.0


class TestPowerCapsInEngine:
    def test_cap_slows_execution(self, crill_node):
        engine = ExecutionEngine(crill_node)
        region = make_region(cpu_ns=1e6, bytes_per_iter=64.0)
        uncapped = engine.execute(region, OMPConfig(32))
        crill_node.set_power_cap(55.0)
        crill_node.settle_after_cap()
        capped = engine.execute(region, OMPConfig(32))
        assert capped.time_s > uncapped.time_s
        assert capped.frequencies_ghz[0] < uncapped.frequencies_ghz[0]

    def test_cap_lowers_power(self, crill_node):
        engine = ExecutionEngine(crill_node)
        region = make_region(cpu_ns=1e6)
        uncapped = engine.execute(region, OMPConfig(32))
        crill_node.set_power_cap(55.0)
        crill_node.settle_after_cap()
        capped = engine.execute(region, OMPConfig(32))
        assert capped.avg_power_w < uncapped.avg_power_w

    def test_records_keyed_by_cap(self, crill_node):
        """Memoization must not leak records across cap changes."""
        engine = ExecutionEngine(crill_node)
        region = make_region()
        r1 = engine.execute(region, OMPConfig(8))
        crill_node.set_power_cap(55.0)
        crill_node.settle_after_cap()
        r2 = engine.execute(region, OMPConfig(8))
        assert r1.time_s != r2.time_s


class TestEnergyAccounting:
    def test_fewer_threads_lower_power(self, engine):
        region = make_region(cpu_ns=1e6)
        small = engine.execute(region, OMPConfig(4))
        large = engine.execute(region, OMPConfig(32))
        assert small.avg_power_w < large.avg_power_w

    def test_energy_time_power_consistent(self, engine):
        rec = engine.execute(make_region(), OMPConfig(8))
        assert rec.energy_j == pytest.approx(
            rec.avg_power_w * rec.time_s
        )

    def test_power_within_physical_bounds(self, engine):
        rec = engine.execute(make_region(cpu_ns=1e6), OMPConfig(32))
        # two packages, each at most TDP-ish (plus turbo headroom)
        assert rec.avg_power_w < 2.5 * crill().tdp_w
        assert rec.avg_power_w > crill().static_power_w


@settings(max_examples=30, deadline=None)
@given(
    n_threads=st.integers(1, 32),
    schedule=st.sampled_from(list(ScheduleKind)),
    chunk=st.one_of(st.none(), st.sampled_from([1, 8, 64, 512])),
)
def test_any_config_valid_record(n_threads, schedule, chunk):
    engine = ExecutionEngine(SimulatedNode(crill()))
    rec = engine.execute(
        make_region(iterations=300), OMPConfig(n_threads, schedule, chunk)
    )
    assert rec.time_s > 0
    assert rec.energy_j > 0
    assert rec.barrier_wait_total_s >= 0
    assert 0 <= rec.l3_miss_rate <= rec.l2_miss_rate <= rec.l1_miss_rate
    assert rec.loop_time_s <= rec.time_s
