"""Property-based tests for the simulator core (hypothesis).

These encode the model invariants the batched evaluator and the paper
figures both rely on:

* every schedule kind partitions the iteration space exactly (no loss,
  no overlap, dispatch order), and the vectorized ``chunk_bounds``
  agrees with the reference ``chunks_for`` partition;
* predicted region time is non-increasing in the package power cap;
* package energy respects the idle-power floor;
* per-thread busy times are finite, non-negative, and sized to the
  team;
* the engine is deterministic: identical inputs on identical fresh
  nodes give bit-identical records.

Example budgets are bounded so the suite stays tier-1 friendly.
"""

from __future__ import annotations

import pytest

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is an extra
    pytest.skip(
        "hypothesis is not installed", allow_module_level=True
    )

from repro.machine.cache import MemoryProfile
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.openmp.region import ImbalanceSpec, RegionProfile
from repro.openmp.schedule import chunk_bounds, chunks_for
from repro.openmp.types import OMPConfig, ScheduleKind

BOUNDED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MAX_THREADS = 32  # crill has 128 hw threads; keep the sims cheap


def _schedules() -> st.SearchStrategy[ScheduleKind]:
    return st.sampled_from(
        [ScheduleKind.STATIC, ScheduleKind.DYNAMIC, ScheduleKind.GUIDED]
    )


def _configs() -> st.SearchStrategy[OMPConfig]:
    return st.builds(
        OMPConfig,
        n_threads=st.integers(min_value=1, max_value=MAX_THREADS),
        schedule=_schedules(),
        chunk=st.one_of(
            st.none(), st.integers(min_value=1, max_value=128)
        ),
    )


def _regions() -> st.SearchStrategy[RegionProfile]:
    return st.builds(
        RegionProfile,
        name=st.just("prop_region"),
        iterations=st.integers(min_value=1, max_value=512),
        cpu_ns_per_iter=st.floats(
            min_value=100.0, max_value=1e6, allow_nan=False
        ),
        memory=st.builds(
            MemoryProfile,
            bytes_per_iter=st.floats(min_value=1.0, max_value=1e6),
            stride_bytes=st.sampled_from([8.0, 64.0, 4096.0]),
            footprint_bytes=st.floats(min_value=0.0, max_value=1e9),
            reuse_fraction=st.floats(min_value=0.0, max_value=0.95),
        ),
        imbalance=st.builds(
            ImbalanceSpec,
            kind=st.sampled_from(
                ["none", "linear", "sawtooth", "step", "random"]
            ),
            amplitude=st.floats(min_value=0.0, max_value=0.8),
            period=st.integers(min_value=1, max_value=64),
            heavy_fraction=st.floats(min_value=0.05, max_value=0.95),
        ),
        serial_ns=st.floats(min_value=0.0, max_value=1e6),
    )


class TestChunking:
    @BOUNDED
    @given(
        config=_configs(),
        n_iterations=st.integers(min_value=1, max_value=2048),
    )
    def test_partition_is_exact(self, config, n_iterations):
        """Chunks cover [0, n) contiguously, in order, exactly once -
        for every schedule kind and chunk argument."""
        chunks = chunks_for(config, n_iterations)
        assert sum(c.size for c in chunks) == n_iterations
        cursor = 0
        for chunk in chunks:
            assert chunk.start == cursor
            assert chunk.size >= 1
            cursor = chunk.stop
        assert cursor == n_iterations

    @BOUNDED
    @given(
        config=_configs(),
        n_iterations=st.integers(min_value=1, max_value=2048),
    )
    def test_chunk_bounds_matches_chunks_for(self, config, n_iterations):
        """The batched evaluator's vectorized partition is the same
        partition as the scalar reference, chunk for chunk."""
        chunks = chunks_for(config, n_iterations)
        starts, stops = chunk_bounds(config, n_iterations)
        assert list(starts) == [c.start for c in chunks]
        assert list(stops) == [c.stop for c in chunks]


def _engine(cap_w: float | None = None) -> ExecutionEngine:
    node = SimulatedNode(crill())
    if cap_w is not None:
        node.rapl.set_package_cap(cap_w, node.now_s)
    return ExecutionEngine(node)


class TestEngineInvariants:
    @BOUNDED
    @given(
        region=_regions(),
        config=_configs(),
        cap_pair=st.tuples(
            st.floats(min_value=45.0, max_value=125.0),
            st.floats(min_value=45.0, max_value=125.0),
        ),
    )
    def test_time_non_increasing_in_cap(self, region, config, cap_pair):
        """Raising the package power cap never slows a region down."""
        lo, hi = sorted(cap_pair)
        t_lo = _engine(lo)._simulate(region, config).time_s
        t_hi = _engine(hi)._simulate(region, config).time_s
        assert t_hi <= t_lo * (1.0 + 1e-9)

    @BOUNDED
    @given(
        region=_regions(),
        config=_configs(),
        cap_w=st.one_of(
            st.none(), st.floats(min_value=45.0, max_value=125.0)
        ),
    )
    def test_energy_respects_idle_floor(self, region, config, cap_w):
        """Even a fully capped region cannot dip below the deep-sleep
        power of the whole chip: energy >= idle_power * wall_time."""
        spec = crill()
        record = _engine(cap_w)._simulate(region, config)
        idle_w = spec.idle_core_sleep_w * spec.total_cores
        assert record.energy_j >= idle_w * record.time_s * (1.0 - 1e-9)
        assert record.avg_power_w >= 0.0

    @BOUNDED
    @given(region=_regions(), config=_configs())
    def test_thread_times_finite_and_sized(self, region, config):
        record = _engine()._simulate(region, config)
        assert len(record.thread_busy_s) == config.n_threads
        for freq in record.frequencies_ghz:  # one per active socket
            assert 0.0 < freq < 10.0
        for busy in record.thread_busy_s:
            assert busy >= 0.0
            assert busy == busy  # not NaN
            assert busy != float("inf")
        assert record.time_s >= record.serial_time_s
        assert record.barrier_wait_max_s <= (
            record.barrier_wait_total_s + 1e-15
        )

    @settings(max_examples=15, deadline=None)
    @given(region=_regions(), config=_configs())
    def test_same_inputs_same_record(self, region, config):
        """Two engines built from identical fresh nodes produce
        bit-identical records: the model has no hidden global state."""
        assert _engine(85.0)._simulate(region, config) == _engine(
            85.0
        )._simulate(region, config)
