"""Cross-cutting consistency checks on execution records and the
engine's internal accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.openmp.records import RegionExecutionRecord, RegionTotals
from repro.openmp.types import OMPConfig, ScheduleKind
from tests.test_openmp_engine import make_region


class TestRecordInvariants:
    @pytest.fixture
    def record(self, crill_node):
        engine = ExecutionEngine(crill_node)
        return engine.execute(
            make_region(iterations=300), OMPConfig(16)
        )

    def test_time_decomposition(self, record):
        """Wall time = serial + fork/join + max thread + barrier slack;
        the pieces must not exceed the whole."""
        assert record.serial_time_s + record.loop_time_s <= (
            record.time_s + 1e-12
        )

    def test_thread_busy_bounded_by_loop_time(self, record):
        assert max(record.thread_busy_s) == pytest.approx(
            record.loop_time_s
        )

    def test_barrier_max_bounded_by_total(self, record):
        assert record.barrier_wait_max_s <= (
            record.barrier_wait_total_s + 1e-12
        )

    def test_barrier_fraction_in_unit_range(self, record):
        assert 0.0 <= record.barrier_fraction <= 1.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            RegionExecutionRecord(
                region_name="r",
                config=OMPConfig(1),
                time_s=-1.0,
                loop_time_s=0.0,
                serial_time_s=0.0,
                fork_join_s=0.0,
                barrier_wait_total_s=0.0,
                barrier_wait_max_s=0.0,
                thread_busy_s=(0.0,),
                energy_j=0.0,
                avg_power_w=0.0,
                frequencies_ghz=(1.0,),
                l1_miss_rate=0.0,
                l2_miss_rate=0.0,
                l3_miss_rate=0.0,
                dram_bytes=0.0,
                dispatch_overhead_s=0.0,
            )

    def test_region_totals_per_call(self):
        totals = RegionTotals(
            region_name="r", calls=4, implicit_task_s=2.0,
            loop_s=1.5, barrier_s=0.2, energy_j=10.0,
        )
        assert totals.time_per_call_s == pytest.approx(0.5)

    def test_region_totals_zero_calls(self):
        totals = RegionTotals(
            region_name="r", calls=0, implicit_task_s=0.0,
            loop_s=0.0, barrier_s=0.0, energy_j=0.0,
        )
        assert totals.time_per_call_s == 0.0


class TestEngineAccountingConsistency:
    def test_clock_equals_sum_of_records(self, crill_node):
        engine = ExecutionEngine(crill_node)
        total = 0.0
        for i in range(5):
            rec = engine.execute(
                make_region(name=f"r{i}"), OMPConfig(4 + i)
            )
            total += rec.time_s
        assert crill_node.now_s == pytest.approx(total)

    def test_counters_equal_sum_of_record_energy(self, crill_node):
        engine = ExecutionEngine(crill_node)
        total = 0.0
        for i in range(5):
            rec = engine.execute(
                make_region(name=f"r{i}", cpu_ns=5e5), OMPConfig(8)
            )
            total += rec.energy_j
        assert crill_node.read_package_energy_j() == pytest.approx(
            total, rel=0.001
        )

    def test_dram_counters_match_records(self, crill_node):
        engine = ExecutionEngine(crill_node)
        rec = engine.execute(make_region(cpu_ns=5e5), OMPConfig(8))
        assert crill_node.read_dram_energy_j() == pytest.approx(
            rec.dram_energy_j, rel=0.01
        )


@settings(max_examples=25, deadline=None)
@given(
    threads=st.integers(1, 32),
    chunk=st.sampled_from([None, 1, 16, 128]),
    serial_us=st.floats(0, 500.0),
)
def test_work_conservation(threads, chunk, serial_us):
    """Schedules redistribute work; they must not create or destroy it.
    Total useful thread time is schedule-invariant up to dispatch
    overhead and per-thread speed differences."""
    engine = ExecutionEngine(SimulatedNode(crill()))
    region = make_region(
        iterations=500, serial_ns=serial_us * 1e3
    )
    static = engine.execute(
        region, OMPConfig(threads, ScheduleKind.STATIC, chunk)
    )
    dynamic = engine.execute(
        region, OMPConfig(threads, ScheduleKind.DYNAMIC, chunk or 1)
    )
    static_work = sum(static.thread_busy_s)
    dynamic_work = sum(dynamic.thread_busy_s)
    # dynamic adds dispatch overhead but the same iteration work; with
    # jittered per-thread speeds a reassignment changes totals slightly
    assert dynamic_work == pytest.approx(static_work, rel=0.15)
