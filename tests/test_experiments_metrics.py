"""Tests for comparison metrics and reporting rendering."""

from __future__ import annotations

import pytest

from repro.experiments.metrics import (
    best_improvement,
    improvement_pct,
    normalized_series,
)
from repro.experiments.reporting import (
    render_features,
    render_fig1,
    render_fig9,
    render_sweep,
    render_table1,
    render_table2,
)
from repro.experiments.figures import (
    FeatureComparison,
    Fig1Row,
    Fig9Row,
    PowerSweep,
    SweepCell,
)
from repro.experiments.runner import StrategyRunResult
from repro.experiments.tables import Table1Row, Table2Row


def result(strategy, time_s, energy_j=None):
    return StrategyRunResult(
        strategy=strategy,
        app_label="sp.B",
        machine="crill",
        cap_w=None,
        time_s=time_s,
        energy_j=energy_j,
        runs=(),
    )


class TestMetrics:
    def test_normalized_series(self):
        base = result("default", 10.0, 100.0)
        others = [result("arcs-offline", 7.0, 60.0)]
        series = normalized_series(base, others, "time")
        assert series["default"] == 1.0
        assert series["arcs-offline"] == pytest.approx(0.7)

    def test_energy_metric(self):
        base = result("default", 10.0, 100.0)
        series = normalized_series(
            base, [result("arcs-online", 9.0, 80.0)], "energy"
        )
        assert series["arcs-online"] == pytest.approx(0.8)

    def test_energy_unavailable(self):
        base = result("default", 10.0, None)
        with pytest.raises(ValueError, match="energy"):
            normalized_series(base, [], "energy")

    def test_best_improvement(self):
        base = result("default", 10.0)
        others = [result("a", 8.0), result("b", 6.0)]
        assert best_improvement(base, others) == pytest.approx(40.0)

    def test_best_improvement_empty_others(self):
        """Used to crash with a bare ``max() arg is an empty
        sequence``; must name the baseline strategy instead."""
        with pytest.raises(ValueError, match="'default'"):
            best_improvement(result("default", 10.0), [])

    def test_zero_baseline_time(self):
        """Used to divide by zero; must explain the degenerate
        baseline."""
        base = result("default", 0.0)
        with pytest.raises(ValueError, match="0.0"):
            normalized_series(base, [result("a", 1.0)], "time")

    def test_zero_baseline_energy(self):
        base = result("default", 10.0, 0.0)
        with pytest.raises(ValueError, match="energy"):
            normalized_series(base, [result("a", 1.0, 2.0)], "energy")

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            normalized_series(result("default", 1.0), [], "flops")


class TestRendering:
    def test_fig1(self):
        rows = [
            Fig1Row("55W", "16, guided, 8", 1.0, 1.5),
            Fig1Row("NO CAP", "32, static, default", 2.0, None),
        ]
        out = render_fig1(rows)
        assert "55W" in out and "33.3%" in out and "NO CAP" in out

    def test_features(self):
        comparison = FeatureComparison(
            app_label="sp.B",
            regions=("x_solve",),
            offline_normalized={
                "x_solve": {
                    "OMP_BARRIER": 0.5,
                    "L1 miss": 0.9,
                    "L2 miss": 0.8,
                    "L3 miss": 0.1,
                }
            },
            offline_configs={"x_solve": "16, guided, 1"},
        )
        out = render_features(comparison, "Fig 3")
        assert "x_solve" in out and "0.500" in out

    def test_sweep(self):
        sweep = PowerSweep(
            app_label="sp.B",
            machine="crill",
            caps=(55.0,),
            cells={
                ("55W", "default"): SweepCell(1.0, 1.0),
                ("55W", "arcs-offline"): SweepCell(0.7, 0.65),
            },
            results={},
        )
        out = render_sweep(sweep, "Fig 4")
        assert "0.700" in out and "0.650" in out

    def test_sweep_tdp_label(self):
        sweep = PowerSweep(
            app_label="x", machine="crill", caps=(115.0,), cells={},
            results={},
        )
        assert sweep.cap_label(115.0) == "TDP"
        assert sweep.cap_label(55.0) == "55W"

    def test_fig9(self):
        rows = [Fig9Row("EvalEOSForElems_", 1920, 1.5, 0.6, 0.8)]
        out = render_fig9(rows)
        assert "EvalEOSForElems_" in out and "1920" in out

    def test_tables(self):
        out1 = render_table1(
            [Table1Row("Chunk Size", "1, 8, default")]
        )
        assert "Chunk Size" in out1
        out2 = render_table2(
            [Table2Row("x_solve", "16, guided, 1")]
        )
        assert "x_solve" in out2


class TestRenderingGoldens:
    """Byte-exact snapshots of every text renderer on fixed synthetic
    inputs - the refactor onto tidy records must never change a single
    character of the paper-style output.  Refresh deliberately with
    ``--update-goldens``."""

    def check(self, name, text, goldens_dir, update_goldens):
        from tests.test_golden_masters import check_golden

        check_golden(name, text + "\n", goldens_dir, update_goldens)

    def test_fig1_golden(self, goldens_dir, update_goldens):
        rows = [
            Fig1Row("55W", "16, guided, 8", 1.0, 1.5),
            Fig1Row("NO CAP", "32, static, default", 2.0, None),
        ]
        self.check(
            "render_fig1.txt", render_fig1(rows),
            goldens_dir, update_goldens,
        )

    def test_features_golden(self, goldens_dir, update_goldens):
        comparison = FeatureComparison(
            app_label="sp.B",
            regions=("x_solve", "y_solve"),
            offline_normalized={
                "x_solve": {
                    "OMP_BARRIER": 0.5, "L1 miss": 0.9,
                    "L2 miss": 0.8, "L3 miss": 0.1,
                },
                "y_solve": {
                    "OMP_BARRIER": 1.25, "L1 miss": 1.0,
                    "L2 miss": 0.75, "L3 miss": 0.5,
                },
            },
            offline_configs={"x_solve": "16, guided, 1"},
        )
        self.check(
            "render_features.txt",
            render_features(comparison, "Fig 3 (synthetic)"),
            goldens_dir, update_goldens,
        )

    def test_sweep_golden(self, goldens_dir, update_goldens):
        sweep = PowerSweep(
            app_label="sp.B",
            machine="crill",
            caps=(115.0, 55.0),
            cells={
                ("TDP", "default"): SweepCell(1.0, 1.0),
                ("TDP", "arcs-offline"): SweepCell(0.7, 0.65),
                ("55W", "default"): SweepCell(1.0, None),
                ("55W", "arcs-online"): SweepCell(0.85, None),
            },
            results={},
        )
        self.check(
            "render_sweep.txt",
            render_sweep(sweep, "Fig 4 (synthetic)"),
            goldens_dir, update_goldens,
        )

    def test_fig9_golden(self, goldens_dir, update_goldens):
        rows = [
            Fig9Row("EvalEOSForElems_", 1920, 1.5, 0.6, 0.8),
            Fig9Row("CalcPressure_", 960, 0.25, 0.1, 0.05),
        ]
        self.check(
            "render_fig9.txt", render_fig9(rows),
            goldens_dir, update_goldens,
        )

    def test_tables_golden(self, goldens_dir, update_goldens):
        self.check(
            "render_table1.txt",
            render_table1(
                [Table1Row("Chunk Size", "1, 8, default"),
                 Table1Row("Thread Count", "2, 4, 8")]
            ),
            goldens_dir, update_goldens,
        )
        self.check(
            "render_table2.txt",
            render_table2(
                [Table2Row("x_solve", "16, guided, 1"),
                 Table2Row("y_solve", "32, dynamic, 8")]
            ),
            goldens_dir, update_goldens,
        )
