"""Tests for the future-work extensions: TAU profiler, cap-aware
adaptation, the DVFS dimension, alternative objectives and the DRAM
power domain."""

from __future__ import annotations

import pytest

from repro.apex.tau import TauProfiler
from repro.core.config import dvfs_frequency_values, search_space_for
from repro.core.controller import ARCS
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill, minotaur
from repro.openmp.runtime import DVFS_WRITE_OVERHEAD_S, OpenMPRuntime
from tests.test_core_policy import tiny_space
from tests.test_openmp_engine import make_region


class TestTauProfiler:
    def test_accumulates_ompt_breakdown(self, runtime):
        profiler = TauProfiler()
        profiler.attach(runtime)
        rec = runtime.parallel_for(make_region(name="t"))
        runtime.parallel_for(make_region(name="t"))
        profile = profiler.regions["t"]
        assert profile.calls == 2
        assert profile.implicit_task_s == pytest.approx(2 * rec.time_s)
        assert profile.loop_s > 0
        assert profile.barrier_s >= 0
        assert 0 <= profile.barrier_fraction <= 1

    def test_top_by_inclusive_time(self, runtime):
        profiler = TauProfiler()
        profiler.attach(runtime)
        runtime.parallel_for(make_region(name="big", cpu_ns=1e6))
        runtime.parallel_for(make_region(name="small", cpu_ns=1e4))
        tops = profiler.top_by_inclusive_time(2)
        assert tops[0].region_name == "big"

    def test_detach_stops_collection(self, runtime):
        profiler = TauProfiler()
        profiler.attach(runtime)
        profiler.detach()
        runtime.parallel_for(make_region(name="t"))
        assert "t" not in profiler.regions

    def test_double_attach_rejected(self, runtime):
        profiler = TauProfiler()
        profiler.attach(runtime)
        with pytest.raises(RuntimeError):
            profiler.attach(runtime)

    def test_coexists_with_arcs(self, runtime):
        profiler = TauProfiler()
        profiler.attach(runtime)
        arcs = ARCS(runtime, space=tiny_space(), strategy="exhaustive")
        arcs.attach()
        runtime.parallel_for(make_region(name="both"))
        assert "both" in profiler.regions
        assert "both" in arcs.policy.sessions()


class TestCapAwareAdaptation:
    """Section II: configurations must adapt when the resource manager
    changes the node's power level mid-run."""

    def test_sessions_keyed_per_cap(self, runtime):
        arcs = ARCS(
            runtime, space=tiny_space(), strategy="exhaustive",
            cap_aware=True,
        )
        arcs.attach()
        region = make_region(name="r")
        runtime.parallel_for(region)
        runtime.node.set_power_cap(55.0)
        runtime.node.settle_after_cap()
        runtime.parallel_for(region)
        sessions = arcs.policy.sessions()
        assert "r@tdp" in sessions
        assert "r@55W" in sessions

    def test_cap_change_restarts_tuning(self, runtime):
        space = tiny_space()
        arcs = ARCS(
            runtime, space=space, strategy="exhaustive", cap_aware=True
        )
        arcs.attach()
        region = make_region(name="r")
        for _ in range(space.size + 1):
            runtime.parallel_for(region)
        assert arcs.policy.sessions()["r@tdp"].converged
        runtime.node.set_power_cap(55.0)
        runtime.node.settle_after_cap()
        runtime.parallel_for(region)
        assert not arcs.policy.sessions()["r@55W"].converged

    def test_without_flag_sessions_shared_across_caps(self, runtime):
        arcs = ARCS(runtime, space=tiny_space(), strategy="exhaustive")
        arcs.attach()
        region = make_region(name="r")
        runtime.parallel_for(region)
        runtime.node.set_power_cap(55.0)
        runtime.node.settle_after_cap()
        runtime.parallel_for(region)
        assert set(arcs.policy.sessions()) == {"r"}


class TestDvfsDimension:
    def test_frequency_values(self):
        values = dvfs_frequency_values(crill())
        assert values[0] is None
        assert values[1] == pytest.approx(1.2)
        assert values[-1] == pytest.approx(2.4)

    def test_space_gains_dimension(self):
        base = search_space_for(crill())
        dvfs = search_space_for(crill(), include_dvfs=True)
        assert dvfs.dimensions == base.dimensions + 1
        assert dvfs.size == base.size * 6

    def test_node_frequency_limit_clamps(self, crill_node):
        placement = crill_node.topology.place(4)
        crill_node.set_frequency_limit(1.5)
        assert all(
            f <= 1.5 for f in crill_node.frequency_for_team(placement)
        )

    def test_limit_validated(self, crill_node):
        with pytest.raises(ValueError):
            crill_node.set_frequency_limit(0.5)
        with pytest.raises(ValueError):
            crill_node.set_frequency_limit(5.0)

    def test_runtime_dvfs_write_costs_time(self, runtime):
        t0 = runtime.node.now_s
        runtime.set_frequency_limit(1.8)
        assert runtime.node.now_s - t0 == pytest.approx(
            DVFS_WRITE_OVERHEAD_S
        )
        assert runtime.frequency_limit() == 1.8

    def test_limit_slows_execution(self, runtime):
        region = make_region(cpu_ns=1e6, bytes_per_iter=64.0)
        fast = runtime.parallel_for(region)
        runtime.set_frequency_limit(1.2)
        slow = runtime.parallel_for(region)
        assert slow.time_s > fast.time_s
        assert max(slow.frequencies_ghz) <= 1.2

    def test_arcs_tunes_frequency_dimension(self, runtime):
        space = search_space_for(crill(), include_dvfs=True)
        arcs = ARCS(runtime, space=space, strategy="nelder-mead",
                    max_evals=15)
        arcs.attach()
        region = make_region(name="r")
        for _ in range(20):
            runtime.parallel_for(region)
        points = arcs.policy.best_points()
        assert "freq_ghz" in points["r"]


class TestObjectives:
    def test_invalid_objective_rejected(self, runtime):
        with pytest.raises(ValueError, match="objective"):
            ARCS(runtime, objective="flops")

    def test_energy_objective_needs_counters(self, minotaur_node):
        runtime = OpenMPRuntime(minotaur_node, noise_sigma=0.0)
        with pytest.raises(ValueError, match="energy counters"):
            ARCS(runtime, objective="energy")

    def test_energy_objective_prefers_lower_energy(self, runtime):
        """An energy-tuned exhaustive session picks the config with the
        lowest measured energy, even if it is not the fastest."""
        space = tiny_space()
        arcs = ARCS(
            runtime, space=space, strategy="exhaustive",
            objective="energy",
        )
        arcs.attach()
        region = make_region(name="r", cpu_ns=1e6)
        for _ in range(space.size + 1):
            runtime.parallel_for(region)
        best_value = arcs.policy.best_values()["r"]
        # the best value is an energy (joules), an order of magnitude
        # above any plausible region time in seconds for this region
        assert best_value > 0.05

    @pytest.mark.parametrize("objective", ["time", "energy", "edp"])
    def test_all_objectives_run(self, runtime, objective):
        space = tiny_space()
        arcs = ARCS(
            runtime, space=space, strategy="nelder-mead",
            max_evals=8, objective=objective,
        )
        arcs.attach()
        for _ in range(10):
            runtime.parallel_for(make_region(name="r"))
        assert arcs.chosen_configs()


class TestDramDomain:
    def test_dram_energy_accumulates(self, runtime):
        runtime.parallel_for(make_region())
        assert runtime.node.read_dram_energy_j() > 0

    def test_dram_counter_separate_from_package(self, runtime):
        runtime.parallel_for(make_region())
        pkg = runtime.node.read_package_energy_j()
        dram = runtime.node.read_dram_energy_j()
        assert pkg != dram
        assert dram < pkg

    def test_record_carries_dram_energy(self, runtime):
        rec = runtime.parallel_for(make_region())
        assert rec.dram_energy_j > 0

    def test_memory_heavy_region_more_dram_energy_per_second(
        self, runtime
    ):
        light = runtime.parallel_for(
            make_region(name="light", bytes_per_iter=64.0)
        )
        heavy = runtime.parallel_for(
            make_region(
                name="heavy",
                bytes_per_iter=512.0e3,
                stride_bytes=8192.0,
                footprint_bytes=256 * 1024 * 1024,
                reuse_fraction=0.05,
            )
        )
        assert (
            heavy.dram_energy_j / heavy.time_s
            > light.dram_energy_j / light.time_s
        )

    def test_minotaur_counters_forbidden(self, minotaur_node):
        with pytest.raises(PermissionError):
            minotaur_node.read_dram_energy_j()
