"""Tests for the shared seeded retry/backoff policy."""

from __future__ import annotations

import pytest

from repro.telemetry.bus import TelemetryBus, install
from repro.util.retry import RetryPolicy


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures: int, value: str = "ok") -> None:
        self.failures = failures
        self.value = value
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"boom #{self.calls}")
        return self.value


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)

    def test_rejects_negative_base_delay(self):
        with pytest.raises(ValueError, match="base_delay_s"):
            RetryPolicy(base_delay_s=-1.0)

    def test_rejects_submultiplicative_backoff(self):
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestDelays:
    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy(attempts=5, base_delay_s=0.0)
        assert list(policy.delays()) == [0.0] * 4

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            attempts=5, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3
        )
        assert list(policy.delays()) == pytest.approx(
            [0.1, 0.2, 0.3, 0.3]
        )

    def test_jitter_only_shortens(self):
        policy = RetryPolicy(
            attempts=4,
            base_delay_s=0.1,
            multiplier=2.0,
            max_delay_s=1.0,
            jitter=0.5,
            seed=11,
        )
        plain = RetryPolicy(
            attempts=4, base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0
        )
        for jittered, upper in zip(policy.delays(), plain.delays()):
            assert 0.0 < jittered <= upper
            assert jittered >= upper * 0.5  # jitter=0.5 floor

    def test_jitter_is_seed_deterministic(self):
        a = RetryPolicy(attempts=4, base_delay_s=0.1, jitter=0.9, seed=3)
        b = RetryPolicy(attempts=4, base_delay_s=0.1, jitter=0.9, seed=3)
        c = RetryPolicy(attempts=4, base_delay_s=0.1, jitter=0.9, seed=4)
        assert list(a.delays()) == list(b.delays())
        assert list(a.delays()) != list(c.delays())

    def test_salt_varies_the_schedule(self):
        policy = RetryPolicy(
            attempts=4, base_delay_s=0.1, jitter=0.9, seed=3
        )
        assert list(policy.delays("a")) != list(policy.delays("b"))


class TestRun:
    def test_returns_first_success(self):
        fn = Flaky(0)
        assert RetryPolicy(attempts=3).run(fn, retry_on=RuntimeError) == "ok"
        assert fn.calls == 1

    def test_retries_until_success(self):
        fn = Flaky(2)
        assert RetryPolicy(attempts=3).run(fn, retry_on=RuntimeError) == "ok"
        assert fn.calls == 3

    def test_reraises_last_after_exhaustion(self):
        fn = Flaky(5)
        with pytest.raises(RuntimeError, match="boom #3"):
            RetryPolicy(attempts=3).run(fn, retry_on=RuntimeError)
        assert fn.calls == 3

    def test_foreign_exceptions_propagate_immediately(self):
        calls = []

        def fn():
            calls.append(1)
            raise KeyError("not retryable here")

        with pytest.raises(KeyError):
            RetryPolicy(attempts=3).run(fn, retry_on=RuntimeError)
        assert len(calls) == 1

    def test_on_failure_runs_after_every_failure_including_last(self):
        seen = []
        fn = Flaky(5)
        with pytest.raises(RuntimeError):
            RetryPolicy(attempts=3).run(
                fn,
                retry_on=RuntimeError,
                on_failure=lambda attempt, exc: seen.append(
                    (attempt, str(exc))
                ),
            )
        assert seen == [
            (1, "boom #1"),
            (2, "boom #2"),
            (3, "boom #3"),
        ]

    def test_sleeps_the_computed_backoff(self):
        slept = []
        fn = Flaky(2)
        policy = RetryPolicy(
            attempts=3, base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0
        )
        policy.run(fn, retry_on=RuntimeError, sleep=slept.append)
        assert slept == pytest.approx([0.1, 0.2])

    def test_no_sleep_after_final_failure(self):
        slept = []
        fn = Flaky(9)
        with pytest.raises(RuntimeError):
            RetryPolicy(attempts=3, base_delay_s=0.1).run(
                fn, retry_on=RuntimeError, sleep=slept.append
            )
        assert len(slept) == 2  # attempts - 1

    def test_emits_retry_telemetry(self):
        bus_ = TelemetryBus(enabled=True)
        records: list[dict] = []
        bus_.add_sink(
            type(
                "S",
                (),
                {
                    "write": lambda self, r: records.append(r),
                    "flush": lambda self: None,
                    "close": lambda self: None,
                },
            )()
        )
        previous = install(bus_)
        try:
            fn = Flaky(2)
            RetryPolicy(attempts=3).run(
                fn, retry_on=RuntimeError, site="unit.test"
            )
        finally:
            install(previous)
        attempts = [
            r for r in records if r.get("name") == "retry.attempt"
        ]
        assert len(attempts) == 2
        assert attempts[0]["attrs"]["site"] == "unit.test"
        assert attempts[0]["attrs"]["attempt"] == 1
        assert attempts[0]["attrs"]["error"] == "RuntimeError"


class TestSingleAttempt:
    """attempts=1 is the degenerate policy: one call, no backoff."""

    def test_failure_calls_once_raises_immediately(self):
        policy = RetryPolicy(attempts=1, base_delay_s=10.0)
        flaky = Flaky(5)
        sleeps: list[float] = []
        with pytest.raises(RuntimeError, match="boom #1"):
            policy.run(
                flaky, retry_on=RuntimeError, sleep=sleeps.append
            )
        assert flaky.calls == 1
        assert sleeps == []

    def test_success_needs_no_schedule(self):
        policy = RetryPolicy(attempts=1, base_delay_s=10.0)
        assert policy.run(Flaky(0), retry_on=RuntimeError) == "ok"
        assert list(policy.delays()) == []

    def test_on_failure_still_fires_for_the_only_attempt(self):
        seen: list[int] = []
        with pytest.raises(RuntimeError):
            RetryPolicy(attempts=1).run(
                Flaky(1),
                retry_on=RuntimeError,
                on_failure=lambda attempt, exc: seen.append(attempt),
            )
        assert seen == [1]


class TestJitterBounds:
    def test_jitter_bounds_hold_across_the_whole_schedule(self):
        """Every jittered delay lands in [det * (1 - jitter), det] -
        the deterministic delay is the worst case, never exceeded,
        and jitter never shortens below its advertised fraction."""
        policy = RetryPolicy(
            attempts=6,
            base_delay_s=0.05,
            multiplier=2.0,
            max_delay_s=0.4,
            jitter=0.5,
            seed=123,
        )
        for salt in ((), ("cap",), ("cap", 7)):
            for failure in range(1, policy.attempts):
                det = min(0.05 * 2.0 ** (failure - 1), 0.4)
                delay = policy.delay_s(failure, *salt)
                assert det * (1.0 - policy.jitter) <= delay <= det

    def test_full_jitter_never_reaches_zero_base(self):
        # jitter=1.0 may shrink a delay towards zero but never below
        policy = RetryPolicy(
            attempts=4, base_delay_s=0.1, jitter=1.0, seed=3
        )
        for failure in range(1, policy.attempts):
            assert 0.0 <= policy.delay_s(failure) <= 0.1 * 2 ** (
                failure - 1
            )


class TestExhaustionChaining:
    def test_reraises_the_exact_last_instance(self):
        flaky = Flaky(10)
        seen: list[BaseException] = []
        with pytest.raises(RuntimeError) as err:
            RetryPolicy(attempts=3).run(
                flaky,
                retry_on=RuntimeError,
                on_failure=lambda attempt, exc: seen.append(exc),
            )
        assert err.value is seen[-1]
        assert str(err.value) == "boom #3"
        assert len(seen) == 3
        assert flaky.calls == 3

    def test_exhaustion_preserves_the_cause_chain(self):
        """A wrapped failure keeps its __cause__ through retry
        exhaustion - the original failure site survives for the
        error report."""

        def wrapped_failure() -> None:
            try:
                raise OSError("root failure")
            except OSError as exc:
                raise RuntimeError("wrapped") from exc

        with pytest.raises(RuntimeError, match="wrapped") as err:
            RetryPolicy(attempts=2).run(
                wrapped_failure, retry_on=RuntimeError
            )
        assert isinstance(err.value.__cause__, OSError)
        assert str(err.value.__cause__) == "root failure"
