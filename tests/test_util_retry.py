"""Tests for the shared seeded retry/backoff policy."""

from __future__ import annotations

import pytest

from repro.telemetry.bus import TelemetryBus, install
from repro.util.retry import RetryPolicy


class Flaky:
    """Fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures: int, value: str = "ok") -> None:
        self.failures = failures
        self.value = value
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"boom #{self.calls}")
        return self.value


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)

    def test_rejects_negative_base_delay(self):
        with pytest.raises(ValueError, match="base_delay_s"):
            RetryPolicy(base_delay_s=-1.0)

    def test_rejects_submultiplicative_backoff(self):
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestDelays:
    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy(attempts=5, base_delay_s=0.0)
        assert list(policy.delays()) == [0.0] * 4

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            attempts=5, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3
        )
        assert list(policy.delays()) == pytest.approx(
            [0.1, 0.2, 0.3, 0.3]
        )

    def test_jitter_only_shortens(self):
        policy = RetryPolicy(
            attempts=4,
            base_delay_s=0.1,
            multiplier=2.0,
            max_delay_s=1.0,
            jitter=0.5,
            seed=11,
        )
        plain = RetryPolicy(
            attempts=4, base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0
        )
        for jittered, upper in zip(policy.delays(), plain.delays()):
            assert 0.0 < jittered <= upper
            assert jittered >= upper * 0.5  # jitter=0.5 floor

    def test_jitter_is_seed_deterministic(self):
        a = RetryPolicy(attempts=4, base_delay_s=0.1, jitter=0.9, seed=3)
        b = RetryPolicy(attempts=4, base_delay_s=0.1, jitter=0.9, seed=3)
        c = RetryPolicy(attempts=4, base_delay_s=0.1, jitter=0.9, seed=4)
        assert list(a.delays()) == list(b.delays())
        assert list(a.delays()) != list(c.delays())

    def test_salt_varies_the_schedule(self):
        policy = RetryPolicy(
            attempts=4, base_delay_s=0.1, jitter=0.9, seed=3
        )
        assert list(policy.delays("a")) != list(policy.delays("b"))


class TestRun:
    def test_returns_first_success(self):
        fn = Flaky(0)
        assert RetryPolicy(attempts=3).run(fn, retry_on=RuntimeError) == "ok"
        assert fn.calls == 1

    def test_retries_until_success(self):
        fn = Flaky(2)
        assert RetryPolicy(attempts=3).run(fn, retry_on=RuntimeError) == "ok"
        assert fn.calls == 3

    def test_reraises_last_after_exhaustion(self):
        fn = Flaky(5)
        with pytest.raises(RuntimeError, match="boom #3"):
            RetryPolicy(attempts=3).run(fn, retry_on=RuntimeError)
        assert fn.calls == 3

    def test_foreign_exceptions_propagate_immediately(self):
        calls = []

        def fn():
            calls.append(1)
            raise KeyError("not retryable here")

        with pytest.raises(KeyError):
            RetryPolicy(attempts=3).run(fn, retry_on=RuntimeError)
        assert len(calls) == 1

    def test_on_failure_runs_after_every_failure_including_last(self):
        seen = []
        fn = Flaky(5)
        with pytest.raises(RuntimeError):
            RetryPolicy(attempts=3).run(
                fn,
                retry_on=RuntimeError,
                on_failure=lambda attempt, exc: seen.append(
                    (attempt, str(exc))
                ),
            )
        assert seen == [
            (1, "boom #1"),
            (2, "boom #2"),
            (3, "boom #3"),
        ]

    def test_sleeps_the_computed_backoff(self):
        slept = []
        fn = Flaky(2)
        policy = RetryPolicy(
            attempts=3, base_delay_s=0.1, multiplier=2.0, max_delay_s=1.0
        )
        policy.run(fn, retry_on=RuntimeError, sleep=slept.append)
        assert slept == pytest.approx([0.1, 0.2])

    def test_no_sleep_after_final_failure(self):
        slept = []
        fn = Flaky(9)
        with pytest.raises(RuntimeError):
            RetryPolicy(attempts=3, base_delay_s=0.1).run(
                fn, retry_on=RuntimeError, sleep=slept.append
            )
        assert len(slept) == 2  # attempts - 1

    def test_emits_retry_telemetry(self):
        bus_ = TelemetryBus(enabled=True)
        records: list[dict] = []
        bus_.add_sink(
            type(
                "S",
                (),
                {
                    "write": lambda self, r: records.append(r),
                    "flush": lambda self: None,
                    "close": lambda self: None,
                },
            )()
        )
        previous = install(bus_)
        try:
            fn = Flaky(2)
            RetryPolicy(attempts=3).run(
                fn, retry_on=RuntimeError, site="unit.test"
            )
        finally:
            install(previous)
        attempts = [
            r for r in records if r.get("name") == "retry.attempt"
        ]
        assert len(attempts) == 2
        assert attempts[0]["attrs"]["site"] == "unit.test"
        assert attempts[0]["attrs"]["attempt"] == 1
        assert attempts[0]["attrs"]["error"] == "RuntimeError"
