"""Tests for thread placement."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.spec import crill, minotaur
from repro.machine.topology import Topology


@pytest.fixture
def topo():
    return Topology(crill())


class TestPlacementBasics:
    def test_single_thread(self, topo):
        p = topo.place(1)
        assert p.n_threads == 1
        assert p.slots[0].socket == 0
        assert p.slots[0].smt_slot == 0

    def test_out_of_range_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.place(0)
        with pytest.raises(ValueError):
            topo.place(33)

    def test_all_threads_unique_slots(self, topo):
        p = topo.place(32)
        slots = {(s.socket, s.core, s.smt_slot) for s in p.slots}
        assert len(slots) == 32

    def test_thread_ids_sequential(self, topo):
        p = topo.place(8)
        assert [s.thread_id for s in p.slots] == list(range(8))


class TestScatterPolicy:
    def test_two_threads_split_across_sockets(self, topo):
        p = topo.place(2)
        assert {s.socket for s in p.slots} == {0, 1}

    def test_physical_cores_before_smt(self, topo):
        # 16 threads on 16 physical cores: no SMT sharing yet
        p = topo.place(16)
        assert all(s.smt_slot == 0 for s in p.slots)
        assert p.active_cores_per_socket == (8, 8)

    def test_smt_engaged_beyond_core_count(self, topo):
        p = topo.place(17)
        assert sum(1 for s in p.slots if s.smt_slot == 1) == 1
        assert p.active_cores_per_socket == (8, 8)

    def test_full_machine(self, topo):
        p = topo.place(32)
        assert p.active_cores_per_socket == (8, 8)
        assert all(p.siblings_active(s) == 2 for s in p.slots)


class TestThroughputFactors:
    def test_no_smt_full_throughput(self, topo):
        p = topo.place(16)
        assert all(t == 1.0 for t in p.per_thread_throughput())

    def test_smt_throughput_reduced(self, topo):
        p = topo.place(32)
        expected = crill().smt_per_thread_throughput(2)
        assert all(
            t == pytest.approx(expected)
            for t in p.per_thread_throughput()
        )

    def test_minotaur_smt8(self):
        topo = Topology(minotaur())
        p = topo.place(160)
        assert all(p.siblings_active(s) == 8 for s in p.slots)


class TestCaching:
    def test_same_placement_object_returned(self, topo):
        assert topo.place(8) is topo.place(8)


@given(st.integers(min_value=1, max_value=32))
def test_threads_per_socket_sums_to_team(n):
    p = Topology(crill()).place(n)
    assert sum(p.threads_per_socket) == n


@given(st.integers(min_value=1, max_value=160))
def test_minotaur_socket_balance(n):
    """Scatter placement keeps socket loads within one thread."""
    p = Topology(minotaur()).place(n)
    per = p.threads_per_socket
    assert abs(per[0] - per[1]) <= 1
