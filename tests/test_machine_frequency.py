"""Tests for the DVFS power-cap -> frequency solver."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.frequency import FrequencyModel
from repro.machine.spec import crill


@pytest.fixture
def freq():
    return FrequencyModel(crill())


class TestFrequencySolver:
    def test_uncapped_turbo_with_few_cores(self, freq):
        f = freq.frequency_for_cap(None, n_active=1)
        assert f == pytest.approx(crill().turbo_freq_ghz)

    def test_uncapped_full_package_at_base(self, freq):
        f = freq.frequency_for_cap(None, n_active=8)
        assert f == pytest.approx(crill().base_freq_ghz, rel=0.02)

    def test_deep_cap_clamps_to_floor(self, freq):
        f = freq.frequency_for_cap(30.0, n_active=8)
        assert f == pytest.approx(crill().min_freq_ghz)

    def test_cap_respected(self, freq):
        spec = crill()
        for cap in (55.0, 70.0, 85.0, 100.0):
            f = freq.frequency_for_cap(cap, n_active=8)
            if f > spec.min_freq_ghz:
                draw = freq.power.package_power_w(f, n_active=8)
                assert draw <= cap * 1.001

    def test_monotone_in_cap(self, freq):
        fs = [
            freq.frequency_for_cap(cap, n_active=8)
            for cap in (55.0, 70.0, 85.0, 100.0, 115.0)
        ]
        assert all(b >= a for a, b in zip(fs, fs[1:]))

    def test_fewer_cores_run_faster_under_cap(self, freq):
        """The paper's central mechanic (Figure 1): under a tight cap a
        smaller team sustains a higher frequency."""
        f8 = freq.frequency_for_cap(55.0, n_active=8)
        f4 = freq.frequency_for_cap(55.0, n_active=4)
        f1 = freq.frequency_for_cap(55.0, n_active=1)
        assert f1 > f4 > f8

    def test_invalid_args_rejected(self, freq):
        with pytest.raises(ValueError):
            freq.frequency_for_cap(55.0, n_active=0)
        with pytest.raises(ValueError):
            freq.frequency_for_cap(55.0, n_active=8, n_spin=1)
        with pytest.raises(ValueError):
            freq.frequency_for_cap(-5.0, n_active=1)

    def test_solution_cached(self, freq):
        assert freq.frequency_for_cap(70.0, 8) == freq.frequency_for_cap(
            70.0, 8
        )


class TestUncoreScale:
    def test_no_slowdown_at_base(self, freq):
        assert freq.uncore_scale(crill().base_freq_ghz) == pytest.approx(
            1.0
        )

    def test_slowdown_under_cap(self, freq):
        assert freq.uncore_scale(1.2) > 1.0

    def test_no_speedup_at_turbo(self, freq):
        assert freq.uncore_scale(3.1) == pytest.approx(1.0)


@given(
    st.floats(min_value=40.0, max_value=115.0),
    st.integers(min_value=1, max_value=8),
)
def test_frequency_always_in_range(cap, n_active):
    freq = FrequencyModel(crill())
    f = freq.frequency_for_cap(cap, n_active=n_active)
    assert crill().min_freq_ghz <= f <= crill().turbo_freq_ghz


@given(st.integers(min_value=1, max_value=8))
def test_frequency_monotone_in_active_cores(n):
    """More active cores can never raise the sustainable frequency."""
    freq = FrequencyModel(crill())
    if n < 8:
        f_n = freq.frequency_for_cap(70.0, n_active=n)
        f_n1 = freq.frequency_for_cap(70.0, n_active=n + 1)
        assert f_n1 <= f_n + 1e-9
