"""Tests for BENCH payloads (:mod:`repro.analysis.bench`)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.bench import (
    BENCH_SCHEMA_VERSION,
    BenchFormatError,
    bench_path,
    bench_payload,
    feature_metrics,
    load_bench_dir,
    load_bench_json,
    sweep_metrics,
    write_bench_json,
)
from repro.experiments.figures import (
    FEATURES,
    FeatureComparison,
    PowerSweep,
    SweepCell,
)


class TestPayload:
    def test_plain_number_defaults_to_lower(self):
        payload = bench_payload("b", {"t": 1.5})
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["kind"] == "bench"
        assert payload["metrics"]["t"] == {
            "value": 1.5, "direction": "lower",
        }

    def test_mapping_form_with_unit(self):
        payload = bench_payload(
            "b",
            {"s": {"value": 2, "direction": "higher", "unit": "x"}},
        )
        assert payload["metrics"]["s"] == {
            "value": 2.0, "direction": "higher", "unit": "x",
        }

    def test_bad_direction_rejected(self):
        with pytest.raises(BenchFormatError, match="direction"):
            bench_payload("b", {"t": {"value": 1, "direction": "up"}})

    def test_missing_value_rejected(self):
        with pytest.raises(BenchFormatError, match="value"):
            bench_payload("b", {"t": {"direction": "lower"}})

    def test_non_numeric_rejected(self):
        with pytest.raises(BenchFormatError):
            bench_payload("b", {"t": "fast"})
        with pytest.raises(BenchFormatError):
            bench_payload("b", {"t": True})

    def test_provenance(self):
        payload = bench_payload(
            "b", machine="crill", seed=3, config={"repeats": 3}
        )
        prov = payload["provenance"]
        assert prov["machines"] == ["crill"]
        assert prov["seed"] == 3
        assert prov["config"] == {"repeats": 3}
        assert prov["python"] and prov["platform"]

    def test_provenance_machine_list(self):
        prov = bench_payload(
            "b", machine=("crill", "minotaur")
        )["provenance"]
        assert prov["machines"] == ["crill", "minotaur"]


class TestMetricBuilders:
    def test_sweep_metrics(self):
        sweep = PowerSweep(
            app_label="sp.B", machine="crill", caps=(115.0,),
            cells={
                ("TDP", "default"): SweepCell(1.0, 1.0),
                ("TDP", "arcs-online"): SweepCell(0.8, None),
                ("TDP", "arcs-offline"): SweepCell(0.7, 0.6),
            },
            results={},
        )
        metrics = sweep_metrics(sweep)
        # default never gated; energy omitted when unmetered
        assert set(metrics) == {
            "time_norm[TDP/arcs-online]",
            "time_norm[TDP/arcs-offline]",
            "energy_norm[TDP/arcs-offline]",
        }
        assert all(m["direction"] == "lower" for m in metrics.values())

    def test_feature_metrics(self):
        comparison = FeatureComparison(
            app_label="sp.B",
            regions=("x_solve",),
            offline_normalized={"x_solve": {f: 0.5 for f in FEATURES}},
            offline_configs={},
        )
        metrics = feature_metrics(comparison)
        assert len(metrics) == len(FEATURES)
        assert metrics[f"x_solve[{FEATURES[0]}]"]["value"] == 0.5


class TestIO:
    def test_write_and_load_round_trip(self, tmp_path):
        payload = bench_payload("speed", {"t": 1.0}, machine="crill")
        path = write_bench_json(tmp_path, payload)
        assert path == bench_path(tmp_path, "speed")
        assert path.name == "BENCH_speed.json"
        assert load_bench_json(path) == payload

    def test_write_is_deterministic(self, tmp_path):
        payload = bench_payload("b", {"z": 1.0, "a": 2.0})
        first = write_bench_json(tmp_path, payload).read_bytes()
        second = write_bench_json(tmp_path, payload).read_bytes()
        assert first == second

    def test_write_requires_name(self, tmp_path):
        with pytest.raises(BenchFormatError, match="name"):
            write_bench_json(tmp_path, {"metrics": {}})

    def test_load_rejects_torn_and_mismatched(self, tmp_path):
        torn = tmp_path / "BENCH_torn.json"
        torn.write_text('{"schema": 1, "kind": "ben')
        assert load_bench_json(torn) is None
        wrong = tmp_path / "BENCH_wrong.json"
        wrong.write_text(json.dumps({"schema": 999, "kind": "bench",
                                     "name": "w", "metrics": {}}))
        assert load_bench_json(wrong) is None
        assert load_bench_json(tmp_path / "absent.json") is None

    def test_load_bench_dir(self, tmp_path):
        write_bench_json(tmp_path, bench_payload("a", {"t": 1.0}))
        write_bench_json(tmp_path, bench_payload("b", {"t": 2.0}))
        (tmp_path / "BENCH_bad.json").write_text("not json")
        out = load_bench_dir(tmp_path)
        assert sorted(out) == ["a", "b"]

    def test_load_bench_dir_missing(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bench_dir(tmp_path / "nope")
