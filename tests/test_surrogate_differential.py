"""Differential wall for the surrogate search strategy.

Two byte-identity contracts pin the strategy's result-neutrality:

* with ``top_k = |space|`` the surrogate measures every point in
  row-major order - exactly what :class:`ExhaustiveSearch` does - so
  the whole run result must be byte-identical to ``tuner="exhaustive"``
  (probe *order* is part of measurement semantics: the runtime's noise
  stream is keyed by call index);
* when the fallback contract trips (untrusted fit, damaged corpus,
  non-finite weights), the run must be byte-identical to a plain
  ``tuner="nelder-mead"`` run apart from one strippable, typed
  degradation note.

The fault-site tests parametrize over every ``surrogate.*`` injection
point, in the same style as the ``service.*`` suite: damage degrades
to the Nelder-Mead fallback, never to a crash.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import config_from_point, search_space_for
from repro.experiments.cache import result_to_json
from repro.experiments.runner import (
    ExperimentSetup,
    run_arcs_offline,
    run_strategy,
)
from repro.faults.inject import make_injector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.harmony.engine import make_strategy
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.surrogate.corpus import CorpusStats, TrainingRecord, fold_result
from repro.surrogate.model import fit_surrogate
from repro.surrogate.plan import (
    FALLBACK_NOTE_PREFIX,
    SurrogateTuning,
    strip_surrogate_notes,
)
from repro.workloads.registry import application_by_name

APP = application_by_name("synthetic", "mixed")
SPEC = crill()
SPACE = search_space_for(SPEC)


def offline_setup() -> ExperimentSetup:
    return ExperimentSetup(spec=crill(), cap_w=85.0, repeats=2, seed=3)


@pytest.fixture(scope="module")
def corpus() -> list[TrainingRecord]:
    node = SimulatedNode(SPEC)
    node.set_power_cap(85.0)
    node.settle_after_cap()
    engine = ExecutionEngine(node)
    records = []
    for profile in APP.regions():
        for indices in SPACE.iter_indices():
            config = config_from_point(SPACE.decode(indices))
            records.append(
                TrainingRecord(
                    app=APP.label,
                    machine=SPEC.name,
                    region=profile.name,
                    cap_w=85.0,
                    n_threads=config.n_threads,
                    schedule=config.schedule.value,
                    chunk=config.chunk,
                    time_s=engine._simulate(profile, config).time_s,
                    energy_j=None,
                    source="cache",
                    provenance="test_surrogate_differential",
                )
            )
    return records


@pytest.fixture(scope="module")
def model(corpus):
    fitted = fit_surrogate(corpus, seed=3)
    assert fitted.usable
    return fitted


def dumps(result) -> str:
    return json.dumps(result_to_json(result), sort_keys=True)


def dumps_without_surrogate_notes(result) -> str:
    blob = result_to_json(result)
    blob["degradations"] = list(
        strip_surrogate_notes(blob["degradations"])
    )
    return json.dumps(blob, sort_keys=True)


class TestByteIdentity:
    def test_full_space_surrogate_equals_exhaustive(self, model):
        # trust is forced (the differential is about the measurement
        # path, not the fit quality); k = |space| makes the selected
        # subset the whole row-major walk
        tuning = SurrogateTuning(
            model=model, top_k=SPACE.size, max_fit_error=1.0e9
        )
        surrogate = run_arcs_offline(
            APP, offline_setup(), tuner="surrogate", surrogate=tuning
        )
        exhaustive = run_arcs_offline(
            APP, offline_setup(), tuner="exhaustive"
        )
        assert dumps(surrogate) == dumps(exhaustive)
        # the trusted path records no surrogate degradation notes
        assert not [
            d
            for d in surrogate.degradations
            if d.startswith(FALLBACK_NOTE_PREFIX)
        ]

    def test_fallback_equals_plain_nelder_mead(self, model):
        # max_fit_error=0 distrusts any positive held-out error, so
        # the surrogate run takes the Nelder-Mead path end to end
        tuning = SurrogateTuning(
            model=model, top_k=12, max_fit_error=0.0
        )
        fallback = run_arcs_offline(
            APP, offline_setup(), tuner="surrogate", surrogate=tuning
        )
        nelder_mead = run_arcs_offline(
            APP, offline_setup(), tuner="nelder-mead"
        )
        assert dumps_without_surrogate_notes(fallback) == dumps(
            nelder_mead
        )
        notes = [
            d
            for d in fallback.degradations
            if d.startswith(FALLBACK_NOTE_PREFIX)
        ]
        assert len(notes) == 1
        assert "exceeds the trust threshold" in notes[0]
        assert "fell back to nelder-mead" in notes[0]

    def test_small_top_k_spends_fewer_probes_same_strategy_label(
        self, model
    ):
        tuning = SurrogateTuning(
            model=model, top_k=4, max_fit_error=1.0e9
        )
        result = run_arcs_offline(
            APP, offline_setup(), tuner="surrogate", surrogate=tuning
        )
        # the label stays "arcs-offline" for every tuner mode: results
        # stay comparable across the analysis pipeline
        assert result.strategy == "arcs-offline"
        assert result.tuning_runs >= 1


class TestFaultSitesDegradeToFallback:
    """Every ``surrogate.*`` fault ends in the Nelder-Mead fallback
    with a typed note - never a crash, never a silently wrong model."""

    @pytest.mark.parametrize(
        "site, action",
        [
            ("surrogate.corpus", "torn"),
            ("surrogate.corpus", "corrupt"),
            ("surrogate.fit", "nonfinite"),
        ],
    )
    def test_fault_degrades_to_nelder_mead(
        self, corpus, offline_faulted_model_cache, site, action
    ):
        faulted = offline_faulted_model_cache(site, action)
        assert not faulted.usable
        tuning = SurrogateTuning(model=faulted)
        result = run_arcs_offline(
            APP, offline_setup(), tuner="surrogate", surrogate=tuning
        )
        baseline = run_arcs_offline(
            APP, offline_setup(), tuner="nelder-mead"
        )
        assert dumps_without_surrogate_notes(result) == dumps(baseline)
        notes = [
            d
            for d in result.degradations
            if d.startswith(FALLBACK_NOTE_PREFIX)
        ]
        assert len(notes) == 1
        assert "model unusable" in notes[0]
        assert "fell back to nelder-mead" in notes[0]

    @pytest.fixture(scope="class")
    def offline_faulted_model_cache(self, corpus):
        source_result = run_arcs_offline(APP, offline_setup())

        def build(site: str, action: str):
            plan = FaultPlan(
                specs=(FaultSpec(site=site, action=action),), seed=5
            )
            injector = make_injector(plan, salt="surrogate-test")
            if site == "surrogate.corpus":
                # the damage lands while folding: every candidate
                # record is skipped, the fit sees an empty corpus
                stats = CorpusStats()
                records = fold_result(
                    source_result,
                    source="cache",
                    provenance="p",
                    stats=stats,
                    faults=injector,
                )
                assert records == []
                model = fit_surrogate(
                    records, seed=3, corpus_stats=stats
                )
                # the fold damage is carried into the fit report
                assert any(action in n for n in model.report.corpus_notes)
                return model
            # surrogate.fit: the solve itself blows up non-finite
            return fit_surrogate(corpus, seed=3, faults=injector)

        return build


class TestStrategyWiring:
    def test_surrogate_strategy_requires_an_order(self):
        with pytest.raises(ValueError, match="precomputed probe order"):
            make_strategy("surrogate", SPACE)

    def test_empty_order_is_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            make_strategy("surrogate", SPACE, order=())

    def test_order_entries_are_validated_against_the_space(self):
        bad = ((999, 999, 999),)
        with pytest.raises(Exception):
            make_strategy("surrogate", SPACE, order=bad)

    def test_runner_requires_tuning_for_surrogate(self):
        with pytest.raises(ValueError, match="SurrogateTuning"):
            run_arcs_offline(APP, offline_setup(), tuner="surrogate")

    def test_unknown_tuner_is_rejected(self):
        with pytest.raises(ValueError, match="unknown offline tuner"):
            run_arcs_offline(APP, offline_setup(), tuner="simulated")

    def test_run_strategy_surrogate_key(self, model):
        tuning = SurrogateTuning(
            model=model, top_k=SPACE.size, max_fit_error=1.0e9
        )
        via_key = run_strategy(
            "surrogate", APP, offline_setup(), surrogate=tuning
        )
        direct = run_arcs_offline(
            APP, offline_setup(), tuner="surrogate", surrogate=tuning
        )
        assert dumps(via_key) == dumps(direct)
