"""End-to-end determinism: identical seeds must reproduce entire
experiments bit-for-bit - the property every other test relies on."""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    ExperimentSetup,
    run_arcs_offline,
    run_arcs_online,
    run_default,
)
from repro.machine.spec import crill
from repro.workloads.synthetic import synthetic_application


@pytest.fixture
def app():
    return synthetic_application(timesteps=5, include_tiny=False)


def setup(seed):
    return ExperimentSetup(
        spec=crill(), cap_w=85.0, repeats=2, seed=seed,
        noise_sigma=0.01,
    )


class TestExperimentDeterminism:
    def test_default_reproducible(self, app):
        a = run_default(app, setup(3))
        b = run_default(app, setup(3))
        assert a.time_s == b.time_s
        assert a.energy_j == b.energy_j

    def test_default_seed_sensitivity(self, app):
        a = run_default(app, setup(3))
        b = run_default(app, setup(4))
        assert a.time_s != b.time_s

    def test_online_reproducible_incl_choices(self, app):
        a = run_arcs_online(app, setup(3))
        b = run_arcs_online(app, setup(3))
        assert a.time_s == b.time_s
        assert a.chosen_configs == b.chosen_configs
        assert a.overhead == b.overhead

    def test_offline_reproducible(self, app):
        a = run_arcs_offline(app, setup(3))
        b = run_arcs_offline(app, setup(3))
        assert a.time_s == b.time_s
        assert a.chosen_configs == b.chosen_configs

    def test_repeat_runs_differ_within_experiment(self, app):
        """The three repeats see different noise streams."""
        result = run_default(app, setup(3))
        times = [r.time_s for r in result.runs]
        assert len(set(times)) == len(times)
