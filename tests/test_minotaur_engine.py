"""Engine behaviour on the POWER8 machine (Minotaur) - SMT-8, no
capping, 160 hardware threads."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.node import SimulatedNode
from repro.machine.spec import minotaur
from repro.openmp.engine import ExecutionEngine
from repro.openmp.types import OMPConfig, ScheduleKind
from tests.test_openmp_engine import make_region


@pytest.fixture
def engine(minotaur_node):
    return ExecutionEngine(minotaur_node)


class TestMinotaurExecution:
    def test_full_smt8_team(self, engine):
        rec = engine.execute(make_region(iterations=2000), OMPConfig(160))
        assert rec.time_s > 0
        assert len(rec.thread_busy_s) == 160

    def test_team_larger_than_trip_count(self, engine):
        """160 threads on a 100-iteration loop: most threads idle at
        the barrier (the SP-on-Minotaur default pathology)."""
        rec = engine.execute(
            make_region(iterations=100),
            OMPConfig(160, ScheduleKind.STATIC, None),
        )
        idle = sum(1 for t in rec.thread_busy_s if t == 0.0)
        assert idle == 60
        assert rec.barrier_fraction > 0.25

    def test_oversized_team_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.execute(make_region(), OMPConfig(161))

    def test_high_thread_count_jitter_creates_imbalance(self, engine):
        """Section V-C: 160 threads 'causes a bit more load imbalance
        in larger regions' - dynamic scheduling absorbs it."""
        region = make_region(name="big", iterations=20_000, cpu_ns=5e4)
        static = engine.execute(
            region, OMPConfig(160, ScheduleKind.STATIC, None)
        )
        dynamic = engine.execute(
            region, OMPConfig(160, ScheduleKind.DYNAMIC, 32)
        )
        assert static.barrier_fraction > 0.03
        assert dynamic.barrier_fraction < static.barrier_fraction

    def test_base_frequency_without_caps(self, engine):
        rec = engine.execute(make_region(), OMPConfig(160))
        assert all(
            f <= minotaur().turbo_freq_ghz for f in rec.frequencies_ghz
        )

    def test_energy_still_modelled_internally(self, engine):
        """The machine has no *counters*, but the physics still runs -
        records carry energy even though RAPL reads are forbidden."""
        rec = engine.execute(make_region(), OMPConfig(40))
        assert rec.energy_j > 0
        with pytest.raises(PermissionError):
            engine.node.read_package_energy_j()

    def test_smt_progression(self, engine):
        """20 -> 160 threads: time falls but with diminishing returns
        (SMT-8 throughput table)."""
        region = make_region(
            name="smt", iterations=32_000, cpu_ns=1e5, bytes_per_iter=64.0
        )
        t20 = engine.execute(region, OMPConfig(20)).time_s
        t40 = engine.execute(region, OMPConfig(40)).time_s
        t160 = engine.execute(region, OMPConfig(160)).time_s
        assert t160 < t40 < t20
        # speedup 20->40 exceeds 40->160 per doubling (diminishing)
        assert (t20 / t40) > (t40 / t160) ** (1 / 2)


@settings(max_examples=15, deadline=None)
@given(
    n_threads=st.sampled_from([10, 20, 40, 80, 120, 160]),
    schedule=st.sampled_from(list(ScheduleKind)),
)
def test_minotaur_records_valid(n_threads, schedule):
    engine = ExecutionEngine(SimulatedNode(minotaur()))
    rec = engine.execute(
        make_region(iterations=5000), OMPConfig(n_threads, schedule, 8)
    )
    assert rec.time_s > 0
    assert rec.energy_j > 0
    assert 0 <= rec.l3_miss_rate <= 1
