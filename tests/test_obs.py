"""Tests for the observability read-side: streaming aggregation, the
SLO rule engine, the monitor dashboard, the sampling profiler, and
the service_hit_rate / bench_trend figures."""

from __future__ import annotations

import json

import pytest

from repro.analysis.records import (
    bench_trend_records,
    service_hit_rate_records,
)
from repro.cli import main
from repro.obs.aggregate import StreamAggregator, TailReader
from repro.obs.monitor import monitor_follow, monitor_once
from repro.obs.profile import profile_dir, render_profile
from repro.obs.slo import (
    Alert,
    SloConfigError,
    alerts,
    evaluate_rules,
    load_rules,
)
from repro.telemetry import (
    JsonlSink,
    TelemetryBus,
    install,
    read_jsonl,
)

SLO_EXAMPLE = "examples/slo.json"


def event(name, ts=0.0, seq=0, **attrs):
    return {
        "type": "event", "name": name, "ts": ts, "seq": seq,
        "attrs": attrs,
    }


def span(name, ts=0.0, dur=1.0, seq=0, **attrs):
    return {
        "type": "span", "name": name, "ts": ts, "dur": dur,
        "seq": seq, "attrs": attrs,
    }


def counter(name, value):
    return {
        "type": "metric", "kind": "counter", "name": name,
        "value": value,
    }


class TestStreamAggregator:
    def test_counters_merge_metrics_and_events(self):
        agg = StreamAggregator()
        agg.consume("a", counter("service.fallbacks", 3.0))
        agg.consume("b", counter("service.fallbacks", 2.0))
        agg.consume("a", event("config_source.miss"))
        assert agg.counter_total("service.fallbacks") == 5.0
        assert agg.counter_total("events.config_source.miss") == 1.0

    def test_value_events_feed_sample_series(self):
        agg = StreamAggregator()
        for step, value in enumerate((90.0, 95.0, 110.0)):
            agg.consume(
                "f", event("fleet.budget_w", ts=float(step),
                           step=step, value=value)
            )
        hist = agg.samples["fleet.budget_w"]
        assert hist.count == 3
        assert hist.max == 110.0

    def test_bool_value_is_not_a_sample(self):
        agg = StreamAggregator()
        agg.consume("f", event("x", value=True))
        assert "x" not in agg.samples

    def test_spans_feed_layer_windows_and_slowest(self):
        agg = StreamAggregator(top_k=2)
        agg.consume("s", span("run.repeat", ts=0.0, dur=5.0))
        agg.consume("s", span("run.repeat", ts=1.0, dur=9.0))
        agg.consume("s", span("run.repeat", ts=2.0, dur=1.0))
        agg.consume("s", span("service.request", ts=0.5, dur=0.1))
        [run_row] = [
            r for r in agg.layer_summary() if r["layer"] == "run"
        ]
        assert run_row["spans"] == 3
        assert run_row["dur_sum"] == 15.0
        slow = agg.slowest_spans()
        assert [s["dur"] for s in slow] == [9.0, 5.0]

    def test_group_ticks_and_max_gap(self):
        agg = StreamAggregator()
        for step in (0, 1, 5, 6):
            agg.consume(
                "f", event("fleet.heartbeat", ts=float(step),
                           step=step, node="n0")
            )
        assert agg.groups("fleet.heartbeat") == ["n0"]
        assert agg.max_gap("fleet.heartbeat", "n0", "step") == (
            "n0", 4.0
        )
        assert agg.max_gap("fleet.heartbeat", "n0", "ts") == (
            "n0", 4.0
        )
        assert agg.max_gap("fleet.heartbeat", "missing", "step") is None

    def test_histogram_metrics_rehydrate(self):
        agg = StreamAggregator()
        agg.consume("a", {
            "type": "metric", "kind": "histogram", "name": "h",
            "count": 10, "sum": 50.0, "min": 1.0, "max": 9.0,
        })
        hist = agg.samples["h"]
        assert hist.count == 10 and hist.min == 1.0 and hist.max == 9.0

    def test_meta_first_writer_wins(self):
        agg = StreamAggregator()
        agg.consume("s", {"type": "meta", "name": "session.meta",
                          "attrs": {"seed": 0}})
        agg.consume("t", {"type": "meta", "name": "session.meta",
                          "attrs": {"seed": 9, "task": "x"}})
        assert agg.meta == {"seed": 0, "task": "x"}

    def test_aggregation_is_a_pure_fold(self):
        records = [
            counter("c", 1.0),
            event("e", ts=0.1, value=2.0),
            span("s.x", ts=0.2, dur=3.0),
        ]
        a, b = StreamAggregator(), StreamAggregator()
        for agg in (a, b):
            for record in records:
                agg.consume("f", record)
        assert a.counters == b.counters
        assert a.layer_summary() == b.layer_summary()


class TestTailReader:
    def test_only_complete_lines_are_returned(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1}\n{"b": 2')
        reader = TailReader(tmp_path)
        got = reader.poll()
        assert got == [("t", {"a": 1})]
        # completing the torn line surfaces it on the next poll
        with open(path, "a") as fh:
            fh.write("}\n")
        assert reader.poll() == [("t", {"b": 2})]
        assert reader.poll() == []

    def test_new_files_are_picked_up(self, tmp_path):
        reader = TailReader(tmp_path)
        assert reader.poll() == []
        (tmp_path / "late.jsonl").write_text('{"x": 1}\n')
        assert reader.poll() == [("late", {"x": 1})]


class TestSloEngine:
    def _agg(self, **counters):
        agg = StreamAggregator()
        for name, value in counters.items():
            agg.consume("t", counter(name.replace("__", "."), value))
        return agg

    def test_example_rules_load(self):
        rules = load_rules(SLO_EXAMPLE)
        assert {r["kind"] for r in rules} >= {
            "ratio_ceiling", "counter_ceiling", "ratio_floor",
            "sample_ceiling", "event_gap_ceiling",
        }

    def test_malformed_files_raise(self, tmp_path):
        bad = tmp_path / "bad.json"
        for payload in (
            "not json",
            json.dumps({"schema": 99, "rules": []}),
            json.dumps({"schema": 1, "rules": []}),
            json.dumps({"schema": 1, "rules": [{"name": "x",
                                                "kind": "nope"}]}),
            json.dumps({"schema": 1, "rules": [
                {"name": "x", "kind": "counter_ceiling", "max": 1},
                {"name": "x", "kind": "counter_ceiling", "max": 1},
            ]}),
        ):
            bad.write_text(payload)
            with pytest.raises(SloConfigError):
                load_rules(bad)

    def test_counter_ceiling_fires(self):
        agg = self._agg(service__breaker_opens=2.0)
        rules = [{"name": "breaker", "kind": "counter_ceiling",
                  "counter": "service.breaker_opens", "max": 0}]
        [outcome] = evaluate_rules(agg, rules)
        assert outcome.status == "alert"
        assert outcome.alert.kind == "counter_ceiling"
        assert outcome.alert.value == 2.0

    def test_ratio_rules_and_zero_denominator(self):
        rules = [{
            "name": "err", "kind": "ratio_ceiling",
            "numerator": ["service.fallbacks"],
            "denominator": ["service.client.*"],
            "max": 0.1,
        }]
        [na] = evaluate_rules(self._agg(), rules)
        assert na.status == "n/a"
        agg = self._agg(
            service__fallbacks=5.0, service__client__get=10.0
        )
        [fired] = evaluate_rules(agg, rules)
        assert fired.status == "alert"
        assert fired.alert.value == 0.5

    def test_sample_rule_with_meta_threshold(self):
        agg = StreamAggregator()
        agg.consume("f", {"type": "meta", "name": "session.meta",
                          "attrs": {"global_cap_w": 100.0}})
        agg.consume("f", event("fleet.budget_w", value=120.0))
        rules = [{
            "name": "overshoot", "kind": "sample_ceiling",
            "sample": "fleet.budget_w", "stat": "max",
            "max_from_meta": "global_cap_w",
        }]
        [fired] = evaluate_rules(agg, rules)
        assert fired.status == "alert"
        assert fired.alert.threshold == 100.0
        # absent meta key: skipped, not crashed
        [na] = evaluate_rules(StreamAggregator(), rules)
        assert na.status == "n/a"

    def test_event_gap_rule(self):
        agg = StreamAggregator()
        for step in (0, 1, 9):
            agg.consume("f", event("fleet.heartbeat", ts=float(step),
                                   step=step, node="n1"))
        rules = [{
            "name": "stale", "kind": "event_gap_ceiling",
            "event": "fleet.heartbeat", "group_by": "node",
            "over": "step", "max_gap": 3,
        }]
        [fired] = evaluate_rules(agg, rules)
        assert fired.status == "alert"
        assert fired.alert.value == 8.0

    def test_alerts_are_emitted_as_typed_events(self, tmp_path):
        tb = TelemetryBus(enabled=True)
        tb.add_sink(JsonlSink(tmp_path / "obs.jsonl"))
        previous = install(tb)
        try:
            agg = self._agg(service__breaker_opens=1.0)
            rules = [{"name": "breaker", "kind": "counter_ceiling",
                      "counter": "service.breaker_opens", "max": 0}]
            outcomes = evaluate_rules(agg, rules)
        finally:
            install(previous)
            tb.close()
        assert len(alerts(outcomes)) == 1
        records = read_jsonl(tmp_path / "obs.jsonl")
        [alert_event] = [
            r for r in records if r.get("name") == "obs.alert"
        ]
        assert alert_event["attrs"]["rule"] == "breaker"
        assert alert_event["attrs"]["kind"] == "counter_ceiling"


def _write_telemetry(directory, records):
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "telemetry.jsonl"
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return directory


class TestMonitor:
    def _dir(self, tmp_path):
        return _write_telemetry(tmp_path / "tel", [
            {"type": "meta", "name": "session.meta",
             "attrs": {"command": "run", "seed": 0}},
            span("run.repeat", ts=0.0, dur=2.0, seq=1),
            event("policy.apply", ts=0.5, seq=2, region="r0"),
            counter("service.breaker_opens", 1.0),
        ])

    def test_monitor_once_clean_exit_zero(self, tmp_path):
        directory = self._dir(tmp_path)
        text, code = monitor_once(directory)
        assert code == 0
        assert "layer health" in text
        assert "run" in text

    def test_monitor_once_with_slo_exit_one(self, tmp_path):
        directory = self._dir(tmp_path)
        slo = tmp_path / "slo.json"
        slo.write_text(json.dumps({"schema": 1, "rules": [
            {"name": "breaker", "kind": "counter_ceiling",
             "counter": "service.breaker_opens", "max": 0},
        ]}))
        text, code = monitor_once(directory, slo)
        assert code == 1
        assert "ACTIVE ALERTS" in text
        assert "breaker" in text

    def test_monitor_follow_sees_appended_records(self, tmp_path):
        directory = self._dir(tmp_path)
        renders = []
        polls = {"n": 0}

        def fake_sleep(_):
            # append a new record between polls, like a live run
            polls["n"] += 1
            with open(directory / "telemetry.jsonl", "a") as fh:
                fh.write(json.dumps(
                    span("run.repeat", ts=3.0 + polls["n"], dur=1.0,
                         seq=10 + polls["n"])
                ) + "\n")

        code = monitor_follow(
            directory, max_polls=3, emit=renders.append,
            sleep=fake_sleep,
        )
        assert code == 0
        assert len(renders) == 3
        assert "poll 3" in renders[-1]

    def test_monitor_cli(self, tmp_path, capsys):
        directory = self._dir(tmp_path)
        code = main(["monitor", str(directory)])
        assert code == 0
        assert "layer health" in capsys.readouterr().out

    def test_monitor_cli_missing_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["monitor", str(tmp_path / "nope")])


class TestProfiler:
    def test_containment_fallback_builds_paths(self, tmp_path):
        directory = _write_telemetry(tmp_path / "tel", [
            span("outer", ts=0.0, dur=1.0, seq=1),
            span("outer.inner", ts=0.2, dur=0.6, seq=2),
        ])
        rows = profile_dir(directory, interval_s=0.05)
        paths = {r["path"]: r["samples"] for r in rows}
        assert "outer > outer.inner" in paths
        assert "outer" in paths
        total = sum(paths.values())
        assert total == pytest.approx(20, abs=2)

    def test_trace_ancestry_wins_over_containment(self, tmp_path):
        trace = {"trace_id": "t" * 32}
        directory = _write_telemetry(tmp_path / "tel", [
            dict(span("parent", ts=0.0, dur=1.0, seq=1),
                 trace={**trace, "span_id": "p" * 16,
                        "parent_id": None}),
            dict(span("child", ts=0.1, dur=0.5, seq=2),
                 trace={**trace, "span_id": "c" * 16,
                        "parent_id": "p" * 16}),
        ])
        rows = profile_dir(directory, interval_s=0.05)
        assert any(r["path"] == "parent > child" for r in rows)

    def test_profile_is_deterministic(self, tmp_path):
        directory = _write_telemetry(tmp_path / "tel", [
            span("a", ts=0.0, dur=2.0, seq=1),
            span("a.b", ts=0.5, dur=1.0, seq=2),
        ])
        assert profile_dir(directory) == profile_dir(directory)
        text = render_profile(directory)
        assert "hot path" in text

    def test_profile_cli(self, tmp_path, capsys):
        directory = _write_telemetry(tmp_path / "tel", [
            span("a", ts=0.0, dur=1.0, seq=1),
        ])
        assert main(["profile", str(directory)]) == 0
        assert "sampling profile" in capsys.readouterr().out


class TestServiceHitRateRecords:
    def test_rows_from_counters_and_stats(self):
        stats = {
            "stats": {
                "hits": 5, "misses": 3,
                "per_shard": [
                    {"shard": 0, "entries": 2, "hits": 4, "misses": 1},
                    {"shard": 1, "entries": 0, "hits": 0, "misses": 0},
                    {"shard": 2, "entries": 1, "hits": 1, "misses": 2},
                ],
            },
        }
        counters = {
            "config_source.hits.service": 2.0,
            "config_source.hits.memo": 1.0,
            "config_source.misses": 1.0,
        }
        rows = service_hit_rate_records(
            stats, counters, ("service", "memo")
        )
        by_key = {(r["scope"], r["name"]): r for r in rows}
        assert by_key[("tier", "service")]["hits"] == 2
        assert by_key[("tier", "service")]["requests"] == 4
        assert by_key[("chain", "all")]["hit_rate"] == 0.75
        assert ("shard", "shard01") not in by_key  # zero traffic
        assert by_key[("shard", "shard00")]["hit_rate"] == 0.8
        assert by_key[("store", "total")]["requests"] == 8

    def test_zero_traffic_rates_are_none(self):
        rows = service_hit_rate_records({}, {}, ("service",))
        by_key = {(r["scope"], r["name"]): r for r in rows}
        assert by_key[("tier", "service")]["hit_rate"] is None
        assert by_key[("store", "total")]["hit_rate"] is None

    def test_figure_matches_committed_golden(self):
        """The live-daemon measurement regenerates the committed
        results/ text byte-identically (fixed keys, seeds, shards)."""
        from pathlib import Path

        from repro.analysis.registry import generate_figure

        committed = (
            Path(__file__).resolve().parent.parent
            / "results" / "service_hit_rate.txt"
        )
        if not committed.exists():
            pytest.skip("no committed results file")
        artifact = generate_figure("service_hit_rate")
        assert artifact.text + "\n" == committed.read_text()


class TestBenchTrend:
    def _history(self, tmp_path):
        from repro.analysis.bench import bench_payload, write_bench_json

        root = tmp_path / "history"
        for commit, value in (("001-old", 10.0), ("002-new", 12.0)):
            sub = root / commit
            sub.mkdir(parents=True)
            write_bench_json(sub, bench_payload("demo", {
                "time_s": {"value": value, "direction": "lower"},
            }))
        return root

    def test_trend_rows_ordered_by_history(self, tmp_path):
        rows = bench_trend_records(self._history(tmp_path))
        assert [r["commit"] for r in rows] == ["001-old", "002-new"]
        assert rows[0]["rel_change_vs_first"] == 0.0
        assert rows[1]["rel_change_vs_first"] == pytest.approx(0.2)

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            bench_trend_records(tmp_path / "nope")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError):
            bench_trend_records(empty)

    def test_figure_requires_bench_dir(self):
        from repro.analysis.registry import GenOptions, generate_figure

        with pytest.raises(ValueError, match="bench-dir"):
            generate_figure("bench_trend", GenOptions())

    def test_figure_via_cli(self, tmp_path, capsys):
        history = self._history(tmp_path)
        out = tmp_path / "out"
        code = main([
            "figures", "bench_trend",
            "--bench-dir", str(history), "--out", str(out),
        ])
        assert code == 0
        assert (out / "bench_trend.txt").exists()
        payload = json.loads((out / "bench_trend.json").read_text())
        assert payload["records"][0]["bench"] == "demo"

    def test_external_cost_excluded_from_default_all(self):
        from repro.analysis.registry import REGISTRY, generate_figures

        # resolving the default name set must not pull in bench_trend
        # (it would raise for want of --bench-dir); spot-check the
        # filter directly instead of generating everything.
        assert REGISTRY["bench_trend"].cost == "external"


class TestAlertsOnFaultedFleet:
    def test_chaos_fleet_trips_example_slos(self, tmp_path, capsys):
        """The CI obs-gate contract: a fault-armed fleet run produces
        telemetry that trips typed alerts under examples/slo.json."""
        plan = {
            "seed": 11,
            "faults": [
                {"site": "fleet.node", "action": "crash",
                 "start": 2, "max_fires": 1},
                {"site": "fleet.telemetry", "action": "partition",
                 "start": 4, "max_fires": 2},
                {"site": "fleet.cap_write", "action": "reject",
                 "probability": 0.5},
                {"site": "fleet.membership", "action": "flap",
                 "start": 6, "max_fires": 1},
            ],
        }
        faults = tmp_path / "faults.json"
        faults.write_text(json.dumps(plan))
        tel = tmp_path / "tel"
        assert main([
            "fleet", "run", "--nodes", "4", "--max-steps", "30",
            "--faults", str(faults), "--telemetry", str(tel),
        ]) == 0
        text, code = monitor_once(tel, SLO_EXAMPLE)
        assert code == 1
        assert "ACTIVE ALERTS" in text
        # at least one fleet-scoped rule fired with its typed kind
        assert (
            "fleet-degradation-rate" in text
            or "fleet-heartbeat-staleness" in text
            or "fleet-budget-overshoot" in text
        )

    def test_clean_fleet_passes_example_slos(self, tmp_path, capsys):
        tel = tmp_path / "tel"
        assert main([
            "fleet", "run", "--nodes", "3", "--max-steps", "20",
            "--telemetry", str(tel),
        ]) == 0
        text, code = monitor_once(tel, SLO_EXAMPLE)
        assert code == 0, text
