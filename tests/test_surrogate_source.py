"""Cold-start tier: model predictions served through the config-source
chain - and the guarantees that keep them honest.

Predictions are derived knowledge, not measurements, so the tier must
(a) only serve when the fit is trusted, (b) mark every hit as a
degradation (the run's configs are unvalidated), and (c) never promote
its entries into the service / memo / history tiers - a prediction
that re-entered a measured-knowledge tier would masquerade as a
measurement forever after.
"""

from __future__ import annotations

import pytest

from repro.core.config import config_from_point, search_space_for
from repro.experiments.runner import ExperimentSetup, run_arcs_offline
from repro.machine.node import SimulatedNode
from repro.machine.spec import crill
from repro.openmp.engine import ExecutionEngine
from repro.service import source as source_mod
from repro.service.source import ConfigKey, config_key, default_chain
from repro.surrogate.corpus import TrainingRecord
from repro.surrogate.model import fit_surrogate
from repro.surrogate.plan import SurrogateTuning
from repro.surrogate.source import (
    SurrogateColdStartSource,
    _parse_experiment,
)
from repro.workloads.registry import application_by_name

APP = application_by_name("synthetic", "mixed")
SPEC = crill()
SPACE = search_space_for(SPEC)


@pytest.fixture(autouse=True)
def clean_process_memo():
    source_mod._PROCESS_MEMO.clear()
    yield
    source_mod._PROCESS_MEMO.clear()


def offline_setup() -> ExperimentSetup:
    return ExperimentSetup(spec=crill(), cap_w=85.0, repeats=2, seed=3)


@pytest.fixture(scope="module")
def trusted_tuning() -> SurrogateTuning:
    node = SimulatedNode(SPEC)
    node.set_power_cap(85.0)
    node.settle_after_cap()
    engine = ExecutionEngine(node)
    records = []
    for profile in APP.regions():
        for indices in SPACE.iter_indices():
            config = config_from_point(SPACE.decode(indices))
            records.append(
                TrainingRecord(
                    app=APP.label,
                    machine=SPEC.name,
                    region=profile.name,
                    cap_w=85.0,
                    n_threads=config.n_threads,
                    schedule=config.schedule.value,
                    chunk=config.chunk,
                    time_s=engine._simulate(profile, config).time_s,
                    energy_j=None,
                    source="cache",
                    provenance="test_surrogate_source",
                )
            )
    model = fit_surrogate(records, seed=3)
    assert model.usable
    # trust is forced: these tests are about chain semantics, not
    # whether the synthetic app's fit clears the default threshold
    return SurrogateTuning(model=model, max_fit_error=1.0e9)


class TestParseExperiment:
    def test_tdp_cap(self):
        assert _parse_experiment("sp|crill|tdp|B") == (
            "sp",
            "crill",
            None,
            "B",
        )

    def test_watt_cap(self):
        assert _parse_experiment("sp|crill|85W|B") == (
            "sp",
            "crill",
            85.0,
            "B",
        )

    @pytest.mark.parametrize(
        "key",
        ["", "a|b|c", "a|b|c|d|e", "sp|crill|85|B", "sp|crill|xW|B"],
    )
    def test_malformed_keys(self, key):
        assert _parse_experiment(key) is None


class TestLookup:
    def test_hit_serves_predictions_with_no_values(
        self, trusted_tuning
    ):
        source = SurrogateColdStartSource(trusted_tuning)
        entry = source.lookup(config_key(APP, offline_setup()))
        assert entry is not None
        configs, values = entry
        assert set(configs) == {p.name for p in APP.regions()}
        assert all(v is None for v in values.values())
        assert source.hits == 1
        notes = source.drain_notes()
        assert any("unvalidated cold start" in n for n in notes)

    def test_untrusted_model_misses_with_note(self, trusted_tuning):
        distrusting = SurrogateTuning(
            model=trusted_tuning.model, max_fit_error=0.0
        )
        source = SurrogateColdStartSource(distrusting)
        assert source.lookup(config_key(APP, offline_setup())) is None
        assert source.hits == 0
        assert any(
            "model not trusted" in n for n in source.drain_notes()
        )

    def test_missing_model_file_misses_with_note(self, tmp_path):
        tuning = SurrogateTuning.load(tmp_path / "missing.json")
        source = SurrogateColdStartSource(tuning)
        assert source.lookup(config_key(APP, offline_setup())) is None
        assert any(
            "model not trusted" in n for n in source.drain_notes()
        )

    def test_malformed_experiment_key_misses(self, trusted_tuning):
        source = SurrogateColdStartSource(trusted_tuning)
        key = ConfigKey(experiment="not-an-experiment", digest="d")
        assert source.lookup(key) is None
        assert any(
            "unrecognized experiment key" in n
            for n in source.drain_notes()
        )

    def test_unknown_app_misses(self, trusted_tuning):
        source = SurrogateColdStartSource(trusted_tuning)
        key = ConfigKey(
            experiment="no_such_app|crill|85W|x", digest="d"
        )
        assert source.lookup(key) is None
        assert any(
            "cannot resolve" in n for n in source.drain_notes()
        )


class TestChainIntegration:
    def test_cold_start_hit_skips_tuning_with_degradation(
        self, trusted_tuning
    ):
        source = SurrogateColdStartSource(trusted_tuning)
        chain = default_chain(memo={}, surrogate=source)
        result = run_arcs_offline(APP, offline_setup(), source=chain)
        assert result.tuning_runs == 0
        assert source.hits == 1
        notes = [
            d
            for d in result.degradations
            if d.startswith("config source surrogate")
        ]
        assert notes and "unvalidated cold start" in notes[0]

    def test_predictions_are_never_promoted_upward(
        self, trusted_tuning
    ):
        source = SurrogateColdStartSource(trusted_tuning)
        memo: dict[str, dict] = {}
        chain = default_chain(memo=memo, surrogate=source)
        run_arcs_offline(APP, offline_setup(), source=chain)
        # promote=False: the memo tier above must NOT have been warmed
        assert memo == {}
        # a second run over the same memo still resolves through the
        # surrogate tier, not a promoted copy
        source2 = SurrogateColdStartSource(trusted_tuning)
        chain2 = default_chain(memo=memo, surrogate=source2)
        again = run_arcs_offline(APP, offline_setup(), source=chain2)
        assert again.tuning_runs == 0
        assert source2.hits == 1
        assert memo == {}

    def test_measured_tiers_win_over_predictions(self, trusted_tuning):
        # a run WITHOUT the surrogate tier publishes measured tuning
        # into the memo; the next chain must serve that, not predict
        memo: dict[str, dict] = {}
        baseline = run_arcs_offline(
            APP, offline_setup(), source=default_chain(memo=memo)
        )
        assert baseline.tuning_runs >= 1
        assert memo  # measured knowledge was published
        source = SurrogateColdStartSource(trusted_tuning)
        chain = default_chain(memo=memo, surrogate=source)
        result = run_arcs_offline(APP, offline_setup(), source=chain)
        assert result.tuning_runs == 0
        assert source.hits == 0  # the memo answered first
