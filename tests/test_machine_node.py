"""Tests for the SimulatedNode facade."""

from __future__ import annotations

import pytest

from repro.machine.node import SimulatedNode
from repro.machine.spec import crill, minotaur


class TestClock:
    def test_starts_at_zero(self, crill_node):
        assert crill_node.now_s == 0.0

    def test_advance(self, crill_node):
        crill_node.advance(1.5)
        crill_node.advance(0.5)
        assert crill_node.now_s == pytest.approx(2.0)

    def test_negative_advance_rejected(self, crill_node):
        with pytest.raises(ValueError):
            crill_node.advance(-0.1)


class TestPowerControl:
    def test_cap_applies_after_settle(self, crill_node):
        crill_node.set_power_cap(70.0)
        assert crill_node.effective_cap_w() is None
        crill_node.settle_after_cap()
        assert crill_node.effective_cap_w() == 70.0

    def test_frequency_for_team_respects_cap(self, crill_node):
        placement = crill_node.topology.place(32)
        f_before = crill_node.frequency_for_team(placement)
        crill_node.set_power_cap(55.0)
        crill_node.settle_after_cap()
        f_after = crill_node.frequency_for_team(placement)
        assert all(a < b for a, b in zip(f_after, f_before))

    def test_minotaur_rejects_cap(self, minotaur_node):
        with pytest.raises(PermissionError):
            minotaur_node.set_power_cap(100.0)

    def test_power_view_snapshot(self, crill_node):
        view = crill_node.power_view(8)
        assert view.caps_w == (None, None)
        assert len(view.frequencies_ghz) == 2


class TestEnergyAccounting:
    def test_deposits_accumulate(self, crill_node):
        crill_node.advance(0.01)
        crill_node.deposit_energy(0, 3.0)
        crill_node.deposit_energy(1, 2.0)
        assert crill_node.read_package_energy_j() == pytest.approx(
            5.0, abs=0.01
        )

    def test_reset_clears_everything(self, crill_node):
        crill_node.advance(1.0)
        crill_node.deposit_energy(0, 5.0)
        crill_node.set_power_cap(55.0)
        crill_node.reset()
        assert crill_node.now_s == 0.0
        assert crill_node.read_package_energy_j() == 0.0
        assert crill_node.effective_cap_w() is None


class TestModelWiring:
    def test_machine_specific_smt_conflicts_wired(self):
        c = SimulatedNode(crill())
        m = SimulatedNode(minotaur())
        assert c.cache.smt_conflict_l1 > m.cache.smt_conflict_l1
