"""Tests for machine specifications."""

from __future__ import annotations

import dataclasses

import pytest

from repro.machine.spec import (
    CacheSpec,
    MachineSpec,
    crill,
    machine_by_name,
    minotaur,
)


class TestCrill:
    def test_paper_topology(self, crill_spec):
        # Section IV-A: 16 cores, 32 hyper-threaded threads
        assert crill_spec.total_cores == 16
        assert crill_spec.total_hw_threads == 32

    def test_paper_tdp(self, crill_spec):
        assert crill_spec.tdp_w == 115.0

    def test_sandy_bridge_frequencies(self, crill_spec):
        assert crill_spec.base_freq_ghz == pytest.approx(2.4)
        assert crill_spec.min_freq_ghz < crill_spec.base_freq_ghz
        assert crill_spec.turbo_freq_ghz > crill_spec.base_freq_ghz

    def test_supports_capping_and_counters(self, crill_spec):
        assert crill_spec.supports_power_cap
        assert crill_spec.supports_energy_counters

    def test_dynamic_coefficient_reproduces_tdp(self, crill_spec):
        # full package at base frequency must draw exactly TDP
        draw = (
            crill_spec.static_power_w
            + crill_spec.cache_power_w
            + crill_spec.cores_per_socket
            * crill_spec.core_dyn_coeff_w_per_ghz3
            * crill_spec.base_freq_ghz**3
        )
        assert draw == pytest.approx(crill_spec.tdp_w)


class TestMinotaur:
    def test_paper_topology(self, minotaur_spec):
        # Section IV-A: two 10-core POWER8, 160 hardware threads
        assert minotaur_spec.total_cores == 20
        assert minotaur_spec.smt_per_core == 8
        assert minotaur_spec.total_hw_threads == 160

    def test_power8_frequency(self, minotaur_spec):
        assert minotaur_spec.base_freq_ghz == pytest.approx(2.92)

    def test_no_capping_privilege(self, minotaur_spec):
        assert not minotaur_spec.supports_power_cap
        assert not minotaur_spec.supports_energy_counters


class TestSmtThroughput:
    def test_single_thread_is_unity(self, crill_spec):
        assert crill_spec.smt_per_thread_throughput(1) == 1.0

    def test_ht_sibling_below_unity(self, crill_spec):
        assert crill_spec.smt_per_thread_throughput(2) < 1.0

    def test_per_thread_decreasing(self, minotaur_spec):
        values = [
            minotaur_spec.smt_per_thread_throughput(s)
            for s in range(1, 9)
        ]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_out_of_range_rejected(self, crill_spec):
        with pytest.raises(ValueError):
            crill_spec.smt_per_thread_throughput(3)
        with pytest.raises(ValueError):
            crill_spec.smt_per_thread_throughput(0)


class TestValidationRules:
    def test_frequency_ordering_enforced(self, crill_spec):
        with pytest.raises(ValueError, match="frequencies"):
            dataclasses.replace(crill_spec, min_freq_ghz=3.0)

    def test_smt_table_arity_enforced(self, crill_spec):
        with pytest.raises(ValueError, match="smt_throughput"):
            dataclasses.replace(crill_spec, smt_throughput=(1.0,))

    def test_smt_table_first_entry_must_be_one(self, crill_spec):
        with pytest.raises(ValueError):
            dataclasses.replace(crill_spec, smt_throughput=(0.9, 1.3))

    def test_smt_table_monotone(self, crill_spec):
        with pytest.raises(ValueError):
            dataclasses.replace(crill_spec, smt_throughput=(1.0, 0.8))

    def test_static_power_below_tdp(self, crill_spec):
        with pytest.raises(ValueError, match="below TDP"):
            dataclasses.replace(crill_spec, static_power_w=200.0)

    def test_cache_spec_validation(self):
        with pytest.raises(ValueError):
            CacheSpec(l1_bytes=0)


class TestRegistry:
    def test_lookup_by_name(self):
        assert machine_by_name("crill").name == "crill"
        assert machine_by_name("MINOTAUR").name == "minotaur"

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            machine_by_name("summit")

    def test_factories_return_fresh_objects(self):
        assert crill() == crill()
        assert minotaur() is not minotaur()
