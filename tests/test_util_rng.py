"""Tests for deterministic RNG derivation."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import derive_seed, rng_for


def test_derive_seed_deterministic():
    assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)


def test_derive_seed_differs_by_key():
    assert derive_seed(42, "a") != derive_seed(42, "b")


def test_derive_seed_differs_by_root():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derive_seed_order_sensitive():
    assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")


def test_derive_seed_in_64_bit_range():
    seed = derive_seed(2**80, "huge")
    assert 0 <= seed < 2**64


def test_rng_for_reproducible_stream():
    a = rng_for(3, "stream").normal(size=8)
    b = rng_for(3, "stream").normal(size=8)
    assert (a == b).all()


def test_rng_for_independent_streams():
    a = rng_for(3, "s1").normal(size=8)
    b = rng_for(3, "s2").normal(size=8)
    assert (a != b).any()


@given(st.integers(min_value=0, max_value=2**64 - 1), st.text(max_size=20))
def test_derive_seed_always_valid(root, key):
    seed = derive_seed(root, key)
    assert 0 <= seed < 2**64


@given(
    st.integers(min_value=0, max_value=1000),
    st.lists(st.integers(), max_size=4),
)
def test_derive_seed_stable_under_repr_keys(root, keys):
    assert derive_seed(root, *keys) == derive_seed(root, *keys)
