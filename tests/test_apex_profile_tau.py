"""Tests for APEX profile statistics and the TAU-style OMPT profiler."""

from __future__ import annotations

import json

import pytest

from repro.apex.profile import ApexProfile, TimerStats
from repro.apex.tau import TauProfiler, TauRegionProfile
from repro.openmp.ompt import DurationPayload, OmptEvent, OmptInterface


# ---------------------------------------------------------------------------
# TimerStats
# ---------------------------------------------------------------------------
class TestTimerStats:
    def test_streaming_statistics(self):
        s = TimerStats(name="t")
        for v in (0.3, 0.1, 0.2):
            s.observe(v)
        assert s.calls == 3
        assert s.total_s == pytest.approx(0.6)
        assert s.min_s == pytest.approx(0.1)
        assert s.max_s == pytest.approx(0.3)
        assert s.last_s == pytest.approx(0.2)
        assert s.mean_s == pytest.approx(0.2)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            TimerStats(name="t").observe(-1e-9)

    def test_zero_calls_mean_is_zero(self):
        assert TimerStats(name="t").mean_s == 0.0

    def test_zero_elapsed_counts(self):
        s = TimerStats(name="t")
        s.observe(0.0)
        assert s.calls == 1
        assert s.min_s == 0.0
        assert s.max_s == 0.0

    # -- the min_s Infinity regression ---------------------------------
    def test_min_s_json_none_for_never_fired_timer(self):
        assert TimerStats(name="t").min_s_json() is None

    def test_min_s_json_passes_through_finite_minimum(self):
        s = TimerStats(name="t")
        s.observe(0.25)
        assert s.min_s_json() == pytest.approx(0.25)

    def test_never_fired_timer_roundtrips_as_strict_json(self):
        """Serializing a zero-call timer the way controller checkpoints
        do must produce strict JSON (``Infinity`` is rejected by
        ``allow_nan=False`` and by any compliant parser) and restore
        back to the ``inf`` sentinel."""
        s = TimerStats(name="t")
        blob = [s.calls, s.total_s, s.min_s_json(), s.max_s, s.last_s]
        text = json.dumps(blob, allow_nan=False)  # raised pre-fix
        calls, total_s, min_s, max_s, last_s = json.loads(text)
        restored = TimerStats(
            name="t",
            calls=int(calls),
            total_s=float(total_s),
            min_s=float("inf") if min_s is None else float(min_s),
            max_s=float(max_s),
            last_s=float(last_s),
        )
        assert restored == s


class TestApexProfile:
    def test_observe_accumulates_per_name(self):
        p = ApexProfile()
        p.observe("a", 0.1)
        p.observe("b", 0.2)
        p.observe("a", 0.3)
        assert p.stats("a").calls == 2
        assert p.stats("b").calls == 1
        assert p.names() == ["a", "b"]

    def test_unknown_timer_raises_keyerror_with_name(self):
        with pytest.raises(KeyError, match="nope"):
            ApexProfile().stats("nope")

    def test_top_by_total_orders_and_truncates(self):
        p = ApexProfile()
        p.observe("small", 0.1)
        p.observe("large", 1.0)
        p.observe("mid", 0.5)
        top2 = p.top_by_total(2)
        assert [s.name for s in top2] == ["large", "mid"]


# ---------------------------------------------------------------------------
# TauRegionProfile fraction math
# ---------------------------------------------------------------------------
class TestTauRegionProfile:
    def test_fractions(self):
        r = TauRegionProfile(
            region_name="r",
            calls=4,
            implicit_task_s=2.0,
            loop_s=1.5,
            barrier_s=0.4,
        )
        assert r.time_per_call_s == pytest.approx(0.5)
        assert r.loop_fraction == pytest.approx(0.75)
        assert r.barrier_fraction == pytest.approx(0.2)

    def test_zero_call_edges(self):
        r = TauRegionProfile(region_name="r")
        assert r.time_per_call_s == 0.0
        assert r.barrier_fraction == 0.0
        assert r.loop_fraction == 0.0

    def test_zero_inclusive_time_guards_division(self):
        # barrier events observed but no implicit-task time yet: the
        # fraction must stay defined (0), not divide by zero
        r = TauRegionProfile(region_name="r", calls=1, barrier_s=0.1)
        assert r.barrier_fraction == 0.0
        assert r.loop_fraction == 0.0


# ---------------------------------------------------------------------------
# TauProfiler event consumption
# ---------------------------------------------------------------------------
class _FakeRuntime:
    """Just enough of OpenMPRuntime for attach/detach: an ``ompt``
    interface the profiler registers against."""

    def __init__(self):
        self.ompt = OmptInterface()


def _duration(region: str, seconds: float) -> DurationPayload:
    return DurationPayload(
        region_name=region, parallel_id=1, duration_s=seconds
    )


class TestTauProfiler:
    def test_accumulates_ompt_events_per_region(self):
        runtime = _FakeRuntime()
        tau = TauProfiler()
        tau.attach(runtime)
        for _ in range(3):
            runtime.ompt.dispatch(
                OmptEvent.IMPLICIT_TASK, _duration("r1", 0.2)
            )
            runtime.ompt.dispatch(
                OmptEvent.WORK_LOOP, _duration("r1", 0.15)
            )
            runtime.ompt.dispatch(
                OmptEvent.SYNC_REGION_BARRIER, _duration("r1", 0.05)
            )
        runtime.ompt.dispatch(
            OmptEvent.IMPLICIT_TASK, _duration("r2", 1.0)
        )
        r1 = tau.regions["r1"]
        assert r1.calls == 3
        assert r1.implicit_task_s == pytest.approx(0.6)
        assert r1.loop_s == pytest.approx(0.45)
        assert r1.barrier_s == pytest.approx(0.15)
        assert r1.barrier_fraction == pytest.approx(0.25)
        assert tau.total_profiled_s() == pytest.approx(1.6)
        assert [r.region_name for r in tau.top_by_inclusive_time(1)] == [
            "r2"
        ]

    def test_detach_stops_accumulation(self):
        runtime = _FakeRuntime()
        tau = TauProfiler()
        tau.attach(runtime)
        runtime.ompt.dispatch(
            OmptEvent.IMPLICIT_TASK, _duration("r", 0.1)
        )
        tau.detach()
        runtime.ompt.dispatch(
            OmptEvent.IMPLICIT_TASK, _duration("r", 0.1)
        )
        assert tau.regions["r"].calls == 1

    def test_double_attach_rejected(self):
        runtime = _FakeRuntime()
        tau = TauProfiler()
        tau.attach(runtime)
        with pytest.raises(RuntimeError, match="already attached"):
            tau.attach(runtime)

    def test_detach_without_attach_rejected(self):
        with pytest.raises(RuntimeError, match="not attached"):
            TauProfiler().detach()
