"""Tests for the structured logging module."""

from __future__ import annotations

import io
import json

import pytest

from repro.util import log as log_mod
from repro.util.log import LogConfig, configure, get_logger


@pytest.fixture(autouse=True)
def fresh_config():
    """Isolate each test from the process-wide logging state."""
    saved = log_mod._CONFIG
    log_mod._CONFIG = LogConfig()
    try:
        yield
    finally:
        log_mod._CONFIG = saved


def capture():
    stream = io.StringIO()
    configure(stream=stream)
    return stream


class TestLevels:
    def test_default_level_suppresses_debug(self):
        stream = capture()
        logger = get_logger("t")
        logger.debug("hidden")
        logger.info("shown")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert "shown" in lines[0]

    def test_configure_level(self):
        stream = capture()
        configure(level="error")
        logger = get_logger("t")
        logger.warning("hidden")
        logger.error("shown")
        assert "hidden" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure(level="loud")


class TestFormats:
    def test_human_format(self):
        stream = capture()
        get_logger("soak").info("iteration OK", kills=3, elapsed_s=1.5)
        line = stream.getvalue().strip()
        assert line.startswith("repro[soak] INFO iteration OK")
        assert "kills=3" in line
        assert "elapsed_s=1.500" in line

    def test_json_format_is_strict_json(self):
        stream = capture()
        configure(fmt="json")
        get_logger("smoke").error("smoke FAIL", reason="diff")
        blob = json.loads(stream.getvalue())
        assert blob == {
            "level": "error",
            "logger": "smoke",
            "msg": "smoke FAIL",
            "reason": "diff",
        }

    def test_human_quotes_values_with_spaces(self):
        stream = capture()
        get_logger("t").info("m", what="two words")
        assert "what='two words'" in stream.getvalue()


class TestEnv:
    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug:json")
        cfg = log_mod._config_from_env()
        assert cfg.level_no == 0
        assert cfg.fmt == "json"

    def test_malformed_env_falls_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "shouty:xml")
        cfg = log_mod._config_from_env()
        assert cfg.level_no == 1
        assert cfg.fmt == "human"
