"""Integration tests: ARCS under injected faults.

The contract the tentpole promises: under any single-fault plan the
control loop completes without crashing, never publishes NaN, records
what degraded, and stays within a bounded distance of the clean run;
and an interrupted journaled sweep resumes byte-identically.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.cache import result_to_json
from repro.experiments.journal import SweepJournal
from repro.experiments.parallel import (
    ParallelSweepExecutor,
    SweepTask,
    SweepTaskError,
    _is_fatal,
)
from repro.experiments.runner import (
    ExperimentSetup,
    run_arcs_offline,
    run_arcs_online,
    run_default,
)
from repro.faults import FaultPlan, FaultSpec, make_injector
from repro.machine.spec import crill
from repro.openmp.runtime import OpenMPRuntime
from repro.machine.node import SimulatedNode
from repro.workloads.base import run_application
from repro.workloads.synthetic import synthetic_application


def _app(timesteps: int = 2):
    return synthetic_application(
        timesteps=timesteps, include_tiny=False
    )


def _setup(plan: FaultPlan | None = None, **kwargs) -> ExperimentSetup:
    kwargs.setdefault("cap_w", 85.0)
    kwargs.setdefault("repeats", 1)
    return ExperimentSetup(spec=crill(), fault_plan=plan, **kwargs)


def _single(site: str, action: str, **kwargs) -> FaultPlan:
    return FaultPlan(
        specs=(FaultSpec(site=site, action=action, **kwargs),), seed=5
    )


#: every single-fault plan ARCS-Online must survive; the flag says
#: whether the plan is persistent enough that a degradation note is
#: guaranteed in the result.
SINGLE_FAULT_PLANS = [
    pytest.param(
        _single("rapl.read", "error"), True, id="rapl-read-error"
    ),
    pytest.param(
        _single("rapl.read", "stale", probability=0.2),
        False,
        id="rapl-read-stale",
    ),
    pytest.param(
        _single("rapl.read", "wraparound", start=2, max_fires=1),
        True,
        id="rapl-read-wraparound",
    ),
    pytest.param(
        _single("rapl.cap_write", "reject"), True, id="cap-write-reject"
    ),
    pytest.param(
        _single("ompt.timer_start", "drop", probability=0.3),
        True,
        id="timer-start-drop",
    ),
    pytest.param(
        _single("ompt.timer_stop", "drop", probability=0.3),
        True,
        id="timer-stop-drop",
    ),
    pytest.param(
        _single("measure.noise", "spike", probability=0.2),
        False,
        id="noise-spike",
    ),
]


class TestArcsOnlineUnderFaults:
    @pytest.mark.parametrize(
        "plan, expect_degradation", SINGLE_FAULT_PLANS
    )
    def test_completes_with_recorded_degradation(
        self, plan, expect_degradation
    ):
        clean = run_arcs_online(_app(), _setup())
        faulty = run_arcs_online(_app(), _setup(plan))

        assert math.isfinite(faulty.time_s) and faulty.time_s > 0
        if faulty.energy_j is not None:
            assert math.isfinite(faulty.energy_j)
            assert faulty.energy_j >= 0
        for run in faulty.runs:
            assert math.isfinite(run.time_s)
            assert run.energy_j is None or (
                math.isfinite(run.energy_j) and run.energy_j >= 0
            )
        # bounded regression: a measurement fault may cost retries and
        # degraded configs, but not a runaway
        assert faulty.time_s <= 3.0 * clean.time_s
        if expect_degradation:
            assert faulty.degradations, (
                f"expected a degradation note under {plan}"
            )

    def test_fault_runs_are_deterministic(self):
        plan = _single("measure.noise", "spike", probability=0.3)
        a = run_arcs_online(_app(), _setup(plan))
        b = run_arcs_online(_app(), _setup(plan))
        assert result_to_json(a) == result_to_json(b)

    def test_clean_plan_matches_no_plan(self):
        """An empty plan must not perturb the clean path at all."""
        none = run_arcs_online(_app(), _setup(None))
        empty = run_arcs_online(_app(), _setup(FaultPlan()))
        assert result_to_json(none) == result_to_json(empty)

    def test_persistent_read_errors_degrade_to_time_only(self):
        result = run_default(_app(), _setup(_single("rapl.read", "error")))
        assert result.energy_j is None
        assert math.isfinite(result.time_s)
        assert any(
            "energy read" in note for note in result.degradations
        )

    def test_offline_survives_noise_spikes(self):
        plan = _single("measure.noise", "spike", probability=0.1)
        result = run_arcs_offline(_app(), _setup(plan))
        assert math.isfinite(result.time_s)
        assert result.chosen_configs


class TestCounterWraparoundDuringTuning:
    """Satellite: 32-bit energy-counter wraparound inside an active
    tuning window must never produce negative or non-finite power."""

    def test_preset_counter_near_wrap(self):
        from repro.core.controller import ARCS

        node = SimulatedNode(crill())
        # park every package counter just shy of the 32-bit wrap so the
        # run's deposits roll it over mid-tuning
        for socket in range(node.spec.sockets):
            node.msr.bump_energy_counter(socket, (1 << 32) - (1 << 18))
        runtime = OpenMPRuntime(node, noise_sigma=0.0)
        arcs = ARCS(runtime, strategy="nelder-mead", max_evals=8)
        arcs.attach()
        result = run_application(_app(timesteps=3), runtime)
        arcs.finalize()

        assert result.energy_j is not None
        assert math.isfinite(result.energy_j)
        assert result.energy_j >= 0
        assert math.isfinite(result.time_s) and result.time_s > 0
        derived_power = result.energy_j / result.time_s
        assert math.isfinite(derived_power) and derived_power >= 0

    def test_wraparound_read_fault_is_corrected(self):
        """A read racing the wrap (value one span behind) at the run's
        end read is corrected by whole spans, with a note."""
        plan = _single("rapl.read", "wraparound", start=2, max_fires=1)
        node = SimulatedNode(crill(), faults=make_injector(plan))
        runtime = OpenMPRuntime(node, noise_sigma=0.0)
        result = run_application(_app(), runtime)
        assert result.energy_j is not None
        assert math.isfinite(result.energy_j)
        assert result.energy_j >= 0
        assert any("wrapped" in note for note in result.degraded)


# ---------------------------------------------------------------------------
def _tasks(plan: FaultPlan | None = None) -> list[SweepTask]:
    return [
        SweepTask(
            app=_app(),
            spec=crill(),
            strategy=strategy,
            cap_w=85.0,
            repeats=1,
            fault_plan=plan,
        )
        for strategy in ("default", "arcs-online")
    ]


class TestJournaledResume:
    def test_killed_mid_sweep_resume_is_byte_identical(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = _tasks()
        full = ParallelSweepExecutor(journal=SweepJournal(path)).run(
            tasks
        )
        lines = path.read_text().splitlines(keepends=True)
        # one sweep-identity header line plus one line per cell
        assert len(lines) == len(tasks) + 1

        # simulate a kill -9 mid-append: header and first cell intact,
        # second cell torn
        path.write_text(
            lines[0] + lines[1] + lines[2][: len(lines[2]) // 2]
        )
        resumed = ParallelSweepExecutor(
            journal=SweepJournal(path), resume=True
        ).run(tasks)

        assert [result_to_json(r) for r in resumed] == [
            result_to_json(r) for r in full
        ]
        # and the journal is whole again
        assert len(SweepJournal(path).load()) == len(tasks)

    def test_resume_skips_completed_cells(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = _tasks()
        ParallelSweepExecutor(journal=SweepJournal(path)).run(tasks)

        calls = []

        def counting_task(task):
            calls.append(task.label)
            raise AssertionError("resume should not re-run cells")

        resumed = ParallelSweepExecutor(
            journal=SweepJournal(path),
            resume=True,
            task_fn=counting_task,
        ).run(tasks)
        assert calls == []
        assert len(resumed) == len(tasks)

    def test_without_resume_journal_is_restarted(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        tasks = _tasks()
        ParallelSweepExecutor(journal=SweepJournal(path)).run(tasks)
        ParallelSweepExecutor(journal=SweepJournal(path)).run(tasks)
        # cleared then re-filled (header + cells), not appended twice
        assert len(path.read_text().splitlines()) == len(tasks) + 1

    def test_resume_requires_journal(self):
        with pytest.raises(ValueError, match="journal"):
            ParallelSweepExecutor(resume=True)


# ---------------------------------------------------------------------------
def _fatal_task(task: SweepTask):
    raise ValueError("deterministic bad input")


def _retryable_task(task: SweepTask):
    raise RuntimeError("transient glitch")


class TestErrorClassification:
    def test_classifier(self):
        from concurrent.futures import TimeoutError as FutureTimeout

        from repro.core.history import CorruptHistoryError
        from repro.experiments.runner import TuningDidNotConverge

        assert _is_fatal(ValueError("x"))
        assert _is_fatal(KeyError("x"))
        assert _is_fatal(TuningDidNotConverge("k", 1))
        assert _is_fatal(CorruptHistoryError(__import__("pathlib").Path("p"), "r"))
        assert not _is_fatal(RuntimeError("x"))
        assert not _is_fatal(OSError("x"))
        assert not _is_fatal(FutureTimeout())

    def test_fatal_error_is_not_retried(self):
        calls = []

        def fatal(task):
            calls.append(1)
            raise ValueError("deterministic bad input")

        executor = ParallelSweepExecutor(retries=5, task_fn=fatal)
        with pytest.raises(SweepTaskError) as err:
            executor.run(_tasks()[:1])
        assert len(calls) == 1
        assert err.value.retryable is False
        assert "not retryable" in str(err.value)

    def test_worker_traceback_preserved(self):
        executor = ParallelSweepExecutor(retries=0, task_fn=_fatal_task)
        with pytest.raises(SweepTaskError) as err:
            executor.run(_tasks()[:1])
        assert "_fatal_task" in err.value.worker_traceback
        assert "deterministic bad input" in err.value.worker_traceback
        assert "_fatal_task" in str(err.value)

    def test_retryable_error_still_retried_then_raises(self):
        calls = []

        def flaky(task):
            calls.append(1)
            raise RuntimeError("transient glitch")

        executor = ParallelSweepExecutor(retries=2, task_fn=flaky)
        with pytest.raises(SweepTaskError) as err:
            executor.run(_tasks()[:1])
        assert len(calls) == 3
        assert err.value.retryable is True


class TestWorkerFaults:
    def test_injected_crash_is_retried_to_success(self, tmp_path):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="sweep.worker", action="crash", max_fires=1
                ),
            ),
            seed=2,
        )
        tasks = _tasks()[:1]
        clean = ParallelSweepExecutor().run(tasks)
        faulty = ParallelSweepExecutor(
            retries=1, faults=make_injector(plan)
        ).run(tasks)
        assert [result_to_json(r) for r in faulty] == [
            result_to_json(r) for r in clean
        ]

    def test_injected_crash_without_retries_raises(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="sweep.worker", action="crash"),),
            seed=2,
        )
        executor = ParallelSweepExecutor(
            retries=0, faults=make_injector(plan)
        )
        with pytest.raises(SweepTaskError, match="injected worker crash"):
            executor.run(_tasks()[:1])

    def test_injected_hang_completes_inline(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="sweep.worker",
                    action="hang",
                    max_fires=1,
                    magnitude=0.05,
                ),
            ),
            seed=2,
        )
        tasks = _tasks()[:1]
        clean = ParallelSweepExecutor().run(tasks)
        hung = ParallelSweepExecutor(
            faults=make_injector(plan)
        ).run(tasks)
        assert [result_to_json(r) for r in hung] == [
            result_to_json(r) for r in clean
        ]
