"""Corpus extraction: folding caches, journals and telemetry into
training records - and proving the fold never raises on damage.

The regression this file pins down: a sweep journal written across a
schema upgrade holds lines from *both* versions, and the fold must
skip-and-count the foreign ones instead of aborting halfway through
(the original implementation raised mid-fold and lost every record
after the first mismatch).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    ExperimentCache,
    result_to_json,
)
from repro.experiments.journal import JOURNAL_SCHEMA_VERSION, SweepJournal
from repro.experiments.runner import ExperimentSetup, run_arcs_offline
from repro.faults.inject import make_injector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.machine.spec import crill
from repro.surrogate.corpus import (
    CORPUS_SCHEMA_VERSION,
    CorpusStats,
    TrainingRecord,
    fold_cache_dir,
    fold_journal,
    fold_result,
    fold_telemetry_file,
    load_corpus,
    save_corpus,
)
from repro.workloads.registry import application_by_name

APP = application_by_name("synthetic", "mixed")


def offline_setup() -> ExperimentSetup:
    return ExperimentSetup(spec=crill(), cap_w=85.0, repeats=2, seed=3)


@pytest.fixture(scope="module")
def offline_result():
    return run_arcs_offline(APP, offline_setup())


REGION_COUNT = len(list(APP.regions()))


class TestFoldResult:
    def test_offline_result_yields_one_record_per_region(
        self, offline_result
    ):
        stats = CorpusStats()
        records = fold_result(
            offline_result, source="cache", provenance="p", stats=stats
        )
        assert len(records) == REGION_COUNT
        assert stats.records == REGION_COUNT
        by_region = {r.region: r for r in records}
        for region, config in offline_result.chosen_configs.items():
            record = by_region[region]
            assert record.config() == config
            assert record.cap_w == 85.0
            assert record.time_s > 0.0
            assert record.app == APP.label
            assert record.source == "cache"

    def test_online_results_are_unusable_not_attributed(
        self, offline_result
    ):
        # online totals mix search probes from many configs; folding
        # them would attribute mixed measurements to one config
        online = dataclasses.replace(
            offline_result, strategy="arcs-online"
        )
        stats = CorpusStats()
        assert (
            fold_result(
                online, source="cache", provenance="p", stats=stats
            )
            == []
        )
        assert stats.skipped_unusable == 1
        assert stats.records == 0


class TestFoldCacheDir:
    def test_folds_entries_and_skips_damage(
        self, tmp_path, offline_result
    ):
        cache = ExperimentCache(tmp_path)
        cache.put(APP, offline_setup(), "arcs-offline", offline_result)
        (tmp_path / "torn.json").write_text('{"schema": ')
        (tmp_path / "old.json").write_text(
            json.dumps({"schema": CACHE_SCHEMA_VERSION + 1})
        )
        stats = CorpusStats()
        records = fold_cache_dir(tmp_path, stats)
        assert len(records) == REGION_COUNT
        assert stats.files == 3
        assert stats.skipped_damaged == 1
        assert stats.skipped_schema == 1
        assert any("unreadable" in n for n in stats.notes)

    def test_missing_directory_is_empty_not_an_error(self, tmp_path):
        stats = CorpusStats()
        assert fold_cache_dir(tmp_path / "nope", stats) == []


class TestFoldJournal:
    def _journal(self, tmp_path, offline_result) -> SweepJournal:
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        journal.write_header({"sweep": "test"})
        journal.append("a" * 64, "cell-a", offline_result)
        return journal

    def test_folds_cells_and_ignores_header(
        self, tmp_path, offline_result
    ):
        journal = self._journal(tmp_path, offline_result)
        stats = CorpusStats()
        records = fold_journal(journal.path, stats)
        assert len(records) == REGION_COUNT
        assert all(r.source == "journal" for r in records)
        assert all(r.provenance.startswith("sweep:") for r in records)

    def test_mixed_schema_versions_skip_and_count_not_raise(
        self, tmp_path, offline_result
    ):
        # the regression: a journal spanning a schema upgrade - one
        # good line, one foreign-version line, one more good line -
        # must contribute BOTH good lines and count the foreign one
        journal = self._journal(tmp_path, offline_result)
        foreign = {
            "schema": JOURNAL_SCHEMA_VERSION + 1,
            "digest": "b" * 64,
            "task": "cell-b",
            "result": result_to_json(offline_result),
        }
        with open(journal.path, "a") as handle:
            handle.write(json.dumps(foreign) + "\n")
        journal.append("c" * 64, "cell-c", offline_result)
        stats = CorpusStats()
        records = fold_journal(journal.path, stats)
        assert len(records) == 2 * REGION_COUNT
        assert stats.skipped_schema == 1
        assert stats.skipped_damaged == 0

    def test_torn_tail_is_counted_and_file_left_untouched(
        self, tmp_path, offline_result
    ):
        journal = self._journal(tmp_path, offline_result)
        with open(journal.path, "a") as handle:
            handle.write('{"schema": 1, "digest": "tor')  # no newline
        before = journal.path.read_bytes()
        stats = CorpusStats()
        records = fold_journal(journal.path, stats)
        assert len(records) == REGION_COUNT
        assert stats.skipped_damaged == 1
        assert any("torn/corrupt" in n for n in stats.notes)
        # read-only: the fold must never truncate the sweep's own
        # recovery log (unlike SweepJournal.load, which may)
        assert journal.path.read_bytes() == before

    def test_missing_journal_notes_and_returns_empty(self, tmp_path):
        stats = CorpusStats()
        assert fold_journal(tmp_path / "gone.jsonl", stats) == []
        assert any("unreadable journal" in n for n in stats.notes)


class TestFoldTelemetry:
    def _write(self, path, lines):
        path.write_text(
            "\n".join(json.dumps(line) for line in lines) + "\n"
        )

    def test_pairs_apply_and_report_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write(
            path,
            [
                {
                    "type": "meta",
                    "attrs": {"app": "synthetic.mixed", "machine": "crill"},
                },
                {
                    "type": "event",
                    "name": "policy.apply",
                    "attrs": {
                        "region": "synthetic_tiny",
                        "config": "16, guided, 8",
                        "cap_w": 85.0,
                    },
                },
                {
                    "type": "event",
                    "name": "policy.report",
                    "attrs": {
                        "region": "synthetic_tiny",
                        "objective": 0.004,
                        "accepted": True,
                    },
                },
            ],
        )
        stats = CorpusStats()
        records = fold_telemetry_file(path, stats)
        assert len(records) == 1
        record = records[0]
        assert record.region == "synthetic_tiny"
        assert record.n_threads == 16
        assert record.schedule == "guided"
        assert record.chunk == 8
        assert record.cap_w == 85.0
        assert record.time_s == 0.004
        assert record.source == "telemetry"

    def test_rejected_and_orphan_reports_are_unusable(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write(
            path,
            [
                {
                    "type": "meta",
                    "attrs": {"app": "synthetic.mixed", "machine": "crill"},
                },
                # a report with no preceding apply for its region
                {
                    "type": "event",
                    "name": "policy.report",
                    "attrs": {"region": "orphan", "objective": 0.1},
                },
                {
                    "type": "event",
                    "name": "policy.apply",
                    "attrs": {
                        "region": "r",
                        "config": "8, static, default",
                        "cap_w": None,
                    },
                },
                # a measurement the guard rejected
                {
                    "type": "event",
                    "name": "policy.report",
                    "attrs": {
                        "region": "r",
                        "objective": 0.1,
                        "accepted": False,
                    },
                },
            ],
        )
        stats = CorpusStats()
        assert fold_telemetry_file(path, stats) == []
        assert stats.skipped_unusable == 2


class TestCorpusFaultSite:
    @pytest.mark.parametrize("action", ["torn", "corrupt"])
    def test_damaged_records_are_skipped_never_raised(
        self, offline_result, action
    ):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="surrogate.corpus", action=action),
            ),
            seed=5,
        )
        injector = make_injector(plan, salt="corpus-test")
        stats = CorpusStats()
        records = fold_result(
            offline_result,
            source="cache",
            provenance="p",
            stats=stats,
            faults=injector,
        )
        assert records == []  # every candidate drew the fault
        assert stats.skipped_damaged == REGION_COUNT
        assert any(action in n for n in stats.notes)
        assert len(injector.events) == REGION_COUNT


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, offline_result):
        stats = CorpusStats()
        records = fold_result(
            offline_result, source="cache", provenance="p", stats=stats
        )
        path = tmp_path / "corpus.json"
        save_corpus(records, stats, path)
        loaded, loaded_stats = load_corpus(path)
        assert loaded == records
        assert loaded_stats.records == stats.records
        assert loaded_stats.notes == stats.notes

    def test_wrong_schema_refuses_to_load(self, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus([], CorpusStats(), path)
        blob = json.loads(path.read_text())
        blob["schema"] = CORPUS_SCHEMA_VERSION + 1
        path.write_text(json.dumps(blob))
        with pytest.raises(ValueError, match="unsupported schema"):
            load_corpus(path)

    def test_corrupt_file_raises_value_error(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="cannot read"):
            load_corpus(path)

    def test_record_json_round_trip(self):
        record = TrainingRecord(
            app="sp.B",
            machine="crill",
            region="y_solve",
            cap_w=None,
            n_threads=32,
            schedule="dynamic",
            chunk=None,
            time_s=0.01,
            energy_j=1.5,
            source="journal",
            provenance="j:abc",
        )
        assert TrainingRecord.from_json(record.to_json()) == record
