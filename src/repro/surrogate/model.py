"""The learned surrogate: feature-hashed ridge with tiny-MLP refinement.

Zero heavy dependencies - pure numpy, closed-form ridge, optional
one-hidden-layer refinement trained with fixed-epoch full-batch
gradient descent.  Everything is seeded and byte-deterministic: the
same corpus and seed produce the same weights, the same saved JSON and
the same predictions, on every machine (feature hashing goes through
sha256, never Python's randomized ``hash``).

The model predicts ``log(time_per_call_s)`` for one ``(region
features, config, cap)`` context.  Features mix three kinds of tokens:

* numeric region/config/cap features (log-scaled, value-weighted);
* categorical one-hot tokens (schedule, chunk, thread count, machine,
  imbalance kind) and their interactions - these generalize across
  regions, which is what the cold-start path leans on;
* region-identity interaction tokens (``r=<app>.<region>|threads=16``
  ...) - these let the model *memorize* the measured response of
  regions the corpus has seen, which is what makes corpus-trained
  ranking sample-efficient on warm regions.

A deterministic ~20% holdout split feeds the :class:`FitReport`; the
runner's fallback contract (``repro.surrogate.plan``) compares its
held-out relative error against a threshold before trusting the
ranking.  A fit whose weights come out non-finite (degenerate corpus,
or the injected ``surrogate.fit``/``nonfinite`` fault) marks the model
unusable with a typed reason instead of raising.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.faults.inject import FaultInjector
from repro.machine.spec import machine_by_name
from repro.openmp.types import OMPConfig
from repro.surrogate.corpus import CorpusStats, TrainingRecord
from repro.util.atomicio import atomic_write_text
from repro.util.rng import rng_for
from repro.workloads.registry import application_by_name

#: bump when the serialized model layout changes.
MODEL_SCHEMA_VERSION = 1

#: bump when the feature tokenization changes - a model hashed under a
#: different tokenization must refuse to predict.
FEATURE_VERSION = 1

#: hashed feature dimensionality.  Large enough that the Table I
#: vocabulary (a few thousand tokens) rarely collides; a 1024x1024
#: ridge solve is still instantaneous.
DEFAULT_DIM = 1024

#: ridge regularization strength.
DEFAULT_RIDGE = 1.0e-3

#: tiny-MLP refinement defaults (hidden width / epochs / step size).
MLP_HIDDEN = 24
MLP_EPOCHS = 300
MLP_LR = 0.05

#: holdout denominator: every record whose deterministic bucket is 0
#: (of ``_HOLDOUT_BUCKETS``) is held out of the fit.
_HOLDOUT_BUCKETS = 5

#: numeric feature values are clipped here so arbitrary (even
#: non-finite) inputs still produce finite predictions.
_VALUE_CLIP = 1.0e6


class SurrogateError(ValueError):
    """A surrogate model file is missing, corrupt or incompatible."""


# ---------------------------------------------------------------------------
# region context + featurization
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RegionContext:
    """Everything the featurizer knows about one (region, cap)."""

    region_key: str          #: identity token, ``"<app>.<region>"``
    machine: str
    tdp_w: float
    cap_w: float | None
    iterations: float
    cpu_ns_per_iter: float
    serial_ns: float
    bytes_per_iter: float
    stride_bytes: float
    footprint_bytes: float
    reuse_fraction: float
    neighbourhood_bytes: float
    imb_kind: str
    imb_amplitude: float


def context_from_profile(
    app_label: str,
    machine: str,
    cap_w: float | None,
    profile,
    tdp_w: float,
) -> RegionContext:
    """Context for one :class:`~repro.openmp.region.RegionProfile`."""
    memory = profile.memory
    imbalance = profile.imbalance
    return RegionContext(
        region_key=f"{app_label}.{profile.name}",
        machine=machine,
        tdp_w=tdp_w,
        cap_w=cap_w,
        iterations=float(profile.iterations),
        cpu_ns_per_iter=float(profile.cpu_ns_per_iter),
        serial_ns=float(profile.serial_ns),
        bytes_per_iter=float(memory.bytes_per_iter),
        stride_bytes=float(memory.stride_bytes),
        footprint_bytes=float(memory.footprint_bytes),
        reuse_fraction=float(memory.reuse_fraction),
        neighbourhood_bytes=float(memory.neighbourhood_bytes),
        imb_kind=imbalance.kind,
        imb_amplitude=float(imbalance.amplitude),
    )


def resolve_context(record: TrainingRecord) -> RegionContext | None:
    """Region features for one training record, via the application
    and machine registries; ``None`` when the app, region or machine
    cannot be resolved (the fit counts those, it does not raise)."""
    name, _, workload = record.app.partition(".")
    try:
        app = application_by_name(name, workload or None)
        spec = machine_by_name(record.machine)
    except ValueError:
        return None
    for profile in app.regions():
        if profile.name == record.region:
            return context_from_profile(
                record.app, record.machine, record.cap_w,
                profile, spec.tdp_w,
            )
    return None


#: token -> (index, sign) memo; sha256 per token is cheap but ranking
#: hashes the same vocabulary thousands of times.
_TOKEN_CACHE: dict[tuple[int, str], tuple[int, float]] = {}


def _hash_token(token: str, dim: int) -> tuple[int, float]:
    key = (dim, token)
    cached = _TOKEN_CACHE.get(key)
    if cached is None:
        digest = hashlib.sha256(token.encode()).digest()
        index = int.from_bytes(digest[:8], "big") % dim
        sign = 1.0 if digest[8] % 2 == 0 else -1.0
        cached = (index, sign)
        _TOKEN_CACHE[key] = cached
    return cached


def _clip(value: float) -> float:
    """Finite, bounded feature value for arbitrary inputs."""
    value = float(value)
    if math.isnan(value):
        return 0.0
    return min(max(value, -_VALUE_CLIP), _VALUE_CLIP)


def _log10p(value: float) -> float:
    value = _clip(value)
    return math.log10(1.0 + max(value, 0.0))


def feature_tokens(
    ctx: RegionContext, config: OMPConfig
) -> list[tuple[str, float]]:
    """The (token, value) list hashed into one feature vector."""
    n = config.n_threads
    sched = config.schedule.value
    chunk = "default" if config.chunk is None else str(config.chunk)
    cap_eff = ctx.tdp_w if ctx.cap_w is None else ctx.cap_w
    cap_tag = "tdp" if ctx.cap_w is None else f"{ctx.cap_w:g}"
    r = ctx.region_key

    log_threads = _log10p(n)
    log_chunk = 0.0 if config.chunk is None else _log10p(config.chunk)
    log_cap = _log10p(cap_eff)
    log_bpi = _log10p(ctx.bytes_per_iter)
    imb_amp = _clip(ctx.imb_amplitude)
    compute_ns = _clip(
        ctx.serial_ns + ctx.iterations * ctx.cpu_ns_per_iter
    )
    serial_frac = (
        _clip(ctx.serial_ns) / compute_ns if compute_ns > 0.0 else 0.0
    )

    tokens: list[tuple[str, float]] = [
        ("bias", 1.0),
        # region scale + features (config-independent; they set the
        # baseline log-time the config terms modulate)
        ("log_iter", _log10p(ctx.iterations)),
        ("log_cpu", _log10p(ctx.cpu_ns_per_iter)),
        ("log_bpi", log_bpi),
        ("log_stride", _log10p(ctx.stride_bytes)),
        ("log_fp", _log10p(ctx.footprint_bytes)),
        ("log_nbh", _log10p(ctx.neighbourhood_bytes)),
        ("reuse", _clip(ctx.reuse_fraction)),
        ("imb_amp", imb_amp),
        ("serial_frac", serial_frac),
        ("log_cap", log_cap),
        (f"machine={ctx.machine}", 1.0),
        (f"imb={ctx.imb_kind}", 1.0),
        # config main effects
        (f"threads={n}", 1.0),
        (f"sched={sched}", 1.0),
        (f"chunk={chunk}", 1.0),
        ("log_threads", log_threads),
        ("log_chunk", log_chunk),
        # config x config / config x feature interactions (the
        # cross-region generalization terms)
        (f"threads={n}|sched={sched}", 1.0),
        (f"sched={sched}|chunk={chunk}", 1.0),
        (f"imb={ctx.imb_kind}|sched={sched}", 1.0),
        (f"imb={ctx.imb_kind}|sched={sched}|chunk={chunk}", 1.0),
        ("log_threads*log_cap", log_threads * log_cap),
        ("log_threads*log_bpi", log_threads * log_bpi),
        ("log_threads*imb_amp", log_threads * imb_amp),
        ("log_threads*serial_frac", log_threads * serial_frac),
        ("log_chunk*imb_amp", log_chunk * imb_amp),
        (f"sched={sched}*imb_amp", imb_amp),
        # region-identity interactions (warm-region memorization)
        (f"r={r}", 1.0),
        (f"r={r}|cap={cap_tag}", 1.0),
        (f"r={r}|threads={n}", 1.0),
        (f"r={r}|sched={sched}", 1.0),
        (f"r={r}|sched={sched}|chunk={chunk}", 1.0),
        (f"r={r}|threads={n}|sched={sched}", 1.0),
    ]
    return tokens


def featurize(
    ctx: RegionContext, config: OMPConfig, dim: int
) -> np.ndarray:
    x = np.zeros(dim)
    for token, value in feature_tokens(ctx, config):
        index, sign = _hash_token(token, dim)
        x[index] += sign * _clip(value)
    return x


# ---------------------------------------------------------------------------
# the model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FitReport:
    """Fit-quality summary saved with (and loaded from) the model."""

    n_records: int
    n_train: int
    n_holdout: int
    n_unresolvable: int
    dim: int
    seed: int
    mlp: bool
    #: median relative time error on the deterministic holdout split
    #: (``None`` when the corpus was too small to hold anything out).
    holdout_rel_err: float | None
    train_rel_err: float | None
    usable: bool
    reason: str | None = None
    corpus_notes: tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {
            "n_records": self.n_records,
            "n_train": self.n_train,
            "n_holdout": self.n_holdout,
            "n_unresolvable": self.n_unresolvable,
            "dim": self.dim,
            "seed": self.seed,
            "mlp": self.mlp,
            "holdout_rel_err": self.holdout_rel_err,
            "train_rel_err": self.train_rel_err,
            "usable": self.usable,
            "reason": self.reason,
            "corpus_notes": list(self.corpus_notes),
        }

    @classmethod
    def from_json(cls, blob: dict) -> "FitReport":
        return cls(
            n_records=int(blob["n_records"]),
            n_train=int(blob["n_train"]),
            n_holdout=int(blob["n_holdout"]),
            n_unresolvable=int(blob["n_unresolvable"]),
            dim=int(blob["dim"]),
            seed=int(blob["seed"]),
            mlp=bool(blob["mlp"]),
            holdout_rel_err=(
                None if blob["holdout_rel_err"] is None
                else float(blob["holdout_rel_err"])
            ),
            train_rel_err=(
                None if blob["train_rel_err"] is None
                else float(blob["train_rel_err"])
            ),
            usable=bool(blob["usable"]),
            reason=(
                None if blob.get("reason") is None
                else str(blob["reason"])
            ),
            corpus_notes=tuple(
                str(n) for n in blob.get("corpus_notes", [])
            ),
        )


@dataclass
class SurrogateModel:
    """Fitted predictor of ``log(time_per_call_s)``."""

    dim: int
    seed: int
    weights: np.ndarray
    report: FitReport
    feature_version: int = FEATURE_VERSION
    #: (W1, b1, w2, b2) of the refinement MLP, or None.
    mlp: tuple[np.ndarray, np.ndarray, np.ndarray, float] | None = None

    @property
    def usable(self) -> bool:
        return self.report.usable

    def predict_log_time(
        self, ctx: RegionContext, config: OMPConfig
    ) -> float:
        """Predicted log(seconds per call); always finite for a usable
        model, whatever the context values."""
        x = featurize(ctx, config, self.dim)
        return self._predict_matrix(x[None, :])[0]

    def _predict_matrix(self, x: np.ndarray) -> np.ndarray:
        pred = x @ self.weights
        if self.mlp is not None:
            w1, b1, w2, b2 = self.mlp
            hidden = np.tanh(x @ w1 + b1)
            pred = pred + hidden @ w2 + b2
        return pred

    def rank(self, ctx: RegionContext, space) -> list[tuple[int, ...]]:
        """Every point of ``space`` ordered by predicted objective
        (best first); ties break toward row-major position, so the
        ordering - and any top-k prefix of it - is deterministic."""
        order = list(space.iter_indices())
        from repro.core.config import config_from_point

        x = np.stack(
            [
                featurize(ctx, config_from_point(space.decode(o)), self.dim)
                for o in order
            ]
        )
        scores = self._predict_matrix(x)
        ranked = sorted(
            range(len(order)), key=lambda i: (scores[i], i)
        )
        return [order[i] for i in ranked]


# ---------------------------------------------------------------------------
# fitting
# ---------------------------------------------------------------------------
def _holdout_mask(n: int, seed: int) -> np.ndarray:
    """Deterministic ~1/_HOLDOUT_BUCKETS holdout selection."""
    mask = np.zeros(n, dtype=bool)
    for i in range(n):
        digest = hashlib.sha256(
            f"surrogate-holdout|{seed}|{i}".encode()
        ).digest()
        mask[i] = digest[0] % _HOLDOUT_BUCKETS == 0
    # never hold out everything
    if mask.all():
        mask[:] = False
    return mask


def _rel_err(pred: np.ndarray, true: np.ndarray) -> float | None:
    """Median relative time error from log-space predictions."""
    if len(pred) == 0:
        return None
    delta = np.clip(pred - true, -50.0, 50.0)
    return float(np.median(np.abs(np.expm1(delta))))


def _fit_mlp(
    x: np.ndarray, residual: np.ndarray, seed: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Fixed-epoch full-batch GD on the ridge residual (deterministic:
    seeded init, no shuffling, fixed schedule)."""
    rng = rng_for(seed, "surrogate-mlp")
    n, dim = x.shape
    w1 = rng.normal(0.0, 1.0 / math.sqrt(dim), size=(dim, MLP_HIDDEN))
    b1 = np.zeros(MLP_HIDDEN)
    w2 = np.zeros(MLP_HIDDEN)
    b2 = 0.0
    for _ in range(MLP_EPOCHS):
        hidden = np.tanh(x @ w1 + b1)
        pred = hidden @ w2 + b2
        err = (pred - residual) / n
        grad_w2 = hidden.T @ err
        grad_b2 = float(err.sum())
        back = np.outer(err, w2) * (1.0 - hidden**2)
        grad_w1 = x.T @ back
        grad_b1 = back.sum(axis=0)
        w1 -= MLP_LR * grad_w1
        b1 -= MLP_LR * grad_b1
        w2 -= MLP_LR * grad_w2
        b2 -= MLP_LR * grad_b2
    return w1, b1, w2, b2


def fit_surrogate(
    records: list[TrainingRecord],
    *,
    dim: int = DEFAULT_DIM,
    seed: int = 0,
    ridge: float = DEFAULT_RIDGE,
    mlp: bool = False,
    corpus_stats: CorpusStats | None = None,
    faults: FaultInjector | None = None,
) -> SurrogateModel:
    """Fit the surrogate on a folded corpus.

    Never raises for data problems: an empty/unresolvable corpus or a
    non-finite solve (including the injected ``surrogate.fit`` fault)
    produces a model whose report is marked unusable with a typed
    reason - the strategy layer then falls back to Nelder-Mead.
    """
    corpus_notes = tuple(corpus_stats.notes) if corpus_stats else ()
    rows: list[np.ndarray] = []
    targets: list[float] = []
    unresolvable = 0
    for record in records:
        ctx = resolve_context(record)
        if ctx is None or not record.time_s > 0.0:
            unresolvable += 1
            continue
        rows.append(featurize(ctx, record.config(), dim))
        targets.append(math.log(record.time_s))

    def unusable(reason: str, n_train: int = 0, n_holdout: int = 0):
        report = FitReport(
            n_records=len(records),
            n_train=n_train,
            n_holdout=n_holdout,
            n_unresolvable=unresolvable,
            dim=dim,
            seed=seed,
            mlp=mlp,
            holdout_rel_err=None,
            train_rel_err=None,
            usable=False,
            reason=reason,
            corpus_notes=corpus_notes,
        )
        return SurrogateModel(
            dim=dim, seed=seed, weights=np.zeros(dim), report=report
        )

    if not rows:
        return unusable(
            "training corpus is empty after skipping "
            f"{unresolvable} unresolvable record(s)"
        )

    x = np.stack(rows)
    y = np.asarray(targets)
    holdout = _holdout_mask(len(rows), seed)
    x_train, y_train = x[~holdout], y[~holdout]
    x_hold, y_hold = x[holdout], y[holdout]

    gram = x_train.T @ x_train + ridge * np.eye(dim)
    try:
        weights = np.linalg.solve(gram, x_train.T @ y_train)
    except np.linalg.LinAlgError:
        return unusable(
            "ridge solve failed (singular feature matrix)",
            n_train=len(y_train),
            n_holdout=len(y_hold),
        )

    mlp_params = None
    if mlp:
        residual = y_train - x_train @ weights
        mlp_params = _fit_mlp(x_train, residual, seed)

    if faults is not None:
        spec = faults.draw("surrogate.fit")
        if spec is not None:
            # the injected numerical blow-up: poison the solve output
            # exactly as a degenerate corpus would.
            weights = np.full(dim, np.nan)

    finite = np.all(np.isfinite(weights)) and (
        mlp_params is None
        or all(np.all(np.isfinite(p)) for p in mlp_params[:3])
    )
    if not finite:
        return unusable(
            "fit produced non-finite weights",
            n_train=len(y_train),
            n_holdout=len(y_hold),
        )

    model = SurrogateModel(
        dim=dim,
        seed=seed,
        weights=weights,
        report=FitReport(  # placeholder; replaced below
            n_records=len(records), n_train=0, n_holdout=0,
            n_unresolvable=0, dim=dim, seed=seed, mlp=mlp,
            holdout_rel_err=None, train_rel_err=None, usable=True,
        ),
        mlp=mlp_params,
    )
    train_err = _rel_err(model._predict_matrix(x_train), y_train)
    hold_err = _rel_err(model._predict_matrix(x_hold), y_hold)
    model.report = FitReport(
        n_records=len(records),
        n_train=len(y_train),
        n_holdout=len(y_hold),
        n_unresolvable=unresolvable,
        dim=dim,
        seed=seed,
        mlp=mlp,
        holdout_rel_err=hold_err,
        train_rel_err=train_err,
        usable=True,
        reason=None,
        corpus_notes=corpus_notes,
    )
    return model


# ---------------------------------------------------------------------------
# persistence (byte-deterministic: floats round-trip via repr)
# ---------------------------------------------------------------------------
def save_model(model: SurrogateModel, path: str | Path) -> Path:
    blob: dict = {
        "schema": MODEL_SCHEMA_VERSION,
        "feature_version": model.feature_version,
        "dim": model.dim,
        "seed": model.seed,
        "weights": [float(w) for w in model.weights],
        "report": model.report.to_json(),
    }
    if model.mlp is not None:
        w1, b1, w2, b2 = model.mlp
        blob["mlp"] = {
            "w1": [[float(v) for v in row] for row in w1],
            "b1": [float(v) for v in b1],
            "w2": [float(v) for v in w2],
            "b2": float(b2),
        }
    return atomic_write_text(path, json.dumps(blob, indent=2) + "\n")


def load_model(path: str | Path) -> SurrogateModel:
    """Inverse of :func:`save_model`.

    Raises :class:`SurrogateError` (naming the path) on a missing or
    corrupt file or a schema/feature-version mismatch; callers on the
    degradation path catch it and fall back.
    """
    try:
        blob = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SurrogateError(
            f"cannot read surrogate model {path}: {exc}"
        ) from exc
    if not isinstance(blob, dict):
        raise SurrogateError(
            f"surrogate model {path} is not a JSON object"
        )
    if blob.get("schema") != MODEL_SCHEMA_VERSION:
        raise SurrogateError(
            f"surrogate model {path} has unsupported schema "
            f"{blob.get('schema')!r}"
        )
    if blob.get("feature_version") != FEATURE_VERSION:
        raise SurrogateError(
            f"surrogate model {path} was hashed under feature version "
            f"{blob.get('feature_version')!r}, this build expects "
            f"{FEATURE_VERSION}"
        )
    try:
        dim = int(blob["dim"])
        weights = np.asarray([float(w) for w in blob["weights"]])
        if weights.shape != (dim,):
            raise ValueError(
                f"weight vector has shape {weights.shape}, "
                f"expected ({dim},)"
            )
        report = FitReport.from_json(blob["report"])
        mlp = None
        if blob.get("mlp") is not None:
            m = blob["mlp"]
            mlp = (
                np.asarray(
                    [[float(v) for v in row] for row in m["w1"]]
                ),
                np.asarray([float(v) for v in m["b1"]]),
                np.asarray([float(v) for v in m["w2"]]),
                float(m["b2"]),
            )
        return SurrogateModel(
            dim=dim,
            seed=int(blob["seed"]),
            weights=weights,
            report=report,
            mlp=mlp,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SurrogateError(
            f"surrogate model {path} is corrupt: {exc}"
        ) from exc
