"""Runner glue: ranked probe orders and the fallback contract.

This module is the seam between the learned model and the tuning
machinery.  It turns a fitted :class:`~repro.surrogate.model.
SurrogateModel` into the per-region probe orders the ``surrogate``
search strategy walks, and it owns the *fallback contract*:

* the model file is unreadable / wrong schema    -> fall back;
* the fit is marked unusable (empty corpus, non-finite weights,
  including the injected ``surrogate.fit`` fault) -> fall back;
* the held-out fit error exceeds ``max_fit_error`` -> fall back.

Falling back means the offline tuning run searches with plain
Nelder-Mead instead - the *same* code path a ``--tuner nelder-mead``
run takes, so the only difference in the result is one degradation
note built by :func:`fallback_note`.  The differential test strips
those notes with :func:`strip_surrogate_notes` and holds the rest
byte-identical.

Probe orders preserve **row-major space order** over the selected
top-k subset (see :class:`~repro.harmony.surrogate.
SurrogateRankedSearch` for why): ranking chooses *which* points get
measured, never the order they are measured in.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.config import search_space_for
from repro.harmony.space import SearchSpace
from repro.machine.spec import MachineSpec
from repro.surrogate.model import (
    DEFAULT_DIM,
    FitReport,
    SurrogateError,
    SurrogateModel,
    context_from_profile,
    load_model,
)

if TYPE_CHECKING:
    from repro.workloads.base import Application

#: candidates measured per region when the model is trusted.  12 of
#: the 162-point Table I space is well under a third of what a
#: Nelder-Mead search spends on SP-class regions.
DEFAULT_TOP_K = 12

#: held-out median relative time error above which the ranking is not
#: trusted and tuning falls back to Nelder-Mead.
DEFAULT_MAX_FIT_ERROR = 0.35

#: every surrogate degradation note starts with this, so differential
#: tests (and readers) can separate them from measurement notes.
FALLBACK_NOTE_PREFIX = "surrogate: "


def fallback_note(reason: str) -> str:
    """The degradation note recorded when surrogate tuning falls back."""
    return (
        f"{FALLBACK_NOTE_PREFIX}{reason}; "
        "tuning fell back to nelder-mead"
    )


def strip_surrogate_notes(notes: Iterable[str]) -> tuple[str, ...]:
    """Degradation notes minus the surrogate-fallback ones - what a
    plain Nelder-Mead run of the same experiment would have recorded."""
    return tuple(
        n for n in notes if not n.startswith(FALLBACK_NOTE_PREFIX)
    )


def _unusable_model(reason: str) -> SurrogateModel:
    """A placeholder model carrying only an unusable report, so a
    missing/corrupt model file flows through the same fallback path as
    a failed fit."""
    return SurrogateModel(
        dim=DEFAULT_DIM,
        seed=0,
        weights=np.zeros(DEFAULT_DIM),
        report=FitReport(
            n_records=0,
            n_train=0,
            n_holdout=0,
            n_unresolvable=0,
            dim=DEFAULT_DIM,
            seed=0,
            mlp=False,
            holdout_rel_err=None,
            train_rel_err=None,
            usable=False,
            reason=reason,
        ),
    )


@dataclass(frozen=True)
class SurrogateTuning:
    """Everything the runner needs to tune with the surrogate."""

    model: SurrogateModel
    top_k: int = DEFAULT_TOP_K
    max_fit_error: float = DEFAULT_MAX_FIT_ERROR

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        top_k: int = DEFAULT_TOP_K,
        max_fit_error: float = DEFAULT_MAX_FIT_ERROR,
    ) -> "SurrogateTuning":
        """Load a saved model; an unreadable or incompatible file
        produces a tuning whose :meth:`fallback_reason` reports it
        (degradation, not a crash)."""
        try:
            model = load_model(path)
        except SurrogateError as exc:
            model = _unusable_model(str(exc))
        return cls(
            model=model, top_k=top_k, max_fit_error=max_fit_error
        )

    def fallback_reason(self) -> str | None:
        """Why tuning must fall back to Nelder-Mead; ``None`` when the
        model's ranking can be trusted."""
        report = self.model.report
        if not report.usable:
            return (
                "model unusable "
                f"({report.reason or 'no reason recorded'})"
            )
        err = report.holdout_rel_err
        if err is None:
            return "fit has no held-out records to validate against"
        if err > self.max_fit_error:
            return (
                f"held-out fit error {err:.3f} exceeds the trust "
                f"threshold {self.max_fit_error:g}"
            )
        return None

    def orders_for(
        self,
        app: "Application",
        spec: MachineSpec,
        cap_w: float | None,
        space: SearchSpace | None = None,
    ) -> dict[str, tuple[tuple[int, ...], ...]]:
        return surrogate_orders(
            self.model,
            app,
            spec,
            cap_w,
            space=space,
            top_k=self.top_k,
        )


def surrogate_orders(
    model: SurrogateModel,
    app: "Application",
    spec: MachineSpec,
    cap_w: float | None,
    *,
    space: SearchSpace | None = None,
    top_k: int = DEFAULT_TOP_K,
) -> dict[str, tuple[tuple[int, ...], ...]]:
    """Per-region probe orders: the model-selected top-k subset of
    ``space``, in row-major space order.

    With ``top_k >= space.size`` every order is the full row-major
    walk - exactly :class:`~repro.harmony.exhaustive.ExhaustiveSearch`.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    space = space if space is not None else search_space_for(spec)
    row_major = list(space.iter_indices())
    orders: dict[str, tuple[tuple[int, ...], ...]] = {}
    for profile in app.regions():
        ctx = context_from_profile(
            app.label, spec.name, cap_w, profile, spec.tdp_w
        )
        ranked = model.rank(ctx, space)
        selected = set(ranked[: min(top_k, len(ranked))])
        orders[profile.name] = tuple(
            indices for indices in row_major if indices in selected
        )
    return orders
