"""Training-corpus extraction for the learned surrogate.

Folds the three measurement stores the repo accumulates anyway into
one tidy list of :class:`TrainingRecord`\\ s - flat scalar-cell rows in
the :mod:`repro.analysis.records` convention, each stamped with its
schema version and provenance:

* the result cache (``results/.cache/<digest>.json``): measured
  ARCS-Offline cells carry per-region totals *and* the single
  configuration each region replayed, so time-per-call is attributable
  to one config;
* crash-safe sweep journals: the same full-fidelity results, one JSON
  line per completed cell.  Lines whose schema version does not match
  are **skipped and counted** - a mixed-version journal (written
  across an upgrade) must never abort a fold halfway through;
* telemetry JSONL: ``policy.apply`` / ``policy.report`` event pairs
  from search-mode runs - the richest source, one record per accepted
  probe measurement, config and cap taken from the apply event.

Every source is read-only and tolerant: torn lines, corrupt JSON,
unknown apps and mixed-config region totals (online runs) are skipped
and tallied in :class:`CorpusStats`, never raised.  The
``surrogate.corpus`` fault site is drawn once per candidate record so
chaos tests can prove damaged records degrade the downstream fit (to
the Nelder-Mead fallback) instead of crashing it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.experiments.cache import CACHE_SCHEMA_VERSION, result_from_json
from repro.experiments.journal import JOURNAL_SCHEMA_VERSION
from repro.experiments.runner import StrategyRunResult
from repro.faults.inject import FaultInjector
from repro.openmp.types import OMPConfig, ScheduleKind
from repro.util.atomicio import atomic_write_text

#: bump when the training-record layout changes; mismatched corpus
#: files refuse to load (the corpus is cheap to re-extract).
CORPUS_SCHEMA_VERSION = 1

#: run strategies whose per-region totals reflect a *single* config
#: (arcs-offline replays the chosen config for every call; online
#: runs mix search probes into the totals and are only usable through
#: their telemetry).
_SINGLE_CONFIG_STRATEGIES = ("arcs-offline",)


@dataclass(frozen=True)
class TrainingRecord:
    """One ``(region features, config, cap) -> objective`` sample.

    Region features are resolved from ``app``/``region`` at fit time
    (the application registry is the single source of truth for
    profiles); the record itself stays flat and scalar so it
    serializes through the :mod:`repro.analysis.records` backends.
    """

    app: str                 #: application label, e.g. ``"sp.B"``
    machine: str
    region: str
    cap_w: float | None      #: None = uncapped (TDP)
    n_threads: int
    schedule: str            #: ScheduleKind value, e.g. ``"guided"``
    chunk: int | None
    time_s: float            #: per-call region seconds (the objective)
    energy_j: float | None   #: per-call joules; None when unmeasured
    source: str              #: ``cache`` / ``journal`` / ``telemetry``
    provenance: str          #: file stem / digest the sample came from

    def config(self) -> OMPConfig:
        return OMPConfig(
            n_threads=self.n_threads,
            schedule=ScheduleKind(self.schedule),
            chunk=self.chunk,
        )

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, blob: dict) -> "TrainingRecord":
        return cls(
            app=str(blob["app"]),
            machine=str(blob["machine"]),
            region=str(blob["region"]),
            cap_w=None if blob["cap_w"] is None else float(blob["cap_w"]),
            n_threads=int(blob["n_threads"]),
            schedule=str(blob["schedule"]),
            chunk=None if blob["chunk"] is None else int(blob["chunk"]),
            time_s=float(blob["time_s"]),
            energy_j=(
                None if blob["energy_j"] is None
                else float(blob["energy_j"])
            ),
            source=str(blob["source"]),
            provenance=str(blob["provenance"]),
        )


@dataclass
class CorpusStats:
    """Fold accounting: what was kept and what was skipped, and why."""

    records: int = 0
    files: int = 0
    #: journal/cache entries stamped with a different schema version -
    #: skipped, not raised (the mixed-version-journal regression).
    skipped_schema: int = 0
    #: torn / corrupt / unparsable entries (including injected
    #: ``surrogate.corpus`` faults).
    skipped_damaged: int = 0
    #: entries that parsed but are unusable as training samples
    #: (mixed-config totals, zero calls, non-positive objective).
    skipped_unusable: int = 0
    notes: list[str] = field(default_factory=list)

    def note(self, text: str) -> None:
        note = f"surrogate corpus: {text}"
        if note not in self.notes:
            self.notes.append(note)

    def to_json(self) -> dict:
        return {
            "records": self.records,
            "files": self.files,
            "skipped_schema": self.skipped_schema,
            "skipped_damaged": self.skipped_damaged,
            "skipped_unusable": self.skipped_unusable,
            "notes": list(self.notes),
        }


def _draw_damage(
    faults: FaultInjector | None, stats: CorpusStats, where: str
) -> bool:
    """Poll the ``surrogate.corpus`` site for one candidate record;
    ``True`` means the record is to be treated as damaged."""
    if faults is None:
        return False
    spec = faults.draw("surrogate.corpus")
    if spec is None:
        return False
    stats.skipped_damaged += 1
    stats.note(
        f"{spec.action} training record injected at {where}; "
        "record skipped"
    )
    return True


# ---------------------------------------------------------------------------
# folding StrategyRunResults (cache + journal)
# ---------------------------------------------------------------------------
def fold_result(
    result: StrategyRunResult,
    *,
    source: str,
    provenance: str,
    stats: CorpusStats,
    faults: FaultInjector | None = None,
) -> list[TrainingRecord]:
    """Training records from one summarized run result.

    Only strategies that replay a single configuration per region are
    foldable (see ``_SINGLE_CONFIG_STRATEGIES``); anything else would
    attribute mixed-config totals to one config.
    """
    if result.strategy not in _SINGLE_CONFIG_STRATEGIES:
        stats.skipped_unusable += 1
        return []
    run = result.representative
    records: list[TrainingRecord] = []
    for region, config in sorted(result.chosen_configs.items()):
        totals = run.region_totals.get(region)
        if totals is None or totals.calls <= 0:
            stats.skipped_unusable += 1
            continue
        time_s = totals.time_per_call_s
        if not time_s > 0.0:
            stats.skipped_unusable += 1
            continue
        if _draw_damage(faults, stats, f"{provenance}:{region}"):
            continue
        energy = (
            None
            if run.energy_j is None
            else totals.energy_j / totals.calls
        )
        records.append(
            TrainingRecord(
                app=result.app_label,
                machine=result.machine,
                region=region,
                cap_w=result.cap_w,
                n_threads=config.n_threads,
                schedule=config.schedule.value,
                chunk=config.chunk,
                time_s=time_s,
                energy_j=energy,
                source=source,
                provenance=provenance,
            )
        )
    stats.records += len(records)
    return records


def fold_cache_dir(
    directory: str | Path,
    stats: CorpusStats,
    faults: FaultInjector | None = None,
) -> list[TrainingRecord]:
    """Fold every readable entry of a result-cache directory."""
    directory = Path(directory)
    records: list[TrainingRecord] = []
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.json")):
        stats.files += 1
        try:
            blob = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            stats.skipped_damaged += 1
            stats.note(f"unreadable cache entry {path.name}; skipped")
            continue
        if (
            not isinstance(blob, dict)
            or blob.get("schema") != CACHE_SCHEMA_VERSION
        ):
            stats.skipped_schema += 1
            continue
        try:
            result = result_from_json(blob["result"])
        except (KeyError, TypeError, ValueError, IndexError):
            stats.skipped_damaged += 1
            stats.note(f"corrupt cache entry {path.name}; skipped")
            continue
        records.extend(
            fold_result(
                result,
                source="cache",
                provenance=path.stem,
                stats=stats,
                faults=faults,
            )
        )
    return records


def fold_journal(
    path: str | Path,
    stats: CorpusStats,
    faults: FaultInjector | None = None,
) -> list[TrainingRecord]:
    """Fold the completed cells of one sweep journal.

    Read-only (unlike :meth:`SweepJournal.load`, which truncates torn
    tails in place): a fold must never mutate the sweep's own recovery
    log.  Records from mismatched schema versions are skipped and
    counted - never raised mid-fold - so journals spanning a schema
    upgrade still contribute every line they can.
    """
    path = Path(path)
    records: list[TrainingRecord] = []
    try:
        data = path.read_bytes()
    except OSError:
        stats.note(f"unreadable journal {path.name}; skipped")
        return records
    stats.files += 1
    for raw in data.splitlines():
        line = raw.decode(errors="replace").strip()
        if not line:
            continue
        try:
            blob = json.loads(line)
        except json.JSONDecodeError:
            stats.skipped_damaged += 1
            stats.note(
                f"torn/corrupt journal line in {path.name}; skipped"
            )
            continue
        if not isinstance(blob, dict) or blob.get("kind") == "header":
            continue
        if blob.get("schema") != JOURNAL_SCHEMA_VERSION:
            stats.skipped_schema += 1
            continue
        try:
            result = result_from_json(blob["result"])
            digest = str(blob["digest"])
        except (KeyError, TypeError, ValueError, IndexError):
            stats.skipped_damaged += 1
            stats.note(
                f"corrupt journal record in {path.name}; skipped"
            )
            continue
        records.extend(
            fold_result(
                result,
                source="journal",
                provenance=f"{path.stem}:{digest[:16]}",
                stats=stats,
                faults=faults,
            )
        )
    return records


# ---------------------------------------------------------------------------
# folding telemetry JSONL
# ---------------------------------------------------------------------------
def _parse_config_label(label: str) -> OMPConfig | None:
    """Inverse of :meth:`OMPConfig.label` (``"16, guided, 8"``)."""
    parts = [p.strip() for p in label.split(",")]
    if len(parts) != 3:
        return None
    try:
        chunk = None if parts[2] == "default" else int(parts[2])
        return OMPConfig(
            n_threads=int(parts[0]),
            schedule=ScheduleKind(parts[1]),
            chunk=chunk,
        )
    except (ValueError, KeyError):
        return None


def fold_telemetry_file(
    path: str | Path,
    stats: CorpusStats,
    faults: FaultInjector | None = None,
) -> list[TrainingRecord]:
    """Training records from one telemetry JSONL file.

    Pairs each accepted ``policy.report`` with the preceding
    ``policy.apply`` of the same region (the config/cap the
    measurement ran under); the ``run.meta`` record supplies the app
    and machine identity.  Files without a usable meta record yield
    nothing (tallied as unusable).
    """
    path = Path(path)
    records: list[TrainingRecord] = []
    try:
        lines = path.read_text(errors="replace").splitlines()
    except OSError:
        stats.note(f"unreadable telemetry file {path.name}; skipped")
        return records
    stats.files += 1
    app = machine = None
    applied: dict[str, tuple[OMPConfig, float | None]] = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            blob = json.loads(line)
        except json.JSONDecodeError:
            stats.skipped_damaged += 1
            continue
        if not isinstance(blob, dict):
            continue
        attrs = blob.get("attrs")
        if not isinstance(attrs, dict):
            continue
        if blob.get("type") == "meta":
            app = attrs.get("app") or app
            machine = attrs.get("machine") or machine
            continue
        if blob.get("type") != "event":
            continue
        name = blob.get("name")
        if name == "policy.apply":
            config = _parse_config_label(str(attrs.get("config", "")))
            region = attrs.get("region")
            if config is None or not isinstance(region, str):
                stats.skipped_unusable += 1
                continue
            cap = attrs.get("cap_w")
            applied[region] = (
                config,
                None if cap is None else float(cap),
            )
        elif name == "policy.report":
            region = attrs.get("region")
            if not isinstance(region, str) or region not in applied:
                stats.skipped_unusable += 1
                continue
            if attrs.get("accepted") is False:
                stats.skipped_unusable += 1
                continue
            try:
                time_s = float(attrs["objective"])
            except (KeyError, TypeError, ValueError):
                stats.skipped_unusable += 1
                continue
            if not time_s > 0.0 or app is None or machine is None:
                stats.skipped_unusable += 1
                continue
            if _draw_damage(faults, stats, f"{path.name}:{region}"):
                continue
            config, cap_w = applied[region]
            records.append(
                TrainingRecord(
                    app=str(app),
                    machine=str(machine),
                    region=region,
                    cap_w=cap_w,
                    n_threads=config.n_threads,
                    schedule=config.schedule.value,
                    chunk=config.chunk,
                    time_s=time_s,
                    energy_j=None,
                    source="telemetry",
                    provenance=path.stem,
                )
            )
    stats.records += len(records)
    return records


def fold_telemetry_dir(
    directory: str | Path,
    stats: CorpusStats,
    faults: FaultInjector | None = None,
) -> list[TrainingRecord]:
    """Fold every ``*.jsonl`` file under a telemetry directory."""
    directory = Path(directory)
    records: list[TrainingRecord] = []
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.jsonl")):
        records.extend(fold_telemetry_file(path, stats, faults))
    return records


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------
def save_corpus(
    records: list[TrainingRecord],
    stats: CorpusStats,
    path: str | Path,
) -> Path:
    """Persist a folded corpus atomically (schema stamp + stats)."""
    blob = {
        "schema": CORPUS_SCHEMA_VERSION,
        "stats": stats.to_json(),
        "records": [r.to_json() for r in records],
    }
    return atomic_write_text(path, json.dumps(blob, indent=2) + "\n")


def load_corpus(
    path: str | Path,
) -> tuple[list[TrainingRecord], CorpusStats]:
    """Inverse of :func:`save_corpus`; raises ``ValueError`` on a
    missing/corrupt file or a mismatched schema stamp."""
    try:
        blob = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"cannot read corpus {path}: {exc}") from exc
    if (
        not isinstance(blob, dict)
        or blob.get("schema") != CORPUS_SCHEMA_VERSION
    ):
        raise ValueError(
            f"corpus {path} has unsupported schema "
            f"{blob.get('schema') if isinstance(blob, dict) else '?'!r}"
        )
    stats_blob = blob.get("stats", {})
    stats = CorpusStats(
        records=int(stats_blob.get("records", 0)),
        files=int(stats_blob.get("files", 0)),
        skipped_schema=int(stats_blob.get("skipped_schema", 0)),
        skipped_damaged=int(stats_blob.get("skipped_damaged", 0)),
        skipped_unusable=int(stats_blob.get("skipped_unusable", 0)),
        notes=[str(n) for n in stats_blob.get("notes", [])],
    )
    records = [TrainingRecord.from_json(r) for r in blob["records"]]
    return records, stats
