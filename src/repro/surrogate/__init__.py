"""Learned surrogate search: corpus-trained config ranking.

The package turns the measurement corpus the repo accumulates anyway -
the result cache, crash-safe sweep journals, telemetry JSONL - into a
cheap learned performance model, then uses it to *rank* the Table I
space so a tuning run measures only the most promising configurations:

* :mod:`repro.surrogate.corpus` - fold cached results / journals /
  telemetry into tidy ``(region features, config, cap) -> time``
  training records with schema stamps and provenance;
* :mod:`repro.surrogate.model`  - feature-hashed ridge regression with
  optional tiny-MLP refinement (pure numpy, seeded, byte-
  deterministic), save/load via :mod:`repro.util.atomicio`, plus a
  held-out fit-quality report;
* :mod:`repro.surrogate.plan`   - runner glue: per-region ranked probe
  orders for the ``surrogate`` search strategy, and the Nelder-Mead
  fallback decision when the fit cannot be trusted;
* :mod:`repro.surrogate.source` - the cold-start
  :class:`~repro.service.source.ConfigSource` tier serving predicted
  configurations for contexts nothing has tuned yet.

Fallbacks everywhere are degradations, never errors: a damaged corpus
record, a non-finite fit or an unusable model file all surface as
typed degradation notes while the run completes via Nelder-Mead (or
fresh tuning, for the cold-start tier).
"""

from repro.surrogate.corpus import (
    CORPUS_SCHEMA_VERSION,
    CorpusStats,
    TrainingRecord,
    fold_cache_dir,
    fold_journal,
    fold_telemetry_dir,
    load_corpus,
    save_corpus,
)
from repro.surrogate.model import (
    MODEL_SCHEMA_VERSION,
    FitReport,
    SurrogateError,
    SurrogateModel,
    fit_surrogate,
    load_model,
    save_model,
)
from repro.surrogate.plan import (
    DEFAULT_MAX_FIT_ERROR,
    DEFAULT_TOP_K,
    SurrogateTuning,
    surrogate_orders,
)
from repro.surrogate.source import SurrogateColdStartSource

__all__ = [
    "CORPUS_SCHEMA_VERSION",
    "CorpusStats",
    "TrainingRecord",
    "fold_cache_dir",
    "fold_journal",
    "fold_telemetry_dir",
    "load_corpus",
    "save_corpus",
    "MODEL_SCHEMA_VERSION",
    "FitReport",
    "SurrogateError",
    "SurrogateModel",
    "fit_surrogate",
    "load_model",
    "save_model",
    "DEFAULT_MAX_FIT_ERROR",
    "DEFAULT_TOP_K",
    "SurrogateTuning",
    "surrogate_orders",
    "SurrogateColdStartSource",
]
