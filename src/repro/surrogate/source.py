"""Cold-start tier: serve *predicted* configurations for untuned
contexts.

:class:`SurrogateColdStartSource` sits at the bottom of the
config-source chain (after the service / memo / history tiers, before
fresh tuning).  When every measured-knowledge tier misses, it parses
the experiment key back into an (app, machine, cap) context, asks the
surrogate for the best-predicted configuration of every region, and
serves those - so a region nothing has ever tuned still starts from a
model-informed configuration instead of paying a fresh search.

Two safety properties:

* **predictions never masquerade as measurements.**  The tier sets
  ``promote = False``, so the chain never writes a predicted entry
  into the service / memo / history tiers, and the entry's objective
  values are all ``None`` (there was no measurement).  A hit is also
  recorded as a degradation note naming the tier, because the run's
  configurations are unvalidated;
* **an untrusted model never serves.**  The same fallback contract as
  the search strategy applies (:meth:`SurrogateTuning.fallback_reason`):
  an unusable or high-error fit makes every lookup a miss, degrading
  to fresh tuning.
"""

from __future__ import annotations

from repro.core.config import config_from_point, search_space_for
from repro.machine.spec import machine_by_name
from repro.openmp.types import OMPConfig
from repro.service.source import ConfigKey, ConfigSource, Entry
from repro.surrogate.model import context_from_profile
from repro.surrogate.plan import SurrogateTuning
from repro.workloads.registry import application_by_name


def _parse_experiment(key: str):
    """``app|machine|cap|workload`` back into parts; ``None`` when the
    key does not look like :func:`repro.core.history.experiment_key`
    output."""
    parts = key.split("|")
    if len(parts) != 4:
        return None
    app, machine, cap_label, workload = parts
    if cap_label == "tdp":
        cap_w: float | None = None
    elif cap_label.endswith("W"):
        try:
            cap_w = float(cap_label[:-1])
        except ValueError:
            return None
    else:
        return None
    return app, machine, cap_w, workload


class SurrogateColdStartSource(ConfigSource):
    """Model-predicted configurations as a (non-promoting) chain tier."""

    name = "surrogate"
    #: never re-warm upper tiers with predictions - only measured
    #: knowledge may enter the service / memo / history tiers.
    promote = False

    def __init__(self, tuning: SurrogateTuning) -> None:
        super().__init__()
        self.tuning = tuning
        #: lookups served, for tests and reports.
        self.hits = 0

    def lookup(self, key: ConfigKey) -> Entry | None:
        reason = self.tuning.fallback_reason()
        if reason is not None:
            self._note(
                f"model not trusted ({reason}); cold-start disabled"
            )
            return None
        parsed = _parse_experiment(key.experiment)
        if parsed is None:
            self._note(
                f"unrecognized experiment key {key.experiment!r}; "
                "cannot predict for it"
            )
            return None
        app_name, machine, cap_w, workload = parsed
        try:
            app = application_by_name(app_name, workload or None)
            spec = machine_by_name(machine)
        except ValueError as exc:
            self._note(f"cannot resolve experiment context ({exc})")
            return None
        space = search_space_for(spec)
        configs: dict[str, OMPConfig] = {}
        values: dict[str, float | None] = {}
        for profile in app.regions():
            ctx = context_from_profile(
                app.label, spec.name, cap_w, profile, spec.tdp_w
            )
            best = self.tuning.model.rank(ctx, space)[0]
            configs[profile.name] = config_from_point(
                space.decode(best)
            )
            values[profile.name] = None  # predicted, never measured
        if not configs:
            return None
        self.hits += 1
        self._note(
            "served model-predicted configurations for "
            f"{len(configs)} region(s); unvalidated cold start"
        )
        return configs, values

    def publish(self, key: ConfigKey, entry: Entry) -> None:
        """Nothing to store - predictions are derived, not kept."""
