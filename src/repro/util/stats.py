"""Statistics helpers mirroring the paper's reporting methodology.

Section IV-D: each experiment was run three times; Crill results report
the *average* (dedicated machine), Minotaur results report the
*minimum* (shared machine, to rule out interference).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def summarize_runs(values: Sequence[float], mode: str = "mean") -> float:
    """Collapse repeated-run measurements per the paper's methodology.

    ``mode`` is ``"mean"`` (Crill) or ``"min"`` (Minotaur).
    """
    if len(values) == 0:
        raise ValueError("summarize_runs needs at least one value")
    arr = np.asarray(values, dtype=float)
    if mode == "mean":
        return float(arr.mean())
    if mode == "min":
        return float(arr.min())
    raise ValueError(f"unknown summary mode {mode!r}")


def normalize(values: Sequence[float], baseline: float) -> list[float]:
    """Normalize ``values`` by ``baseline`` (the paper's figures plot
    values normalized to the default configuration)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be > 0, got {baseline!r}")
    return [float(v) / baseline for v in values]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, used when aggregating improvement ratios."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("geomean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires strictly positive values")
    return float(np.exp(np.log(arr).mean()))


def improvement_pct(baseline: float, value: float) -> float:
    """Percent improvement of ``value`` over ``baseline`` (positive is
    better, i.e. smaller time/energy)."""
    if baseline <= 0:
        raise ValueError(f"baseline must be > 0, got {baseline!r}")
    return 100.0 * (baseline - value) / baseline
