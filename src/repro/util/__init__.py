"""Shared utilities: deterministic RNG, unit helpers, validation, stats.

These helpers are deliberately dependency-light; every other subpackage
builds on them.
"""

from repro.util.rng import derive_seed, rng_for
from repro.util.stats import geomean, normalize, summarize_runs
from repro.util.units import GHZ, KIB, MIB, ms, us
from repro.util.validation import (
    require_in,
    require_nonnegative,
    require_positive,
)

__all__ = [
    "GHZ",
    "KIB",
    "MIB",
    "derive_seed",
    "geomean",
    "ms",
    "normalize",
    "require_in",
    "require_nonnegative",
    "require_positive",
    "rng_for",
    "summarize_runs",
    "us",
]
