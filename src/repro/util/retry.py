"""One seeded, telemetry-visible retry/backoff policy for every loop.

Before this module the repo had three hand-rolled retry loops - the
runner's power-cap write, the cap-schedule event write, and the
harness's wraparound-safe energy read - each a bare ``for`` with its
own hardcoded attempt count and no visibility.  The tuning service
client adds a fourth (network requests), which finally wants real
backoff.  :class:`RetryPolicy` is the single implementation all of
them share:

* attempts are bounded and validated;
* delays follow jittered exponential backoff, where the jitter is
  drawn from the repro seed (:func:`repro.util.rng.rng_for`), so a
  retried run replays the exact same delay schedule - network retries
  stay inside the determinism contract every robustness test leans on;
* every failed attempt is emitted as a ``retry.attempt`` telemetry
  event (when the bus is enabled), so ``repro trace`` shows retry
  storms instead of hiding them.

The pre-existing loops keep their exact behaviour: they use
``base_delay_s=0`` (no sleeping - backoff in simulated-time components
is the node clock's job) and the same attempt counts as before.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import TypeVar

from repro.telemetry.bus import bus
from repro.util.rng import rng_for

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded, seeded, jittered-exponential retry schedule.

    ``attempts`` counts *total* calls (first try included).  Delay
    before retry ``n`` (1-based, after the ``n``-th failure) is
    ``min(base_delay_s * multiplier**(n-1), max_delay_s)``, shrunk by
    up to ``jitter`` fraction drawn deterministically from ``seed``
    (jitter only ever shortens the wait, so the deterministic delay is
    also the worst case).  ``base_delay_s=0`` disables sleeping
    entirely - the mode every simulated-time retry loop uses.
    """

    attempts: int = 3
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(
                f"attempts must be >= 1, got {self.attempts}"
            )
        if self.base_delay_s < 0:
            raise ValueError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    # ------------------------------------------------------------------
    def delay_s(self, failure: int, *salt: object) -> float:
        """Backoff before the retry following failure ``failure``
        (1-based).  Deterministic given (seed, salt, failure)."""
        if self.base_delay_s <= 0:
            return 0.0
        delay = min(
            self.base_delay_s * self.multiplier ** (failure - 1),
            self.max_delay_s,
        )
        if self.jitter > 0.0:
            frac = rng_for(
                self.seed, "retry", *salt, failure
            ).random()
            delay *= 1.0 - self.jitter * frac
        return delay

    def delays(self, *salt: object) -> Iterator[float]:
        """The full backoff schedule (``attempts - 1`` delays)."""
        for failure in range(1, self.attempts):
            yield self.delay_s(failure, *salt)

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[[], T],
        *,
        retry_on: type[BaseException] | tuple[type[BaseException], ...],
        site: str = "retry",
        salt: tuple[object, ...] = (),
        sleep: Callable[[float], None] = time.sleep,
        on_failure: Callable[[int, BaseException], None] | None = None,
    ) -> T:
        """Call ``fn`` up to ``attempts`` times.

        Exceptions matching ``retry_on`` are caught, reported to
        telemetry as ``retry.attempt`` events (``site`` names the
        caller) and to ``on_failure(attempt, exc)`` - which runs after
        *every* failure including the last, so callers can back off in
        simulated time (e.g. ``settle_after_cap``) regardless of
        whether another attempt follows.  When all attempts fail the
        last exception is re-raised; callers that degrade instead of
        failing catch it.  Any other exception propagates immediately.
        """
        last: BaseException | None = None
        for attempt in range(1, self.attempts + 1):
            try:
                return fn()
            except retry_on as exc:
                last = exc
                tb = bus()
                if tb.enabled:
                    tb.count("retry.failures")
                    tb.emit(
                        "retry.attempt",
                        site=site,
                        attempt=attempt,
                        attempts=self.attempts,
                        error=type(exc).__name__,
                    )
                if on_failure is not None:
                    on_failure(attempt, exc)
                if attempt < self.attempts:
                    delay = self.delay_s(attempt, *salt)
                    if delay > 0.0:
                        sleep(delay)
        assert last is not None
        raise last
