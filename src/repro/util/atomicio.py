"""Atomic file writes shared by every persistence layer.

The history store, the result cache and the run checkpoints all need
the same guarantee: a reader (or a resumed run) must never observe a
half-written file, even if the writer is ``kill -9``'d mid-write.  The
standard POSIX recipe - write to a temp file in the same directory,
then ``os.replace`` over the target - provides it; this module is the
one implementation of that recipe.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + replace).

    Parent directories are created as needed.  On any failure the temp
    file is removed, so a crash can leave either the old file or the
    new one - never a torn mixture, never stray temp litter that a
    retry would trip over.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path
