"""Small argument-validation helpers with uniform error messages."""

from __future__ import annotations

from collections.abc import Container
from typing import TypeVar

T = TypeVar("T")


def require_positive(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_nonnegative(name: str, value: float) -> float:
    """Raise :class:`ValueError` unless ``value`` is >= 0."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in(name: str, value: T, allowed: Container[T]) -> T:
    """Raise :class:`ValueError` unless ``value`` is a member of ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
