"""Unit constants and converters used across the machine models.

Internally the simulator works in SI base units: seconds, watts,
joules, bytes, hertz.  These helpers keep call sites legible.
"""

from __future__ import annotations

KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024

GHZ: float = 1.0e9
MHZ: float = 1.0e6


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * 1.0e-3


def us(value: float) -> float:
    """Microseconds to seconds."""
    return value * 1.0e-6


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * 1.0e-9


def ghz(value: float) -> float:
    """Gigahertz to hertz."""
    return value * GHZ


def gib_per_s(value: float) -> float:
    """GiB/s to bytes/s."""
    return value * GIB
