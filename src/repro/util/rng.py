"""Deterministic random-number management.

Every stochastic element of the simulator (run-to-run noise, region
imbalance profiles, search tie-breaking) draws from a generator derived
from a *root seed* plus a stable string key, so that

* whole experiments are reproducible bit-for-bit given the seed, and
* adding a new consumer of randomness never perturbs existing streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(root: int, *keys: object) -> int:
    """Derive a child seed from ``root`` and a sequence of hashable keys.

    The derivation is a SHA-256 over the decimal root and the ``repr``
    of each key, truncated to 64 bits.  It is stable across processes
    and Python versions (unlike ``hash``).
    """
    h = hashlib.sha256()
    h.update(str(int(root)).encode())
    for key in keys:
        h.update(b"\x1f")
        h.update(repr(key).encode())
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def rng_for(root: int, *keys: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for a derived stream."""
    return np.random.default_rng(derive_seed(root, *keys))
