"""Plain-text table rendering for the benchmark harness.

The paper's tables/figures are regenerated as aligned ASCII tables so
benchmark output can be eyeballed against the paper.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
