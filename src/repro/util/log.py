"""Structured logging for CLI tools and harness scripts.

One tiny module instead of ``print`` scattered across tools: every
line goes through a :class:`Logger` that renders either a human
format (``repro[soak] INFO message key=value``) or single-line JSON
(``{"level":"info","logger":"soak","msg":...,...}``), selected by
configuration.  Levels follow the usual ladder (debug < info <
warning < error); suppressed lines cost one integer compare.

Configuration precedence (first match wins):

1. an explicit :func:`configure` call (the CLI's ``--log-level``);
2. the ``REPRO_LOG`` environment variable - ``REPRO_LOG=debug`` or
   ``REPRO_LOG=debug:json`` (level, optionally ``:json``/``:human``);
3. the defaults: level ``info``, human format, stderr.

Deliberately *not* the stdlib ``logging`` module: no global handler
registry to fight with in tests, no wall-clock timestamps (tool
output stays byte-stable across runs at the same seed), and the JSON
rendering matches the telemetry sinks' strict encoder
(``allow_nan=False``, sorted keys).
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, TextIO

#: level names in severity order; index = numeric severity.
LEVELS = ("debug", "info", "warning", "error")

_LEVEL_NO = {name: i for i, name in enumerate(LEVELS)}


class LogConfig:
    """Process-wide rendering configuration shared by all loggers."""

    def __init__(
        self,
        level: str = "info",
        fmt: str = "human",
        stream: TextIO | None = None,
    ) -> None:
        self.level_no = _parse_level(level)
        self.fmt = _parse_fmt(fmt)
        self.stream = stream

    def resolve_stream(self) -> TextIO:
        # late-bound so tests that swap sys.stderr still capture output
        return self.stream if self.stream is not None else sys.stderr


def _parse_level(level: str) -> int:
    try:
        return _LEVEL_NO[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from "
            f"{', '.join(LEVELS)}"
        ) from None


def _parse_fmt(fmt: str) -> str:
    fmt = fmt.strip().lower()
    if fmt not in ("human", "json"):
        raise ValueError(
            f"unknown log format {fmt!r}; choose 'human' or 'json'"
        )
    return fmt


def _config_from_env() -> LogConfig:
    """``REPRO_LOG=level[:format]``; malformed values fall back to the
    defaults rather than crashing the tool at import time."""
    raw = os.environ.get("REPRO_LOG", "")
    level, _, fmt = raw.partition(":")
    try:
        return LogConfig(level=level or "info", fmt=fmt or "human")
    except ValueError:
        return LogConfig()


_CONFIG = _config_from_env()


def configure(
    level: str | None = None,
    fmt: str | None = None,
    stream: TextIO | None = None,
) -> None:
    """Override the process-wide log configuration (CLI flags beat the
    ``REPRO_LOG`` environment).  ``None`` keeps the current value."""
    if level is not None:
        _CONFIG.level_no = _parse_level(level)
    if fmt is not None:
        _CONFIG.fmt = _parse_fmt(fmt)
    if stream is not None:
        _CONFIG.stream = stream


class Logger:
    """A named emitter bound to the shared configuration."""

    def __init__(self, name: str) -> None:
        self.name = name

    # -- level methods -------------------------------------------------
    def debug(self, msg: str, **fields: Any) -> None:
        self._log(0, msg, fields)

    def info(self, msg: str, **fields: Any) -> None:
        self._log(1, msg, fields)

    def warning(self, msg: str, **fields: Any) -> None:
        self._log(2, msg, fields)

    def error(self, msg: str, **fields: Any) -> None:
        self._log(3, msg, fields)

    # ------------------------------------------------------------------
    def _log(self, level_no: int, msg: str, fields: dict) -> None:
        if level_no < _CONFIG.level_no:
            return
        stream = _CONFIG.resolve_stream()
        if _CONFIG.fmt == "json":
            line = json.dumps(
                {
                    "level": LEVELS[level_no],
                    "logger": self.name,
                    "msg": msg,
                    **fields,
                },
                sort_keys=True,
                allow_nan=False,
                default=str,
            )
        else:
            suffix = "".join(
                f" {key}={_human_value(value)}"
                for key, value in fields.items()
            )
            line = (
                f"repro[{self.name}] "
                f"{LEVELS[level_no].upper()} {msg}{suffix}"
            )
        stream.write(line + "\n")
        stream.flush()


def _human_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    text = str(value)
    return repr(text) if " " in text else text


def get_logger(name: str) -> Logger:
    """The logger for ``name``; cheap enough to call at use sites."""
    return Logger(name)
