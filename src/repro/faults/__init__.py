"""Deterministic fault injection for the ARCS reproduction.

Models the measurement-stack failure modes the paper's Section IV-D
calls the "known issues of RAPL" (and their harness-level cousins):
flaky counter reads, stale/wrapping counters, rejected cap writes,
dropped OMPT timer events, timing-noise spikes, and crashed or hung
sweep workers.  See :mod:`repro.faults.plan` for the site/action
catalogue and :mod:`repro.faults.inject` for runtime semantics.
"""

from repro.faults.inject import FaultEvent, FaultInjector, make_injector
from repro.faults.plan import (
    DEFAULT_HANG_S,
    DEFAULT_SPIKE_FACTOR,
    FAULT_SITES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    load_fault_plan,
    save_fault_plan,
)

__all__ = [
    "DEFAULT_HANG_S",
    "DEFAULT_SPIKE_FACTOR",
    "FAULT_SITES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "load_fault_plan",
    "make_injector",
    "save_fault_plan",
]
