"""The fault injector: deterministic runtime evaluation of a plan.

Each injection point in the stack (RAPL reads, cap writes, OMPT timer
events, the sweep executor) owns one line of code::

    spec = injector.draw("rapl.read")
    if spec is not None:
        ...misbehave according to spec.action...

``draw`` keeps a per-site occurrence counter; whether occurrence *n*
at a site fires is a pure function of ``(plan.seed, salt, site, spec
index, n)``, so a faulted run replays bit-for-bit given the same plan
- the property every robustness test leans on.  The injector also logs
every fired fault as a :class:`FaultEvent` for assertions and
reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import FaultPlan, FaultSpec
from repro.telemetry.bus import bus
from repro.util.rng import rng_for


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault (for logs and test assertions)."""

    site: str
    action: str
    occurrence: int


@dataclass
class FaultInjector:
    """Evaluates a :class:`FaultPlan` at runtime.

    ``salt`` decorrelates probability draws between otherwise identical
    injectors (e.g. the per-repeat runtimes of one experiment) while
    keeping each stream deterministic.
    """

    plan: FaultPlan
    salt: object = 0
    _counters: dict[str, int] = field(default_factory=dict)
    _fires: dict[int, int] = field(default_factory=dict)
    events: list[FaultEvent] = field(default_factory=list)

    def draw(self, site: str) -> FaultSpec | None:
        """Advance the site's occurrence counter; return the first armed
        spec that fires for this occurrence, or ``None``."""
        n = self._counters.get(site, 0)
        self._counters[site] = n + 1
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or n < spec.start:
                continue
            if (
                spec.max_fires is not None
                and self._fires.get(index, 0) >= spec.max_fires
            ):
                continue
            if spec.probability < 1.0:
                rng = rng_for(
                    self.plan.seed, "fault", self.salt, site, index, n
                )
                if rng.random() >= spec.probability:
                    continue
            self._fires[index] = self._fires.get(index, 0) + 1
            self.events.append(FaultEvent(site, spec.action, n))
            tb = bus()
            if tb.enabled:
                tb.count("faults.fired")
                tb.emit(
                    "fault.fired",
                    site=site,
                    action=spec.action,
                    occurrence=n,
                )
            return spec
        return None

    def snapshot(self) -> dict:
        """JSON-ready state: occurrence counters, per-spec fire counts
        and the fired-event log.  Together with the (plan, salt) pair -
        which the resuming runner reconstructs from the experiment
        setup - this makes ``draw`` resume exactly where it left off."""
        return {
            "counters": dict(self._counters),
            "fires": {str(k): v for k, v in self._fires.items()},
            "events": [
                [e.site, e.action, e.occurrence] for e in self.events
            ],
        }

    def restore(self, blob: dict) -> None:
        """Inverse of :meth:`snapshot` (JSON forces string keys on the
        fire counts; convert them back to spec indices)."""
        self._counters = {
            str(site): int(n) for site, n in blob["counters"].items()
        }
        self._fires = {
            int(k): int(v) for k, v in blob["fires"].items()
        }
        self.events = [
            FaultEvent(site, action, int(occurrence))
            for site, action, occurrence in blob["events"]
        ]

    def occurrences(self, site: str) -> int:
        """How many times ``site`` has been polled so far."""
        return self._counters.get(site, 0)

    def fired(self, site: str | None = None) -> int:
        """Total faults fired (optionally restricted to one site)."""
        if site is None:
            return len(self.events)
        return sum(1 for e in self.events if e.site == site)


def make_injector(
    plan: FaultPlan | None, salt: object = 0
) -> FaultInjector | None:
    """Injector for ``plan``, or ``None`` for empty/absent plans (the
    fast path: components skip fault checks entirely)."""
    if plan is None or not plan.specs:
        return None
    return FaultInjector(plan, salt=salt)
