"""Typed fault plans.

The paper's Section IV-D exists because real RAPL is not a clean
oracle: energy-status counters only refresh about once a millisecond,
wrap at 32 bits, caps need a warm-up interval after being written, and
per-region timings under a cap are noisy.  A :class:`FaultPlan` is a
declarative, seedable description of those misbehaviours (plus harness
level failures - crashed or hung sweep workers) that the simulator's
injection points consult at runtime.

A plan is a tuple of :class:`FaultSpec` entries.  Every spec names an
*injection site* (where in the stack the fault can fire) and an
*action* (what goes wrong there):

========================  =======================================
site                      actions
========================  =======================================
``rapl.read``             ``error`` / ``stale`` / ``wraparound``
``rapl.cap_write``        ``reject``
``ompt.timer_start``      ``drop``
``ompt.timer_stop``       ``drop``
``measure.noise``         ``spike``
``sweep.worker``          ``crash`` / ``hang``
``region.exec``           ``crash`` / ``hang``
``service.connect``       ``refused``
``service.response``      ``hang`` / ``slow``
``service.payload``       ``torn`` / ``corrupt``
``service.server``        ``crash``
``fleet.node``            ``crash`` / ``hang``
``fleet.telemetry``       ``drop`` / ``partition``
``fleet.cap_write``       ``reject``
``fleet.membership``      ``flap``
``surrogate.corpus``      ``torn`` / ``corrupt``
``surrogate.fit``         ``nonfinite``
========================  =======================================

The ``service.*`` sites model the network between a tuning-service
client and the ``repro serve`` daemon (:mod:`repro.service`):
connection refused, a response that hangs past the client deadline (or
is merely ``slow`` by ``magnitude`` seconds), a payload torn mid-byte
or bit-flipped into invalid JSON, and the server dying halfway through
writing a response.  They are consulted by the client transport and
the daemon writer, and every one of them must degrade the client to
the next :class:`~repro.service.source.ConfigSource` tier, never to an
error.

``region.exec`` faults fire *inside* a run, at individual region
executions, and are handled by the watchdog layer in
:mod:`repro.supervise` (retry, pin to default, abort) rather than by
the sweep executor.

The ``surrogate.*`` sites model damage to the learned-surrogate
pipeline (:mod:`repro.surrogate`): a training record torn mid-write or
bit-flipped on disk (``surrogate.corpus``, drawn once per candidate
record during corpus folding - the record is skipped and counted, the
fold never raises) and a model fit whose solve blows up into
non-finite weights (``surrogate.fit``, drawn once per fit).  Either
way the surrogate run must degrade to the Nelder-Mead fallback with a
typed degradation note, never to a crash.

The ``fleet.*`` sites model failures of whole nodes inside a
:mod:`repro.fleet` simulation: a node process dying permanently
(``crash``) or stalling as a straggler for ``magnitude`` fleet steps
(``hang``), the telemetry channel losing a single heartbeat report
(``drop``) or partitioning the node away for ``magnitude`` steps while
it keeps working (``partition``), a per-node cap write being rejected
by the node's firmware (``cap_write``/``reject``) and a flapping
member whose heartbeats alternate for ``magnitude`` steps
(``membership``/``flap``).  They are polled once per node per fleet
step by :class:`~repro.fleet.sim.FleetSimulation`, in roster order, so
a faulted fleet run replays bit-for-bit.

Plans serialize to/from JSON (the CLI's ``--faults plan.json``), are
frozen/hashable (they ride inside :class:`~repro.experiments.runner.
ExperimentSetup` and picklable sweep tasks) and carry their own seed,
so a plan file fully determines which occurrences fire.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

#: injection site -> allowed actions.
FAULT_SITES: dict[str, tuple[str, ...]] = {
    "rapl.read": ("error", "stale", "wraparound"),
    "rapl.cap_write": ("reject",),
    "ompt.timer_start": ("drop",),
    "ompt.timer_stop": ("drop",),
    "measure.noise": ("spike",),
    "sweep.worker": ("crash", "hang"),
    "region.exec": ("crash", "hang"),
    "service.connect": ("refused",),
    "service.response": ("hang", "slow"),
    "service.payload": ("torn", "corrupt"),
    "service.server": ("crash",),
    "fleet.node": ("crash", "hang"),
    "fleet.telemetry": ("drop", "partition"),
    "fleet.cap_write": ("reject",),
    "fleet.membership": ("flap",),
    "surrogate.corpus": ("torn", "corrupt"),
    "surrogate.fit": ("nonfinite",),
}

#: default spike factor for ``measure.noise``: a timer glitch on a
#: millisecond-granular counter can mis-report by orders of magnitude.
DEFAULT_SPIKE_FACTOR = 1.0e4

#: default simulated hang duration for ``sweep.worker``/``hang``.
DEFAULT_HANG_S = 2.0

#: default fleet-step durations for the ``fleet.*`` window faults
#: (used when the spec carries no ``magnitude``).
DEFAULT_FLEET_HANG_STEPS = 3
DEFAULT_FLEET_PARTITION_STEPS = 4
DEFAULT_FLEET_FLAP_STEPS = 6


class FaultPlanError(ValueError):
    """A fault plan (or plan file) is malformed."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault class armed at one injection site.

    ``start`` and ``max_fires`` bound the occurrence window: the spec
    is eligible from the ``start``-th event at its site (0-based) and
    fires at most ``max_fires`` times (``None`` = unbounded).
    ``probability`` < 1 draws a deterministic per-occurrence coin from
    the plan seed.  ``magnitude`` parameterizes the action: the spike
    factor for ``measure.noise``, the hang seconds for
    ``sweep.worker``/``hang``.
    """

    site: str
    action: str
    probability: float = 1.0
    start: int = 0
    max_fires: int | None = None
    magnitude: float | None = None

    def __post_init__(self) -> None:
        allowed = FAULT_SITES.get(self.site)
        if allowed is None:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{sorted(FAULT_SITES)}"
            )
        if self.action not in allowed:
            raise FaultPlanError(
                f"site {self.site!r} does not support action "
                f"{self.action!r}; allowed: {list(allowed)}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.start < 0:
            raise FaultPlanError(f"start must be >= 0, got {self.start}")
        if self.max_fires is not None and self.max_fires < 1:
            raise FaultPlanError(
                f"max_fires must be >= 1 or None, got {self.max_fires}"
            )
        if self.magnitude is not None and self.magnitude <= 0:
            raise FaultPlanError(
                f"magnitude must be > 0, got {self.magnitude}"
            )

    def to_json(self) -> dict:
        blob: dict = {"site": self.site, "action": self.action}
        if self.probability != 1.0:
            blob["probability"] = self.probability
        if self.start:
            blob["start"] = self.start
        if self.max_fires is not None:
            blob["max_fires"] = self.max_fires
        if self.magnitude is not None:
            blob["magnitude"] = self.magnitude
        return blob

    @classmethod
    def from_json(cls, blob: dict) -> "FaultSpec":
        if not isinstance(blob, dict):
            raise FaultPlanError(
                f"fault spec must be an object, got {type(blob).__name__}"
            )
        unknown = set(blob) - {
            "site", "action", "probability", "start", "max_fires",
            "magnitude",
        }
        if unknown:
            raise FaultPlanError(
                f"unknown fault-spec field(s): {sorted(unknown)}"
            )
        try:
            return cls(
                site=str(blob["site"]),
                action=str(blob["action"]),
                probability=float(blob.get("probability", 1.0)),
                start=int(blob.get("start", 0)),
                max_fires=(
                    None
                    if blob.get("max_fires") is None
                    else int(blob["max_fires"])
                ),
                magnitude=(
                    None
                    if blob.get("magnitude") is None
                    else float(blob["magnitude"])
                ),
            )
        except KeyError as exc:
            raise FaultPlanError(
                f"fault spec is missing required field {exc.args[0]!r}"
            ) from None


@dataclass(frozen=True)
class FaultPlan:
    """A seedable set of fault specs; the unit the CLI loads from JSON."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def for_site(self, site: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.site == site)

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.to_json() for spec in self.specs],
        }

    @classmethod
    def from_json(cls, blob: dict) -> "FaultPlan":
        if not isinstance(blob, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got "
                f"{type(blob).__name__}"
            )
        unknown = set(blob) - {"seed", "faults"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan field(s): {sorted(unknown)}"
            )
        faults = blob.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPlanError("'faults' must be a list of specs")
        return cls(
            specs=tuple(FaultSpec.from_json(s) for s in faults),
            seed=int(blob.get("seed", 0)),
        )


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file.

    Raises :class:`FaultPlanError` naming the path on any problem, so
    the CLI can surface a one-line actionable message.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise FaultPlanError(
            f"cannot read fault plan {path}: {exc}"
        ) from exc
    try:
        blob = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FaultPlanError(
            f"fault plan {path} is not valid JSON: {exc}"
        ) from exc
    try:
        return FaultPlan.from_json(blob)
    except FaultPlanError as exc:
        raise FaultPlanError(f"fault plan {path}: {exc}") from None


def save_fault_plan(plan: FaultPlan, path: str | Path) -> None:
    Path(path).write_text(json.dumps(plan.to_json(), indent=2) + "\n")


def plan_fingerprint(plan: FaultPlan | None) -> str | None:
    """Short content fingerprint of a plan; ``None`` for empty/absent
    plans so clean-run digests and journal headers omit the key."""
    if plan is None or not plan:
        return None
    blob = json.dumps(
        plan.to_json(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]
