"""Command-line interface.

Examples::

    python -m repro list
    python -m repro search-space --machine crill
    python -m repro run --app sp --workload B --machine crill \
        --cap 85 --strategy arcs-offline
    python -m repro sweep --app sp --workload B
"""

from __future__ import annotations

import argparse
import os
from collections.abc import Sequence
from contextlib import contextmanager
from pathlib import Path

from repro.analysis.compare import (
    DEFAULT_TOLERANCE,
    compare_dirs,
    render_comparison,
)
from repro.analysis.registry import (
    FORMATS as FIGURE_FORMATS,
    GenOptions,
    UnknownFigureError,
    figure_names,
    generate_figures,
)
from repro.core.capschedule import (
    CapSchedule,
    CapScheduleError,
    load_cap_schedule,
)
from repro.core.checkpoint import CheckpointError
from repro.core.history import HistoryStore
from repro.experiments.cache import DEFAULT_CACHE_DIR, ExperimentCache
from repro.experiments.figures import power_sweep
from repro.experiments.journal import (
    JournalHeaderMismatchError,
    SweepJournal,
)
from repro.experiments.parallel import ParallelSweepExecutor
from repro.experiments.reporting import render_sweep, render_table1
from repro.experiments.runner import (
    CRILL_POWER_LEVELS,
    ExperimentSetup,
    run_strategy,
)
from repro.faults.inject import make_injector
from repro.faults.plan import FaultPlan, FaultPlanError, load_fault_plan
from repro.obs.monitor import monitor_follow, monitor_once
from repro.obs.profile import (
    DEFAULT_INTERVAL_S,
    DEFAULT_TOP,
    render_profile,
)
from repro.obs.slo import SloConfigError
from repro.obs.trace import render_trace_tree, root_context
from repro.openmp.batch import NO_BATCH_ENV, set_batching
from repro.supervise import RunAbortedError
from repro.experiments.tables import table1_search_space
from repro.machine.spec import machine_by_name
from repro.telemetry import (
    JsonlSink,
    TelemetryBus,
    bus,
    export_chrome_trace,
    install,
    load_telemetry_dir,
    render_decision_timeline,
    render_metrics_summary,
)
from repro.util.log import LEVELS as _LOG_LEVELS
from repro.util.log import configure as configure_logging
from repro.util.tables import format_table
from repro.workloads.registry import application_by_name

_STRATEGIES = ("default", "arcs-online", "arcs-offline", "surrogate")
_APPS = ("sp", "bt", "lulesh", "synthetic")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "ARCS (CLUSTER 2016) reproduction - run power-constrained "
            "OpenMP tuning experiments on simulated machines"
        ),
    )
    parser.add_argument(
        "--log-level", choices=_LOG_LEVELS, default=None,
        help="diagnostic log verbosity (also: REPRO_LOG=level[:json])",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications, machines, strategies")

    space = sub.add_parser(
        "search-space", help="print the Table I search parameters"
    )
    space.add_argument("--machine", default="crill")

    run = sub.add_parser(
        "run", help="run one (app, machine, cap, strategy) measurement"
    )
    run.add_argument("--app", choices=_APPS, default="sp")
    run.add_argument("--workload", default=None,
                     help="NPB class (B/C) or LULESH mesh (45/60)")
    run.add_argument("--machine", default="crill")
    run.add_argument("--cap", type=float, default=None,
                     help="package power cap in watts (default: TDP)")
    run.add_argument("--strategy", choices=_STRATEGIES,
                     default="arcs-offline")
    run.add_argument("--repeats", type=int, default=3)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--history", default=None,
                     help="path to an ARCS history JSON file")
    run.add_argument("--faults", default=None, metavar="PLAN.JSON",
                     help="fault-injection plan (see examples/"
                          "faultplan.json); omit for a clean run")
    run.add_argument("--cap-schedule", default=None,
                     metavar="SCHED.JSON",
                     help="dynamic power-cap schedule (see examples/"
                          "capschedule.json); changes the cap mid-run")
    run.add_argument("--checkpoint", default=None, metavar="PATH",
                     help="write a resumable checkpoint after every "
                          "region measurement (arcs-online only)")
    run.add_argument("--resume-from", default=None, metavar="PATH",
                     help="resume an interrupted arcs-online run from "
                          "a checkpoint written by --checkpoint")
    run.add_argument("--telemetry", default=None, metavar="DIR",
                     help="record the run's full event/metric stream "
                          "as telemetry.jsonl plus a Perfetto-loadable "
                          "trace.json under DIR")
    run.add_argument("--no-batch", action="store_true",
                     help="disable batched configuration evaluation "
                          "(results are byte-identical either way; "
                          "escape hatch for debugging)")
    run.add_argument("--service", default=None, metavar="HOST:PORT",
                     help="tuning-service daemon consulted before "
                          "fresh tuning (arcs-offline only); results "
                          "are byte-identical with or without it")
    run.add_argument("--service-deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="per-request deadline for --service "
                          "(default: 2.0)")
    run.add_argument("--surrogate-model", default=None,
                     metavar="MODEL.JSON",
                     help="fitted surrogate model (repro surrogate "
                          "fit); required by --strategy surrogate, "
                          "optional with --surrogate-cold-start")
    run.add_argument("--surrogate-top-k", type=int, default=None,
                     metavar="K",
                     help="configs measured per region when the model "
                          "is trusted (default: 12)")
    run.add_argument("--surrogate-max-fit-error", type=float,
                     default=None, metavar="ERR",
                     help="held-out fit error above which tuning falls "
                          "back to nelder-mead (default: 0.35)")
    run.add_argument("--surrogate-cold-start", action="store_true",
                     help="serve model-predicted configurations when "
                          "every tuned-knowledge tier misses (offline "
                          "strategies; needs --surrogate-model)")

    sweep = sub.add_parser(
        "sweep",
        help="default vs ARCS-Online vs ARCS-Offline across power levels",
    )
    sweep.add_argument("--app", choices=_APPS, default="sp")
    sweep.add_argument("--workload", default=None)
    sweep.add_argument("--machine", default="crill")
    sweep.add_argument("--repeats", type=int, default=3)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size; 1 = serial in-process (default)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="recompute every cell instead of using the result cache",
    )
    sweep.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR),
        help=f"result-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    sweep.add_argument(
        "--faults", default=None, metavar="PLAN.JSON",
        help="fault-injection plan applied to every sweep cell",
    )
    sweep.add_argument(
        "--journal", default=None, metavar="PATH",
        help="crash-safe journal recording each completed cell; "
             "pair with --resume to continue an interrupted sweep",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="serve cells already in --journal instead of re-running "
             "them (requires --journal)",
    )
    sweep.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="record harness lifecycle events (sweep.jsonl) and one "
             "task-<runid>.jsonl per executed cell under DIR, plus a "
             "merged trace.json",
    )
    sweep.add_argument(
        "--no-batch", action="store_true",
        help="disable batched configuration evaluation in every cell "
             "(including worker processes)",
    )
    sweep.add_argument(
        "--service", default=None, metavar="HOST:PORT",
        help="tuning-service daemon shared by the offline cells; "
             "tuned configs are fetched from / published to it, with "
             "local fallback on any failure",
    )

    fleet = sub.add_parser(
        "fleet",
        help="simulate a cluster of ARCS nodes under one global "
             "power budget",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_run = fleet_sub.add_parser(
        "run",
        help="run a fleet: staggered nodes, hierarchical budget "
             "allocator, failure-aware membership",
    )
    fleet_run.add_argument(
        "--nodes", type=int, default=8,
        help="size of the synthesized mixed crill/minotaur roster "
             "(ignored with --plan; default: 8)",
    )
    fleet_run.add_argument(
        "--global-cap", type=float, default=None, dest="global_cap",
        metavar="W",
        help="global power budget in watts (default: ~75%% of the "
             "roster's summed TDP)",
    )
    fleet_run.add_argument(
        "--plan", default=None, metavar="PLAN.JSON",
        help="full fleet plan (see examples/fleetplan.json); "
             "overrides --nodes/--global-cap/--seed/--max-steps",
    )
    fleet_run.add_argument("--seed", type=int, default=0)
    fleet_run.add_argument(
        "--max-steps", type=int, default=200,
        help="hard bound on simulation steps (default: 200)",
    )
    fleet_run.add_argument(
        "--faults", default=None, metavar="PLAN.JSON",
        help="fault plan arming the fleet.* sites (node crash/hang, "
             "telemetry drop/partition, cap-write reject, flapping "
             "membership)",
    )
    fleet_run.add_argument(
        "--journal", default=None, metavar="PATH",
        help="fsync'd per-step fleet journal; pair with --resume to "
             "continue a killed run byte-identically",
    )
    fleet_run.add_argument(
        "--resume", action="store_true",
        help="resume from the last intact snapshot in --journal",
    )
    fleet_run.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="record every fleet event / budget gauge as "
             "fleet.jsonl plus trace.json under DIR",
    )
    fleet_run.add_argument(
        "--concurrency", type=int, default=None,
        help="tuning fan-out width (default: min(8, cores); forced "
             "serial under --telemetry for byte-identical logs)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the tuning-as-a-service config-knowledge daemon",
    )
    serve.add_argument(
        "--store", required=True, metavar="DIR",
        help="directory holding the daemon's sharded knowledge store",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9178,
                       help="TCP port (0 = ephemeral; default: 9178)")
    serve.add_argument(
        "--capacity", type=int, default=None,
        help="LRU entry capacity (default: 4096)",
    )
    serve.add_argument(
        "--faults", default=None, metavar="PLAN.JSON",
        help="fault-injection plan for the server-side "
             "service.server site (chaos testing)",
    )
    serve.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="record the daemon's request stream (per-op counters, "
             "serve spans with adopted client trace context) as "
             "daemon.jsonl under DIR",
    )

    figures = sub.add_parser(
        "figures",
        help="regenerate registered paper figures/tables from the "
             "figure registry (txt / json / csv backends)",
    )
    figures.add_argument(
        "names", nargs="*", metavar="NAME",
        help="registry names to regenerate (default: all); see --list",
    )
    figures.add_argument(
        "--list", action="store_true", dest="list_figures",
        help="list registered figure/table names and exit",
    )
    figures.add_argument(
        "--out", default="results", metavar="DIR",
        help="output directory (default: results)",
    )
    figures.add_argument(
        "--formats", default=",".join(FIGURE_FORMATS),
        help="comma-separated output backends "
             f"(default: {','.join(FIGURE_FORMATS)})",
    )
    figures.add_argument("--repeats", type=int, default=3)
    figures.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for sweep-backed figures",
    )
    figures.add_argument(
        "--no-cache", action="store_true",
        help="recompute sweep cells instead of using the result cache",
    )
    figures.add_argument(
        "--cache-dir", default=str(DEFAULT_CACHE_DIR),
        help=f"result-cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    figures.add_argument(
        "--bench-dir", default=None, metavar="DIR",
        help="directory of per-commit BENCH_*.json snapshots "
             "(one subdirectory per commit, sorted = oldest first); "
             "required by the bench_trend figure",
    )

    analysis = sub.add_parser(
        "analysis",
        help="machine-readable results tooling (BENCH_*.json)",
    )
    analysis_sub = analysis.add_subparsers(
        dest="analysis_command", required=True
    )
    compare = analysis_sub.add_parser(
        "compare",
        help="diff two BENCH_*.json result sets; exit 1 on regression",
    )
    compare.add_argument("old", metavar="OLD",
                         help="baseline directory of BENCH_*.json files")
    compare.add_argument("new", metavar="NEW",
                         help="new directory of BENCH_*.json files")
    compare.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative tolerance before a worse-direction move counts "
             f"as a regression (default: {DEFAULT_TOLERANCE})",
    )

    surrogate = sub.add_parser(
        "surrogate",
        help="fit / inspect the learned config-ranking surrogate",
    )
    surrogate_sub = surrogate.add_subparsers(
        dest="surrogate_command", required=True
    )
    fit = surrogate_sub.add_parser(
        "fit",
        help="fold measurement stores into a training corpus and fit "
             "the surrogate model",
    )
    fit.add_argument(
        "--cache-dir", action="append", default=[], metavar="DIR",
        help="result-cache directory to fold (repeatable)",
    )
    fit.add_argument(
        "--journal", action="append", default=[], metavar="PATH",
        help="sweep journal to fold (repeatable; read-only)",
    )
    fit.add_argument(
        "--telemetry", action="append", default=[], metavar="DIR",
        help="telemetry directory to fold (repeatable)",
    )
    fit.add_argument(
        "--out", required=True, metavar="MODEL.JSON",
        help="where to save the fitted model",
    )
    fit.add_argument(
        "--corpus", default=None, metavar="CORPUS.JSON",
        help="also save the folded training corpus here",
    )
    fit.add_argument(
        "--report", default=None, metavar="REPORT.JSON",
        help="also save the fit-quality report here",
    )
    fit.add_argument("--dim", type=int, default=None,
                     help="hashed feature dimensionality (default: 1024)")
    fit.add_argument("--seed", type=int, default=0)
    fit.add_argument("--mlp", action="store_true",
                     help="refine the ridge fit with the seeded tiny "
                          "MLP (slower, sometimes tighter)")
    fit.add_argument(
        "--faults", default=None, metavar="PLAN.JSON",
        help="fault plan arming the surrogate.corpus / surrogate.fit "
             "sites (chaos testing)",
    )
    srep = surrogate_sub.add_parser(
        "report", help="print a saved model's fit-quality report"
    )
    srep.add_argument("model", metavar="MODEL.JSON")

    trace = sub.add_parser(
        "trace",
        help="render the per-region decision timeline from a "
             "telemetry directory",
    )
    trace.add_argument("dir", metavar="DIR",
                       help="directory written by --telemetry")
    trace.add_argument("--region", default=None,
                       help="only show decisions for this region")
    trace.add_argument(
        "--tree", action="store_true",
        help="render the stitched cross-process span tree (trace-"
             "context parent/child links) instead of the per-region "
             "decision timeline",
    )

    monitor = sub.add_parser(
        "monitor",
        help="dashboard + SLO evaluation over a telemetry directory; "
             "exit 1 if any SLO rule fires",
    )
    monitor.add_argument("dir", metavar="DIR",
                         help="directory written by --telemetry")
    monitor.add_argument(
        "--slo", default=None, metavar="RULES.JSON",
        help="declarative SLO rule file (see examples/slo.json); "
             "violations become typed obs.alert events and exit 1",
    )
    monitor.add_argument(
        "--follow", action="store_true",
        help="live-tail the directory, re-rendering each interval "
             "(Ctrl-C to stop)",
    )
    monitor.add_argument(
        "--window", type=float, default=1.0, metavar="SECONDS",
        help="rollup window in virtual seconds (default: 1.0)",
    )
    monitor.add_argument(
        "--top", type=int, default=10,
        help="slowest spans shown (default: 10)",
    )
    monitor.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="--follow poll interval in wall seconds (default: 1.0)",
    )
    monitor.add_argument(
        "--max-polls", type=int, default=None, metavar="N",
        help="--follow: stop after N polls (default: until Ctrl-C)",
    )

    profile = sub.add_parser(
        "profile",
        help="deterministic virtual-clock sampling profile of a "
             "telemetry directory's spans, grouped by ancestry path",
    )
    profile.add_argument("dir", metavar="DIR",
                         help="directory written by --telemetry")
    profile.add_argument(
        "--interval", type=float, default=DEFAULT_INTERVAL_S,
        metavar="SECONDS",
        help="virtual sampling interval "
             f"(default: {DEFAULT_INTERVAL_S:g})",
    )
    profile.add_argument(
        "--top", type=int, default=DEFAULT_TOP,
        help=f"hot paths shown (default: {DEFAULT_TOP})",
    )

    report = sub.add_parser(
        "report", help="summarize a recorded run's telemetry"
    )
    report.add_argument(
        "--telemetry", required=True, metavar="DIR",
        help="directory written by run/sweep --telemetry",
    )
    return parser


@contextmanager
def _telemetry_session(directory: str, filename: str, **meta):
    """Install an enabled bus writing ``DIR/filename`` for the span of
    one CLI command; always restores the previous bus, closes the log
    (flushing aggregated metrics) and regenerates ``trace.json``."""
    out = Path(directory)
    session = TelemetryBus(enabled=True)
    session.add_sink(JsonlSink(out / filename))
    # root the command's trace: every span recorded under this session
    # becomes a descendant of a deterministic per-invocation trace id,
    # so `repro trace --tree` stitches one tree per CLI command.  Set
    # before meta() so the meta record itself is trace-stamped and can
    # label the synthesized root node.
    session.trace = root_context(**meta)
    session.meta(**meta)
    previous = install(session)
    try:
        yield session
    finally:
        install(previous)
        session.close()
        export_chrome_trace(out)


def _cmd_list() -> str:
    rows = [
        ("applications", ", ".join(_APPS)),
        ("workloads", "sp/bt: B, C; lulesh: 45, 60"),
        ("machines", "crill (Sandy Bridge), minotaur (POWER8)"),
        ("strategies", ", ".join(_STRATEGIES)),
        ("power levels (crill)",
         ", ".join(f"{c:g}W" for c in CRILL_POWER_LEVELS)),
    ]
    return format_table(("what", "values"), rows)


def _cmd_search_space(args: argparse.Namespace) -> str:
    # validates the machine name as a side effect
    machine_by_name(args.machine)
    return render_table1(table1_search_space())


def _load_faults(path: str | None) -> FaultPlan | None:
    if path is None:
        return None
    try:
        return load_fault_plan(path)
    except (FaultPlanError, OSError) as exc:
        # load_fault_plan wraps file errors, but keep OSError here too
        # so an unanticipated filesystem failure still surfaces as one
        # actionable line instead of a traceback.
        raise SystemExit(f"error: {exc}") from exc


def _load_capsched(path: str | None) -> CapSchedule | None:
    if path is None:
        return None
    try:
        return load_cap_schedule(path)
    except (CapScheduleError, OSError) as exc:
        raise SystemExit(f"error: {exc}") from exc


def _apply_no_batch(args: argparse.Namespace) -> None:
    """Honour ``--no-batch``: flip the process-wide switch and export
    the env var so forked sweep workers inherit the choice."""
    if getattr(args, "no_batch", False):
        os.environ[NO_BATCH_ENV] = "1"
        set_batching(False)


def _service_chain(
    address: str | None,
    fault_plan: FaultPlan | None,
    deadline_s: float | None = None,
):
    """Build the degradation-ordered ConfigSource chain for --service
    (``None`` when no service was requested)."""
    if address is None:
        return None
    from repro.service.source import default_chain

    try:
        return default_chain(
            address,
            faults=make_injector(fault_plan, salt="service-client"),
            deadline_s=deadline_s,
        )
    except ValueError as exc:
        # a malformed host:port string
        raise SystemExit(f"error: {exc}") from exc


def _cmd_run(args: argparse.Namespace) -> str:
    _apply_no_batch(args)
    spec = machine_by_name(args.machine)
    app = application_by_name(args.app, args.workload)
    try:
        setup = ExperimentSetup(
            spec=spec, cap_w=args.cap, repeats=args.repeats,
            seed=args.seed, fault_plan=_load_faults(args.faults),
            cap_schedule=_load_capsched(args.cap_schedule),
        )
    except ValueError as exc:
        # e.g. --cap on a machine without capping privilege, or
        # --repeats 0: refuse loudly instead of mis-reporting.
        raise SystemExit(f"error: {exc}") from exc
    history = HistoryStore(args.history) if args.history else None
    source = _service_chain(
        args.service, setup.fault_plan, args.service_deadline
    )
    surrogate_tuning = None
    if args.surrogate_model is not None:
        from repro.surrogate.plan import (
            DEFAULT_MAX_FIT_ERROR,
            DEFAULT_TOP_K,
            SurrogateTuning,
        )

        surrogate_tuning = SurrogateTuning.load(
            args.surrogate_model,
            top_k=(
                DEFAULT_TOP_K
                if args.surrogate_top_k is None
                else args.surrogate_top_k
            ),
            max_fit_error=(
                DEFAULT_MAX_FIT_ERROR
                if args.surrogate_max_fit_error is None
                else args.surrogate_max_fit_error
            ),
        )
    if args.strategy == "surrogate" and surrogate_tuning is None:
        raise SystemExit(
            "error: --strategy surrogate needs --surrogate-model "
            "(fit one with `repro surrogate fit`)"
        )
    if args.surrogate_cold_start:
        if surrogate_tuning is None:
            raise SystemExit(
                "error: --surrogate-cold-start needs --surrogate-model"
            )
        from repro.surrogate.source import SurrogateColdStartSource

        cold = SurrogateColdStartSource(surrogate_tuning)
        if source is None:
            from repro.service.source import default_chain

            source = default_chain(surrogate=cold)
        else:
            source.sources.append(cold)

    def _execute():
        try:
            return run_strategy(
                args.strategy, app, setup, history=history,
                checkpoint_path=args.checkpoint,
                resume_from=args.resume_from,
                source=source,
                surrogate=surrogate_tuning,
            )
        except RunAbortedError as exc:
            # land the abort in the event log (and thus the timeline)
            # before the telemetry session closes
            tb = bus()
            if tb.enabled:
                tb.emit(
                    "run.aborted", region=exc.region, reason=exc.reason
                )
            raise

    try:
        if args.telemetry:
            with _telemetry_session(
                args.telemetry, "telemetry.jsonl",
                command="run", app=app.label, machine=spec.name,
                strategy=args.strategy, cap_w=args.cap,
                seed=args.seed, repeats=args.repeats,
            ):
                result = _execute()
        else:
            result = _execute()
    except CheckpointError as exc:
        # unreadable / mismatched checkpoint: actionable, not a bug
        raise SystemExit(f"error: {exc}") from exc
    except RunAbortedError as exc:
        raise SystemExit(f"error: {exc}") from exc
    except ValueError as exc:
        # e.g. --checkpoint with a non-online strategy
        raise SystemExit(f"error: {exc}") from exc
    cap = "TDP" if args.cap is None else f"{args.cap:g}W"
    lines = [
        f"{app.label} on {spec.name} @ {cap}, {args.strategy} "
        f"({args.repeats} repeats, {setup.summary_mode}):",
        f"  time   : {result.time_s:.3f} s",
    ]
    if result.energy_j is not None:
        lines.append(f"  energy : {result.energy_j:.1f} J (package)")
    if result.chosen_configs:
        lines.append("  chosen configurations:")
        for region, config in sorted(result.chosen_configs.items()):
            lines.append(f"    {region:34s} {config.label()}")
    if result.overhead is not None:
        lines.append(
            f"  overheads: config-change "
            f"{result.overhead.config_change_s * 1e3:.1f} ms, "
            f"instrumentation "
            f"{result.overhead.instrumentation_s * 1e3:.1f} ms, "
            f"search {result.overhead.search_s * 1e3:.1f} ms"
        )
    if result.cap_changes:
        lines.append("  cap changes:")
        lines.extend(
            f"    - {change}" for change in result.cap_changes
        )
    if result.degradations:
        lines.append("  degradations:")
        lines.extend(
            f"    - {note}" for note in result.degradations
        )
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> str:
    _apply_no_batch(args)
    spec = machine_by_name(args.machine)
    app = application_by_name(args.app, args.workload)
    caps = (
        CRILL_POWER_LEVELS
        if spec.supports_power_cap
        else (spec.tdp_w,)
    )
    if args.workers < 1:
        raise SystemExit(
            f"error: --workers must be >= 1, got {args.workers}"
        )
    if args.resume and args.journal is None:
        raise SystemExit("error: --resume requires --journal")
    cache = (
        None if args.no_cache else ExperimentCache(args.cache_dir)
    )
    fault_plan = _load_faults(args.faults)
    executor = ParallelSweepExecutor(
        max_workers=args.workers,
        cache=cache,
        journal=(
            SweepJournal(args.journal) if args.journal else None
        ),
        resume=args.resume,
        faults=make_injector(fault_plan),
    )
    def _run_sweep():
        return power_sweep(
            app, spec, caps, repeats=args.repeats, seed=args.seed,
            workers=args.workers, cache=cache, executor=executor,
            fault_plan=fault_plan, telemetry_dir=args.telemetry,
            service=args.service,
        )

    try:
        if args.telemetry:
            with _telemetry_session(
                args.telemetry, "sweep.jsonl",
                command="sweep", app=app.label, machine=spec.name,
                repeats=args.repeats, seed=args.seed,
                workers=args.workers,
            ):
                sweep = _run_sweep()
        else:
            sweep = _run_sweep()
    except JournalHeaderMismatchError as exc:
        raise SystemExit(f"error: {exc}") from exc
    lines = [
        render_sweep(
            sweep, f"{app.label} on {spec.name}: strategy comparison"
        )
    ]
    degradations = sorted(
        {
            note
            for result in sweep.results.values()
            for note in result.degradations
        }
    )
    if degradations:
        lines.append("degradations:")
        lines.extend(f"  - {note}" for note in degradations)
    if cache is not None:
        lines.append(
            f"[cache] {cache.stats.hits} hit(s), "
            f"{cache.stats.misses} miss(es) under {cache.root}"
        )
    return "\n".join(lines)


def _cmd_fleet(args: argparse.Namespace) -> str:
    from repro.fleet import (
        FleetJournal,
        FleetJournalMismatchError,
        FleetPlanError,
        FleetSimulation,
        load_fleet_plan,
        render_fleet,
        synthesize_fleet,
    )

    try:
        if args.plan is not None:
            plan = load_fleet_plan(args.plan)
        else:
            plan = synthesize_fleet(
                args.nodes,
                args.global_cap,
                seed=args.seed,
                max_steps=args.max_steps,
            )
    except FleetPlanError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.resume and args.journal is None:
        raise SystemExit("error: --resume requires --journal")
    if args.concurrency is not None and args.concurrency < 1:
        raise SystemExit(
            f"error: --concurrency must be >= 1, got {args.concurrency}"
        )
    sim = FleetSimulation(
        plan,
        _load_faults(args.faults),
        journal=FleetJournal(args.journal) if args.journal else None,
        resume=args.resume,
        concurrency=args.concurrency,
    )
    try:
        if args.telemetry:
            with _telemetry_session(
                args.telemetry, "fleet.jsonl",
                command="fleet", nodes=len(plan.nodes),
                global_cap_w=plan.global_cap_w, seed=plan.seed,
            ):
                result = sim.run()
        else:
            result = sim.run()
    except FleetJournalMismatchError as exc:
        raise SystemExit(f"error: {exc}") from exc
    return render_fleet(result)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the tuning-service daemon until shutdown/Ctrl-C."""
    from repro.service.daemon import serve_forever

    if args.capacity is not None and args.capacity < 1:
        raise SystemExit(
            f"error: --capacity must be >= 1, got {args.capacity}"
        )
    try:
        serve_forever(
            args.store,
            host=args.host,
            port=args.port,
            fault_plan=_load_faults(args.faults),
            capacity=args.capacity,
            telemetry_dir=args.telemetry,
        )
    except OSError as exc:
        # e.g. the port is taken or the host cannot be bound
        raise SystemExit(f"error: {exc}") from exc
    return 0


def _cmd_figures(args: argparse.Namespace) -> str:
    if args.list_figures:
        rows = []
        from repro.analysis.registry import REGISTRY

        for name in figure_names():
            spec = REGISTRY[name]
            rows.append((name, spec.kind, spec.cost, spec.title))
        return format_table(
            ("name", "kind", "cost", "title"), rows,
            title="Registered figures/tables",
        )
    formats = tuple(
        f.strip() for f in args.formats.split(",") if f.strip()
    )
    bad = [f for f in formats if f not in FIGURE_FORMATS]
    if bad or not formats:
        raise SystemExit(
            f"error: unknown format(s) {', '.join(bad) or '(none)'}; "
            f"choose from {', '.join(FIGURE_FORMATS)}"
        )
    if args.workers < 1:
        raise SystemExit(
            f"error: --workers must be >= 1, got {args.workers}"
        )
    options = GenOptions(
        repeats=args.repeats,
        workers=args.workers,
        cache=(
            None if args.no_cache else ExperimentCache(args.cache_dir)
        ),
        bench_dir=args.bench_dir,
    )
    lines: list[str] = []
    try:
        generated = generate_figures(
            args.names or None,
            out_dir=args.out,
            formats=formats,
            options=options,
            progress=lambda name: lines.append(f"[figures] {name} ..."),
        )
    except UnknownFigureError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from exc
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc
    for artifact in generated:
        written = ", ".join(
            str(artifact.paths[fmt]) for fmt in formats
        )
        lines.append(
            f"[figures] {artifact.spec.name}: wrote {written}"
        )
    lines.append(
        f"regenerated {len(generated)} artifact(s) under {args.out}"
    )
    return "\n".join(lines)


def _cmd_analysis(args: argparse.Namespace) -> tuple[str, int]:
    # only one analysis subcommand today; keep the dispatch explicit
    # so the next one (e.g. `analysis trend`) slots in cleanly.
    if args.analysis_command == "compare":
        try:
            report = compare_dirs(
                args.old, args.new, tolerance=args.tolerance
            )
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(f"error: {exc}") from exc
        return render_comparison(report), (0 if report.ok else 1)
    raise SystemExit(
        f"error: unknown analysis command {args.analysis_command!r}"
    )


def _render_fit_report(report) -> str:
    def fmt(value):
        return "-" if value is None else f"{value:.4f}"

    rows = [
        ("training records", str(report.n_records)),
        ("  fit on", str(report.n_train)),
        ("  held out", str(report.n_holdout)),
        ("  unresolvable", str(report.n_unresolvable)),
        ("feature dim", str(report.dim)),
        ("seed", str(report.seed)),
        ("mlp refinement", "yes" if report.mlp else "no"),
        ("holdout rel err", fmt(report.holdout_rel_err)),
        ("train rel err", fmt(report.train_rel_err)),
        ("usable", "yes" if report.usable else
         f"NO ({report.reason})"),
    ]
    lines = [format_table(("fit", "value"), rows,
                          title="Surrogate fit report")]
    if report.corpus_notes:
        lines.append("corpus notes:")
        lines.extend(f"  - {n}" for n in report.corpus_notes)
    return "\n".join(lines)


def _cmd_surrogate(args: argparse.Namespace) -> str:
    import json as _json

    from repro.surrogate import (
        CorpusStats,
        SurrogateError,
        fit_surrogate,
        fold_cache_dir,
        fold_journal,
        fold_telemetry_dir,
        load_model,
        save_corpus,
        save_model,
    )

    if args.surrogate_command == "report":
        try:
            model = load_model(args.model)
        except SurrogateError as exc:
            raise SystemExit(f"error: {exc}") from exc
        return _render_fit_report(model.report)

    # fit
    if not (args.cache_dir or args.journal or args.telemetry):
        raise SystemExit(
            "error: nothing to fold - pass at least one of "
            "--cache-dir / --journal / --telemetry"
        )
    if args.dim is not None and args.dim < 1:
        raise SystemExit(
            f"error: --dim must be >= 1, got {args.dim}"
        )
    stats = CorpusStats()
    faults = make_injector(_load_faults(args.faults), salt="surrogate")
    records = []
    for directory in args.cache_dir:
        records.extend(fold_cache_dir(directory, stats, faults))
    for path in args.journal:
        records.extend(fold_journal(path, stats, faults))
    for directory in args.telemetry:
        records.extend(fold_telemetry_dir(directory, stats, faults))
    if args.corpus:
        save_corpus(records, stats, args.corpus)
    kwargs = {} if args.dim is None else {"dim": args.dim}
    model = fit_surrogate(
        records,
        seed=args.seed,
        mlp=args.mlp,
        corpus_stats=stats,
        faults=faults,
        **kwargs,
    )
    save_model(model, args.out)
    lines = [
        f"folded {stats.records} training record(s) from "
        f"{stats.files} file(s) "
        f"(skipped: {stats.skipped_schema} schema-mismatched, "
        f"{stats.skipped_damaged} damaged, "
        f"{stats.skipped_unusable} unusable)",
    ]
    lines.extend(f"  - {note}" for note in stats.notes)
    lines.append(_render_fit_report(model.report))
    if args.corpus:
        lines.append(f"corpus saved to {args.corpus}")
    if args.report:
        from repro.util.atomicio import atomic_write_text

        atomic_write_text(
            args.report,
            _json.dumps(model.report.to_json(), indent=2) + "\n",
        )
        lines.append(f"fit report saved to {args.report}")
    lines.append(f"model saved to {args.out}")
    return "\n".join(lines)


def _load_telemetry(directory: str):
    try:
        return load_telemetry_dir(directory)
    except (FileNotFoundError, NotADirectoryError) as exc:
        raise SystemExit(f"error: {exc}") from exc


def _cmd_trace(args: argparse.Namespace) -> str:
    loaded = _load_telemetry(args.dir)
    if args.tree:
        return render_trace_tree(loaded)
    return render_decision_timeline(loaded, region=args.region)


def _cmd_monitor(args: argparse.Namespace) -> tuple[str, int]:
    if args.window <= 0:
        raise SystemExit(
            f"error: --window must be > 0, got {args.window}"
        )
    try:
        if args.follow:
            code = monitor_follow(
                args.dir, args.slo,
                window_s=args.window, top_k=args.top,
                interval_s=args.interval, max_polls=args.max_polls,
            )
            return "", code
        return monitor_once(
            args.dir, args.slo, window_s=args.window, top_k=args.top
        )
    except SloConfigError as exc:
        raise SystemExit(f"error: {exc}") from exc
    except (FileNotFoundError, NotADirectoryError) as exc:
        raise SystemExit(f"error: {exc}") from exc


def _cmd_profile(args: argparse.Namespace) -> str:
    if args.interval <= 0:
        raise SystemExit(
            f"error: --interval must be > 0, got {args.interval}"
        )
    try:
        return render_profile(
            args.dir, interval_s=args.interval, top=args.top
        )
    except (FileNotFoundError, NotADirectoryError) as exc:
        raise SystemExit(f"error: {exc}") from exc


def _cmd_report(args: argparse.Namespace) -> str:
    return render_metrics_summary(_load_telemetry(args.telemetry))


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        configure_logging(level=args.log_level)
    if args.command == "list":
        print(_cmd_list())
    elif args.command == "search-space":
        print(_cmd_search_space(args))
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "sweep":
        print(_cmd_sweep(args))
    elif args.command == "fleet":
        print(_cmd_fleet(args))
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "figures":
        print(_cmd_figures(args))
    elif args.command == "analysis":
        text, code = _cmd_analysis(args)
        print(text)
        return code
    elif args.command == "surrogate":
        print(_cmd_surrogate(args))
    elif args.command == "trace":
        print(_cmd_trace(args))
    elif args.command == "monitor":
        text, code = _cmd_monitor(args)
        if text:
            print(text)
        return code
    elif args.command == "profile":
        print(_cmd_profile(args))
    elif args.command == "report":
        print(_cmd_report(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
