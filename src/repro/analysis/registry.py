"""Figure/table registry: every evaluation artifact, one name each.

Maps the name of each figure/table in the paper's evaluation (the stem
of its ``results/<name>.txt``) to a spec bundling its data generator
(:mod:`repro.experiments.figures` / ``tables``), its paper-style text
renderer (:mod:`repro.experiments.reporting`) and its tidy record
converter (:mod:`repro.analysis.records`).  ``repro figures [NAME
...]`` walks the registry and regenerates every requested artifact in
every requested backend (txt / json / csv) deterministically under the
repro seed - the ProjectScylla ``generate_figures`` idiom, adapted to
this repo's simulated measurements.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.records import (
    RecordTable,
    bench_trend_records,
    capsched_timeline_records,
    feature_records,
    fig1_records,
    fig9_records,
    fleet_survival_records,
    service_hit_rate_records,
    sweep_records,
    table1_records,
    table2_records,
)
from repro.experiments.cache import ExperimentCache
from repro.experiments.figures import (
    fig1_motivation,
    fig3_sp_features,
    fig6_bt_features,
    fig9_lulesh_regions,
    fig10_lulesh_features,
    power_sweep,
)
from repro.experiments.reporting import (
    render_bench_trend,
    render_capsched_timeline,
    render_features,
    render_fig1,
    render_fig9,
    render_fleet_survival,
    render_service_hit_rate,
    render_sweep,
    render_table1,
    render_table2,
)
from repro.experiments.runner import CRILL_POWER_LEVELS
from repro.experiments.tables import (
    table1_search_space,
    table2_sp_optimal_configs,
)
from repro.machine.spec import crill, minotaur
from repro.util.atomicio import atomic_write_text
from repro.workloads.bt import bt_application
from repro.workloads.lulesh import lulesh_application
from repro.workloads.sp import sp_application

#: stamp on every figure JSON payload.
FIGURE_SCHEMA_VERSION = 1

#: the output backends ``generate`` can write.
FORMATS = ("txt", "json", "csv")


class UnknownFigureError(KeyError):
    """Asked for a name the registry does not know."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(
            f"unknown figure/table {name!r}; known names: "
            + ", ".join(sorted(REGISTRY))
        )


@dataclass(frozen=True)
class GenOptions:
    """Knobs shared by every generator (sweep-backed entries use all
    of them; cheap entries ignore what they don't need)."""

    repeats: int = 3
    workers: int = 1
    cache: ExperimentCache | None = None
    #: history directory for "external"-cost entries (bench_trend);
    #: they read pre-existing artifacts instead of generating data.
    bench_dir: str | None = None


@dataclass(frozen=True)
class FigureSpec:
    """One registered evaluation artifact."""

    name: str
    kind: str                                   # "figure" | "table"
    title: str
    generate: Callable[[GenOptions], object]
    render_txt: Callable[[object], str]
    records: Callable[[object], list[dict]]
    #: "fast" entries finish in ~seconds; "sweep" entries run full
    #: power sweeps with tuning (use workers/cache); "external"
    #: entries need an input artifact the repo does not generate
    #: (e.g. --bench-dir) and are excluded from the default-all set.
    cost: str = "fast"


@dataclass(frozen=True)
class GeneratedFigure:
    """The realized artifact in every representation."""

    spec: FigureSpec
    data: object
    text: str
    table: RecordTable
    paths: dict[str, Path] = field(default_factory=dict)

    def json_payload(self) -> dict:
        return {
            "schema": FIGURE_SCHEMA_VERSION,
            "kind": self.spec.kind,
            "name": self.spec.name,
            "title": self.spec.title,
            "records": self.table.records,
        }


def _sweep_generator(app_factory, spec_factory, caps):
    def generate(options: GenOptions):
        return power_sweep(
            app_factory(),
            spec_factory(),
            caps,
            repeats=options.repeats,
            workers=options.workers,
            cache=options.cache,
        )

    return generate


def _spec(
    name: str,
    kind: str,
    title: str,
    generate,
    render_txt,
    records,
    cost: str = "fast",
) -> FigureSpec:
    return FigureSpec(
        name=name,
        kind=kind,
        title=title,
        generate=generate,
        render_txt=render_txt,
        records=records,
        cost=cost,
    )


def _feature_spec(name: str, title: str, generator) -> FigureSpec:
    return _spec(
        name,
        "figure",
        title,
        lambda options: generator(),
        lambda data: render_features(data, title),
        feature_records,
    )


def _gen_fleet_survival(options: GenOptions) -> list[dict]:
    """A small canned chaos fleet, journaled to a scratch directory;
    the survival table is then derived from the journal exactly as it
    would be from a real ``repro fleet run --journal`` artifact."""
    import tempfile

    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.fleet import FleetJournal, FleetSimulation, synthesize_fleet

    plan = synthesize_fleet(5, seed=7, max_steps=40)
    faults = FaultPlan(
        specs=(
            FaultSpec("fleet.node", "crash", start=2, max_fires=1),
            FaultSpec("fleet.node", "hang", start=30, max_fires=1),
            FaultSpec("fleet.telemetry", "partition", start=8,
                      max_fires=1),
            FaultSpec("fleet.cap_write", "reject", probability=0.5,
                      max_fires=4),
            FaultSpec("fleet.membership", "flap", start=12,
                      max_fires=1),
        ),
        seed=11,
    )
    with tempfile.TemporaryDirectory() as tmp:
        journal = FleetJournal(Path(tmp) / "fleet.jsonl")
        FleetSimulation(plan, faults, journal=journal).run()
        return fleet_survival_records(journal.path)


def _gen_capsched_timeline(options: GenOptions) -> list[dict]:
    """One capped run under a dynamic cap schedule with an injected
    write rejection, captured through a scratch telemetry bus; the
    timeline is then parsed back from the JSONL it leaves behind."""
    import dataclasses
    import tempfile

    from repro.core.capschedule import CapEvent, CapSchedule
    from repro.experiments.runner import ExperimentSetup, run_strategy
    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.telemetry import JsonlSink, TelemetryBus, install
    from repro.workloads.registry import application_by_name

    app = dataclasses.replace(
        application_by_name("synthetic"), timesteps=8
    )
    schedule = CapSchedule(
        events=(
            CapEvent(4, 85.0),
            CapEvent(10, 70.0),
            CapEvent(16, 100.0),
        ),
        hysteresis_invocations=1,
    )
    setup = ExperimentSetup(
        spec=crill(),
        cap_w=115.0,
        repeats=1,
        seed=0,
        cap_schedule=schedule,
        fault_plan=FaultPlan(
            specs=(
                FaultSpec("rapl.cap_write", "reject", start=3,
                          max_fires=3),
            ),
            seed=5,
        ),
    )
    with tempfile.TemporaryDirectory() as tmp:
        scratch = TelemetryBus(enabled=True)
        scratch.add_sink(JsonlSink(Path(tmp) / "telemetry.jsonl"))
        previous = install(scratch)
        try:
            run_strategy("default", app, setup)
        finally:
            install(previous)
            scratch.close()
        return capsched_timeline_records(tmp)


def _gen_service_hit_rate(options: GenOptions) -> list[dict]:
    """A real daemon on a scratch store, exercised two ways: direct
    client put/get traffic (feeds the per-shard counters the ``stats``
    verb exposes) and a cold/warm arcs-offline pass through the
    degradation chain (feeds the per-tier telemetry counters).  The
    table is then pure arithmetic over those counters - exactly what
    ``repro monitor`` sees on a live run."""
    import dataclasses
    import tempfile

    from repro.experiments.runner import ExperimentSetup, run_strategy
    from repro.service.client import ServiceClient
    from repro.service.daemon import ThreadedDaemon
    from repro.service.source import default_chain
    from repro.telemetry import TelemetryBus, install
    from repro.workloads.registry import application_by_name

    app = dataclasses.replace(
        application_by_name("synthetic"), timesteps=6
    )
    with tempfile.TemporaryDirectory() as tmp:
        with ThreadedDaemon(Path(tmp) / "store") as td:
            client = ServiceClient(td.address)
            for i in range(24):
                client.put(f"figure-key-{i:02d}", {"payload": i})
            for i in range(24):
                client.get(f"figure-key-{i:02d}")  # store hits
            for i in range(8):
                client.get(f"absent-key-{i:02d}")  # store misses
            scratch = TelemetryBus(enabled=True)
            previous = install(scratch)
            memo: dict[str, dict] = {}
            try:
                for cap in (85.0, 115.0):
                    setup = ExperimentSetup(
                        spec=crill(), cap_w=cap, repeats=1, seed=0
                    )
                    # cold: every tier misses, fresh tuning publishes
                    chain = default_chain(td.address, memo=memo)
                    run_strategy(
                        "arcs-offline", app, setup, source=chain
                    )
                    # warm: the service tier answers
                    chain = default_chain(td.address, memo={})
                    run_strategy(
                        "arcs-offline", app, setup, source=chain
                    )
                    # local-only warm: the memo tier answers
                    chain = default_chain(None, memo=memo)
                    run_strategy(
                        "arcs-offline", app, setup, source=chain
                    )
                counters = dict(scratch.metrics.counters)
            finally:
                install(previous)
                scratch.close()
            stats = client.stats()
        return service_hit_rate_records(
            stats, counters, ("service", "memo")
        )


def _gen_bench_trend(options: GenOptions) -> list[dict]:
    if options.bench_dir is None:
        raise ValueError(
            "the bench_trend figure reads a directory of per-commit "
            "BENCH_*.json snapshots; pass --bench-dir DIR"
        )
    return bench_trend_records(options.bench_dir)


_FIG1_TITLE = (
    "Fig. 1: BT x_solve region - best vs default configuration "
    "across power levels (smaller is better)"
)
_FIG9_TITLE = (
    "Fig. 9: OMPT event data for top-5 LULESH regions (default "
    "config, TDP)"
)

#: name -> spec for every figure and table in the evaluation.  Names
#: are exactly the stems the benchmark suite writes under results/.
REGISTRY: dict[str, FigureSpec] = {
    spec.name: spec
    for spec in (
        _spec(
            "fig1_motivation",
            "figure",
            _FIG1_TITLE,
            lambda options: fig1_motivation(),
            render_fig1,
            fig1_records,
        ),
        _feature_spec(
            "fig3_sp_features",
            "Fig. 3: SP major regions, default vs ARCS-Offline (TDP)",
            fig3_sp_features,
        ),
        _spec(
            "fig4_sp_power_sweep",
            "figure",
            "Fig. 4: SP-B on Crill",
            _sweep_generator(
                lambda: sp_application("B"), crill, CRILL_POWER_LEVELS
            ),
            lambda data: render_sweep(data, "Fig. 4: SP-B on Crill"),
            sweep_records,
            cost="sweep",
        ),
        _spec(
            "fig5_sp_classC",
            "figure",
            "Fig. 5: SP-C on Crill (TDP)",
            _sweep_generator(
                lambda: sp_application("C"), crill, (115.0,)
            ),
            lambda data: render_sweep(data, "Fig. 5: SP-C on Crill (TDP)"),
            sweep_records,
            cost="sweep",
        ),
        _feature_spec(
            "fig6_bt_features",
            "Fig. 6: BT compute_rhs, default vs ARCS-Offline (TDP)",
            fig6_bt_features,
        ),
        _spec(
            "fig7_bt_power_sweep",
            "figure",
            "Fig. 7: BT-B on Crill",
            _sweep_generator(
                lambda: bt_application("B"), crill, CRILL_POWER_LEVELS
            ),
            lambda data: render_sweep(data, "Fig. 7: BT-B on Crill"),
            sweep_records,
            cost="sweep",
        ),
        _spec(
            "fig8_lulesh_crill",
            "figure",
            "Fig. 8a/8b: LULESH-45 on Crill",
            _sweep_generator(
                lambda: lulesh_application(45), crill,
                CRILL_POWER_LEVELS,
            ),
            lambda data: render_sweep(
                data, "Fig. 8a/8b: LULESH-45 on Crill"
            ),
            sweep_records,
            cost="sweep",
        ),
        _spec(
            "fig8_lulesh_minotaur",
            "figure",
            "Fig. 8c: LULESH-45 on Minotaur (time only)",
            _sweep_generator(
                lambda: lulesh_application(45), minotaur, (190.0,)
            ),
            lambda data: render_sweep(
                data, "Fig. 8c: LULESH-45 on Minotaur (time only)"
            ),
            sweep_records,
            cost="sweep",
        ),
        _spec(
            "fig9_lulesh_regions",
            "figure",
            _FIG9_TITLE,
            lambda options: fig9_lulesh_regions(),
            render_fig9,
            fig9_records,
        ),
        _feature_spec(
            "fig10_lulesh_features",
            "Fig. 10: LULESH CalcFBHourglassForceForElems, default vs "
            "ARCS-Offline",
            fig10_lulesh_features,
        ),
        _spec(
            "table1_search_space",
            "table",
            "Table I: ARCS search parameters for OpenMP parallel "
            "regions",
            lambda options: table1_search_space(),
            render_table1,
            table1_records,
        ),
        _spec(
            "table2_sp_optimal_configs",
            "table",
            "Table II: optimal configuration chosen by ARCS-Offline "
            "for SP regions",
            lambda options: table2_sp_optimal_configs(),
            render_table2,
            table2_records,
        ),
        _spec(
            "fleet_survival",
            "table",
            "Fleet survival by degradation kind (chaos fleet run)",
            _gen_fleet_survival,
            render_fleet_survival,
            lambda data: data,
        ),
        _spec(
            "capsched_timeline",
            "table",
            "Cap-schedule adaptation timeline (telemetry cap.change "
            "events)",
            _gen_capsched_timeline,
            render_capsched_timeline,
            lambda data: data,
        ),
        _spec(
            "service_hit_rate",
            "table",
            "Tuning-service hit rate by tier and store shard",
            _gen_service_hit_rate,
            render_service_hit_rate,
            lambda data: data,
        ),
        _spec(
            "bench_trend",
            "table",
            "BENCH metric trend across commits",
            _gen_bench_trend,
            render_bench_trend,
            lambda data: data,
            cost="external",
        ),
    )
}


def figure_names(cost: str | None = None) -> list[str]:
    """Registered names (optionally filtered by cost class)."""
    return [
        name
        for name, spec in sorted(REGISTRY.items())
        if cost is None or spec.cost == cost
    ]


def get_spec(name: str) -> FigureSpec:
    try:
        return REGISTRY[name]
    except KeyError:
        raise UnknownFigureError(name) from None


def generate_figure(
    name: str, options: GenOptions | None = None
) -> GeneratedFigure:
    """Run one registered generator and realize every representation
    (no files written - see :func:`write_figure`)."""
    spec = get_spec(name)
    options = options or GenOptions()
    data = spec.generate(options)
    return GeneratedFigure(
        spec=spec,
        data=data,
        text=spec.render_txt(data),
        table=RecordTable(spec.records(data)),
    )


def write_figure(
    generated: GeneratedFigure,
    out_dir: str | Path,
    formats: Sequence[str] = FORMATS,
) -> dict[str, Path]:
    """Atomically write one generated artifact in each requested
    backend; returns ``format -> path``."""
    out_dir = Path(out_dir)
    name = generated.spec.name
    paths: dict[str, Path] = {}
    for fmt in formats:
        if fmt == "txt":
            path = out_dir / f"{name}.txt"
            atomic_write_text(path, generated.text + "\n")
        elif fmt == "json":
            path = out_dir / f"{name}.json"
            atomic_write_text(
                path,
                json.dumps(generated.json_payload(), indent=2) + "\n",
            )
        elif fmt == "csv":
            path = out_dir / f"{name}.csv"
            atomic_write_text(path, generated.table.to_csv())
        else:
            raise ValueError(
                f"unknown output format {fmt!r}; choose from {FORMATS}"
            )
        paths[fmt] = path
    generated.paths.update(paths)
    return paths


def generate_figures(
    names: Sequence[str] | None = None,
    out_dir: str | Path = "results",
    formats: Sequence[str] = FORMATS,
    options: GenOptions | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[GeneratedFigure]:
    """Regenerate registered artifacts (all of them by default) into
    ``out_dir``; the workhorse behind ``repro figures``.

    "external"-cost entries only run when named explicitly - the
    default-all set must regenerate from the repo alone."""
    if names is None or not names:
        names = [
            name
            for name in figure_names()
            if REGISTRY[name].cost != "external"
        ]
    specs = [get_spec(name) for name in names]  # validate all first
    generated: list[GeneratedFigure] = []
    for spec in specs:
        if progress is not None:
            progress(spec.name)
        artifact = generate_figure(spec.name, options)
        write_figure(artifact, out_dir, formats)
        generated.append(artifact)
    return generated
