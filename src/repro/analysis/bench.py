"""Schema-stamped machine-readable benchmark results.

Every benchmark writes a ``BENCH_<name>.json`` next to its
``results/<name>.txt``: same data, but structured, so re-anchors and
CI can diff performance across commits instead of eyeballing text
tables.  One file holds:

* ``metrics`` - named scalar measurements, each with a comparison
  ``direction`` (``lower`` / ``higher`` is better, or ``info`` for
  numbers that are machine-dependent - wall-clock times, speedups -
  and therefore recorded but never gated on);
* ``records`` - the figure/table's tidy record rows (optional);
* ``provenance`` - machine spec names, seed, benchmark configuration,
  and the interpreter/platform that produced the numbers.

:func:`write_bench_json` goes through
:mod:`repro.util.atomicio`, so a killed benchmark run can never leave
a torn JSON behind, and :func:`load_bench_dir` treats unreadable or
schema-mismatched files as absent rather than crashing the comparison
tool on them.
"""

from __future__ import annotations

import json
import platform
import sys
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.util.atomicio import atomic_write_text

#: bump when the BENCH payload layout changes; the compare tool only
#: accepts matching versions.
BENCH_SCHEMA_VERSION = 1

#: file-name prefix - ``BENCH_<name>.json`` next to ``<name>.txt``.
BENCH_PREFIX = "BENCH_"

#: valid metric directions.
DIRECTIONS = ("lower", "higher", "info")


class BenchFormatError(ValueError):
    """A metrics/payload value did not fit the BENCH schema."""


def _normalize_metric(name: str, value: object) -> dict:
    """Accept ``float`` (defaults to lower-is-better) or a mapping
    with ``value`` and optional ``direction`` / ``unit``."""
    if isinstance(value, Mapping):
        try:
            raw = float(value["value"])
        except (KeyError, TypeError, ValueError) as exc:
            raise BenchFormatError(
                f"metric {name!r}: mapping form needs a numeric "
                f"'value', got {value!r}"
            ) from exc
        direction = value.get("direction", "lower")
        if direction not in DIRECTIONS:
            raise BenchFormatError(
                f"metric {name!r}: direction must be one of "
                f"{DIRECTIONS}, got {direction!r}"
            )
        out = {"value": raw, "direction": direction}
        if "unit" in value:
            out["unit"] = str(value["unit"])
        return out
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BenchFormatError(
            f"metric {name!r}: expected a number or mapping, got "
            f"{value!r}"
        )
    return {"value": float(value), "direction": "lower"}


def default_provenance(
    *,
    machine: str | Sequence[str] | None = None,
    seed: int | None = None,
    config: Mapping | None = None,
) -> dict:
    """Provenance block: what produced these numbers, and where."""
    machines: list[str]
    if machine is None:
        machines = []
    elif isinstance(machine, str):
        machines = [machine]
    else:
        machines = list(machine)
    return {
        "machines": machines,
        "seed": seed,
        "config": dict(config) if config else {},
        "python": platform.python_version(),
        "platform": sys.platform,
    }


def bench_payload(
    name: str,
    metrics: Mapping | None = None,
    *,
    records: Sequence[Mapping] | None = None,
    machine: str | Sequence[str] | None = None,
    seed: int | None = None,
    config: Mapping | None = None,
) -> dict:
    """Build a schema-stamped BENCH payload.

    ``metrics`` values may be plain numbers (lower-is-better) or
    ``{"value": x, "direction": "lower"|"higher"|"info", "unit": ...}``
    mappings.
    """
    normalized = {
        key: _normalize_metric(key, value)
        for key, value in (metrics or {}).items()
    }
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "bench",
        "name": name,
        "metrics": normalized,
        "records": [dict(r) for r in records] if records else [],
        "provenance": default_provenance(
            machine=machine, seed=seed, config=config
        ),
    }


def sweep_metrics(
    sweep,
    strategies: Sequence[str] = ("arcs-online", "arcs-offline"),
) -> dict:
    """Gated metrics for a power sweep: normalized time (and energy,
    when the machine meters it) of every non-default strategy at every
    power level - deterministic under the repro seed, so the compare
    tolerance only needs to absorb intentional model changes."""
    metrics: dict = {}
    for cap in sweep.caps:
        label = sweep.cap_label(cap)
        for strategy in strategies:
            cell = sweep.cells.get((label, strategy))
            if cell is None:
                continue
            metrics[f"time_norm[{label}/{strategy}]"] = {
                "value": cell.time_norm, "direction": "lower",
            }
            if cell.energy_norm is not None:
                metrics[f"energy_norm[{label}/{strategy}]"] = {
                    "value": cell.energy_norm, "direction": "lower",
                }
    return metrics


def feature_metrics(comparison) -> dict:
    """Gated metrics for a Figure 3/6/10 feature comparison: every
    normalized feature of every region (default = 1.0; smaller is
    better)."""
    return {
        f"{region}[{feature}]": {"value": value, "direction": "lower"}
        for region in comparison.regions
        for feature, value in
        comparison.offline_normalized[region].items()
    }


def bench_path(directory: str | Path, name: str) -> Path:
    return Path(directory) / f"{BENCH_PREFIX}{name}.json"


def write_bench_json(
    directory: str | Path, payload: Mapping
) -> Path:
    """Atomically write ``BENCH_<payload[name]>.json`` under
    ``directory`` and return its path."""
    name = payload.get("name")
    if not isinstance(name, str) or not name:
        raise BenchFormatError(
            f"payload needs a non-empty 'name', got {name!r}"
        )
    path = bench_path(directory, name)
    atomic_write_text(
        path, json.dumps(dict(payload), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_bench_json(path: str | Path) -> dict | None:
    """One BENCH payload, or ``None`` for unreadable / mismatched
    files (they count as absent, not as crashes)."""
    try:
        blob = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if (
        not isinstance(blob, dict)
        or blob.get("schema") != BENCH_SCHEMA_VERSION
        or blob.get("kind") != "bench"
        or not isinstance(blob.get("name"), str)
        or not isinstance(blob.get("metrics"), dict)
    ):
        return None
    return blob


def load_bench_dir(directory: str | Path) -> dict[str, dict]:
    """Every valid ``BENCH_*.json`` under ``directory``, keyed by
    benchmark name (sorted for deterministic iteration)."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"not a BENCH results directory: {directory}"
        )
    out: dict[str, dict] = {}
    for path in sorted(directory.glob(f"{BENCH_PREFIX}*.json")):
        payload = load_bench_json(path)
        if payload is not None:
            out[payload["name"]] = payload
    return out
