"""Baseline comparison over two sets of ``BENCH_*.json`` results.

``repro analysis compare OLD NEW --tolerance F`` diffs every gated
metric (direction ``lower`` or ``higher``; ``info`` metrics are
recorded provenance, never gated) of every benchmark present in the
baseline set against its counterpart in the new set, and exits
nonzero when any metric moved in its *worse* direction by more than
the relative tolerance.  Benchmarks or metrics that exist in the
baseline but vanished from the new set are regressions too - silent
disappearance is how perf losses historically hid.  New benchmarks /
metrics only present in NEW are reported but never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.bench import load_bench_dir
from repro.util.tables import format_table

#: default relative tolerance: 5% movement in the worse direction.
DEFAULT_TOLERANCE = 0.05


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric of one benchmark."""

    bench: str
    metric: str
    direction: str          # "lower" | "higher"
    old: float | None       # None: metric only exists in NEW
    new: float | None       # None: metric vanished from NEW
    rel_change: float | None  # (new - old) / |old|, None if undefined

    @property
    def status(self) -> str:
        if self.old is None:
            return "new"
        if self.new is None:
            return "missing"
        if self.rel_change is None:
            return "ok"
        worse = (
            self.rel_change if self.direction == "lower"
            else -self.rel_change
        )
        if worse > 0:
            return "worse"
        if worse < 0:
            return "better"
        return "ok"


@dataclass
class ComparisonReport:
    """Everything ``compare_dirs`` found, plus the gate verdict."""

    tolerance: float
    deltas: list[MetricDelta] = field(default_factory=list)
    missing_benches: list[str] = field(default_factory=list)
    new_benches: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricDelta]:
        out = []
        for d in self.deltas:
            if d.status == "missing":
                out.append(d)
            elif d.status == "worse":
                worse = (
                    d.rel_change if d.direction == "lower"
                    else -d.rel_change
                )
                if worse > self.tolerance:
                    out.append(d)
        return out

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_benches


def _compare_metrics(
    bench: str, old: dict, new: dict
) -> list[MetricDelta]:
    deltas: list[MetricDelta] = []
    old_metrics = old["metrics"]
    new_metrics = new["metrics"]
    for name in sorted(set(old_metrics) | set(new_metrics)):
        o = old_metrics.get(name)
        n = new_metrics.get(name)
        direction = (o or n)["direction"]
        if direction == "info":
            continue
        old_v = None if o is None else float(o["value"])
        new_v = None if n is None else float(n["value"])
        rel = None
        if old_v is not None and new_v is not None:
            if old_v == 0.0:
                rel = 0.0 if new_v == 0.0 else float("inf") * (
                    1.0 if new_v > 0 else -1.0
                )
            else:
                rel = (new_v - old_v) / abs(old_v)
        deltas.append(
            MetricDelta(
                bench=bench,
                metric=name,
                direction=direction,
                old=old_v,
                new=new_v,
                rel_change=rel,
            )
        )
    return deltas


def compare_dirs(
    old_dir: str | Path,
    new_dir: str | Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> ComparisonReport:
    """Diff two directories of ``BENCH_*.json`` files.

    The baseline (``old_dir``) defines the gated surface: every
    benchmark it contains must still exist in ``new_dir`` with its
    gated metrics no worse than ``tolerance``.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    old = load_bench_dir(old_dir)
    new = load_bench_dir(new_dir)
    report = ComparisonReport(tolerance=tolerance)
    report.missing_benches = sorted(set(old) - set(new))
    report.new_benches = sorted(set(new) - set(old))
    for name in sorted(set(old) & set(new)):
        report.deltas.extend(_compare_metrics(name, old[name], new[name]))
    return report


def render_comparison(report: ComparisonReport) -> str:
    """Human-readable comparison summary (the CLI output)."""
    lines: list[str] = []
    regressed = {
        (d.bench, d.metric) for d in report.regressions
    }
    interesting = [
        d for d in report.deltas
        if d.status != "ok" or (d.bench, d.metric) in regressed
    ]
    if interesting:
        rows = []
        for d in interesting:
            flag = (
                "REGRESSION"
                if (d.bench, d.metric) in regressed or d.status == "missing"
                else d.status
            )
            rows.append(
                (
                    d.bench,
                    d.metric,
                    d.direction,
                    "-" if d.old is None else f"{d.old:.6g}",
                    "-" if d.new is None else f"{d.new:.6g}",
                    "-" if d.rel_change is None
                    else f"{d.rel_change * 100:+.2f}%",
                    flag,
                )
            )
        lines.append(
            format_table(
                ("benchmark", "metric", "better", "old", "new",
                 "change", "status"),
                rows,
                title=(
                    f"BENCH comparison (tolerance "
                    f"{report.tolerance * 100:g}%)"
                ),
            )
        )
    for name in report.missing_benches:
        lines.append(
            f"REGRESSION: benchmark {name!r} present in the baseline "
            "has no BENCH json in the new results"
        )
    for name in report.new_benches:
        lines.append(f"note: new benchmark {name!r} (no baseline yet)")
    n_gated = len(report.deltas)
    n_reg = len(report.regressions) + len(report.missing_benches)
    lines.append(
        f"{n_gated} gated metric(s) compared, "
        f"{n_reg} regression(s)"
        + ("" if n_reg else " - OK")
    )
    return "\n".join(lines)
