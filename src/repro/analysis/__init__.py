"""Publication-grade analysis pipeline.

Machine-readable results, end to end:

* :mod:`repro.analysis.records` - tidy record tables built from
  generator outputs, cached :class:`StrategyRunResult`\\ s, sweep
  journals and telemetry JSONL;
* :mod:`repro.analysis.registry` - the figure/table registry behind
  ``repro figures``, rendering each artifact through txt / JSON / CSV
  backends;
* :mod:`repro.analysis.bench` - the ``BENCH_<name>.json`` schema every
  benchmark emits next to its ``results/<name>.txt``;
* :mod:`repro.analysis.compare` - the regression gate
  (``repro analysis compare OLD NEW --tolerance F``) CI runs against
  the committed baselines under ``results/baselines/``.
"""

from repro.analysis.bench import (
    BENCH_PREFIX,
    BENCH_SCHEMA_VERSION,
    BenchFormatError,
    bench_path,
    bench_payload,
    feature_metrics,
    load_bench_dir,
    load_bench_json,
    sweep_metrics,
    write_bench_json,
)
from repro.analysis.compare import (
    DEFAULT_TOLERANCE,
    ComparisonReport,
    MetricDelta,
    compare_dirs,
    render_comparison,
)
from repro.analysis.records import (
    RecordError,
    RecordTable,
    feature_records,
    fig1_records,
    fig9_records,
    journal_records,
    result_record,
    sweep_records,
    table1_records,
    table2_records,
    telemetry_records,
)
# Registry symbols resolve lazily (PEP 562): the registry imports the
# text renderers (repro.experiments.reporting), which themselves build
# rows through repro.analysis.records - importing the registry eagerly
# here would make that a circular import.
_REGISTRY_EXPORTS = (
    "FIGURE_SCHEMA_VERSION",
    "FORMATS",
    "REGISTRY",
    "FigureSpec",
    "GeneratedFigure",
    "GenOptions",
    "UnknownFigureError",
    "figure_names",
    "generate_figure",
    "generate_figures",
    "get_spec",
    "write_figure",
)


def __getattr__(name: str):
    if name in _REGISTRY_EXPORTS:
        from repro.analysis import registry

        return getattr(registry, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "BENCH_PREFIX",
    "BENCH_SCHEMA_VERSION",
    "BenchFormatError",
    "ComparisonReport",
    "DEFAULT_TOLERANCE",
    "FIGURE_SCHEMA_VERSION",
    "FORMATS",
    "FigureSpec",
    "GenOptions",
    "GeneratedFigure",
    "MetricDelta",
    "REGISTRY",
    "RecordError",
    "RecordTable",
    "UnknownFigureError",
    "bench_path",
    "bench_payload",
    "compare_dirs",
    "feature_metrics",
    "feature_records",
    "fig1_records",
    "fig9_records",
    "figure_names",
    "generate_figure",
    "generate_figures",
    "get_spec",
    "journal_records",
    "load_bench_dir",
    "load_bench_json",
    "render_comparison",
    "result_record",
    "sweep_metrics",
    "sweep_records",
    "table1_records",
    "table2_records",
    "telemetry_records",
    "write_bench_json",
    "write_figure",
]
