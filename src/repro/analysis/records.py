"""Tidy record tables: the machine-readable form of every result.

Every figure and table in the evaluation reduces to a *record table* -
a flat, ordered list of dicts with scalar cells (one dict per plotted
point / table row).  The registry renders record tables through
interchangeable backends (paper-style text, JSON, CSV), and the
converters below build them from each of the repo's result sources:

* in-memory generator outputs (:mod:`repro.experiments.figures` /
  ``tables`` dataclasses),
* summarized :class:`~repro.experiments.runner.StrategyRunResult`\\ s
  (and therefore the result cache),
* crash-safe sweep journals (:mod:`repro.experiments.journal`),
* fleet journals / fleet results (:mod:`repro.fleet`),
* telemetry JSONL directories (:mod:`repro.telemetry`).

Cell values are restricted to ``str | int | float | bool | None`` so a
table serializes identically through every backend; converters raise
on anything richer instead of emitting unserializable rows.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

from repro.experiments.figures import (
    FEATURES,
    FeatureComparison,
    Fig1Row,
    Fig9Row,
    PowerSweep,
)
from repro.experiments.runner import StrategyRunResult
from repro.experiments.tables import Table1Row, Table2Row

#: the only cell types a record may carry.
SCALAR_TYPES = (str, int, float, bool, type(None))

Record = dict


class RecordError(TypeError):
    """A record carried a non-scalar cell (would not round-trip
    through the JSON/CSV backends)."""


class RecordTable:
    """An ordered list of flat records with homogeneous columns.

    Column order is the insertion order of the first record; every
    record must use exactly the same keys, so the JSON and CSV
    serializations are deterministic and directly comparable across
    runs.
    """

    def __init__(self, records: Iterable[Mapping]) -> None:
        self.records: list[Record] = []
        self.columns: tuple[str, ...] = ()
        for record in records:
            row = dict(record)
            for key, value in row.items():
                if not isinstance(value, SCALAR_TYPES):
                    raise RecordError(
                        f"record cell {key!r} has non-scalar type "
                        f"{type(value).__name__}: {value!r}"
                    )
            if not self.columns:
                self.columns = tuple(row)
            elif tuple(row) != self.columns:
                raise RecordError(
                    f"record columns {tuple(row)} != table columns "
                    f"{self.columns}"
                )
            self.records.append(row)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        if self.records and name not in self.columns:
            raise KeyError(
                f"no column {name!r}; have {self.columns}"
            )
        return [r[name] for r in self.records]

    # -- serialization --------------------------------------------------
    def to_json(self, *, indent: int | None = 2) -> str:
        """JSON array of records (floats round-trip via ``repr``)."""
        return json.dumps(self.records, indent=indent)

    def to_csv(self) -> str:
        """RFC-4180 CSV with a header row, ``\\n`` line endings."""
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(self.columns)
        for record in self.records:
            writer.writerow(
                "" if v is None else v
                for v in (record[c] for c in self.columns)
            )
        return out.getvalue()


# ---------------------------------------------------------------------------
# StrategyRunResult / sweep converters
# ---------------------------------------------------------------------------
def result_record(result: StrategyRunResult) -> Record:
    """One flat row summarizing a measured strategy run."""
    return {
        "strategy": result.strategy,
        "app": result.app_label,
        "machine": result.machine,
        "cap_w": result.cap_w,
        "time_s": result.time_s,
        "energy_j": result.energy_j,
        "repeats": len(result.runs),
        "tuning_runs": result.tuning_runs,
        "degradations": len(result.degradations),
        "cap_changes": len(result.cap_changes),
    }


def sweep_records(
    sweep: PowerSweep,
    strategy_order: Sequence[str] = ("default", "arcs-online",
                                    "arcs-offline"),
) -> list[Record]:
    """One row per (power level, strategy) cell of a power sweep, in
    the paper's presentation order (the order ``render_sweep`` prints
    and the figures plot)."""
    rows: list[Record] = []
    for cap in sweep.caps:
        label = sweep.cap_label(cap)
        for strategy in strategy_order:
            cell = sweep.cells.get((label, strategy))
            if cell is None:
                continue
            result = sweep.results.get((label, strategy))
            rows.append(
                {
                    "app": sweep.app_label,
                    "machine": sweep.machine,
                    "power": label,
                    "strategy": strategy,
                    "time_norm": cell.time_norm,
                    "energy_norm": cell.energy_norm,
                    "time_s": result.time_s if result else None,
                    "energy_j": result.energy_j if result else None,
                }
            )
    return rows


def fig1_records(rows: Sequence[Fig1Row]) -> list[Record]:
    return [
        {
            "power": r.label,
            "config": r.config,
            "time_s": r.time_s,
            "default_time_s": r.default_time_s,
            "improvement_pct": r.improvement_pct,
        }
        for r in rows
    ]


def feature_records(comparison: FeatureComparison) -> list[Record]:
    """One row per region: chosen config + the four normalized
    features of Figures 3/6/10 as columns."""
    rows: list[Record] = []
    for region in comparison.regions:
        feats = comparison.offline_normalized[region]
        row: Record = {
            "app": comparison.app_label,
            "region": region,
            "config": comparison.offline_configs.get(region),
        }
        for feature in FEATURES:
            row[feature] = feats[feature]
        rows.append(row)
    return rows


def fig9_records(rows: Sequence[Fig9Row]) -> list[Record]:
    return [
        {
            "region": r.region,
            "calls": r.calls,
            "implicit_task_s": r.implicit_task_s,
            "loop_s": r.loop_s,
            "barrier_s": r.barrier_s,
            "time_per_call_s": r.time_per_call_s,
            "barrier_fraction": r.barrier_fraction,
        }
        for r in rows
    ]


def table1_records(rows: Sequence[Table1Row]) -> list[Record]:
    return [
        {"parameter": r.parameter, "values": r.values} for r in rows
    ]


def table2_records(rows: Sequence[Table2Row]) -> list[Record]:
    return [{"region": r.region, "config": r.config} for r in rows]


# ---------------------------------------------------------------------------
# on-disk sources: sweep journals and telemetry JSONL
# ---------------------------------------------------------------------------
def journal_records(path: str | Path) -> list[Record]:
    """Flat rows for every completed cell in a sweep journal.

    Cells come out keyed and sorted by their experiment digest (the
    journal's own identity for a cell), each flattened through
    :func:`result_record`.
    """
    from repro.experiments.journal import SweepJournal

    completed = SweepJournal(path).load()
    rows: list[Record] = []
    for digest in sorted(completed):
        row: Record = {"digest": digest}
        row.update(result_record(completed[digest]))
        rows.append(row)
    return rows


def fleet_survival_records(source) -> list[Record]:
    """Survival-rate table for one fleet run.

    ``source`` is either a fleet journal path (the last snapshot is
    the authority - exactly what ``repro fleet run --resume`` would
    restore) or a :func:`repro.fleet.fleet_result_to_json` mapping.
    One row per degradation kind observed in the run - how often it
    fired, which nodes it hit, how many of those nodes nonetheless
    survived - plus a trailing ``fleet`` row carrying the run-level
    survival rate over every started node.
    """
    from repro.fleet.events import DEGRADATION_KINDS, FleetEvent

    if isinstance(source, (str, Path)):
        from repro.fleet.journal import FleetJournal

        loaded = FleetJournal(source).load_last_snapshot()
        if loaded is None:
            return []
        _step, state = loaded
        statuses = {
            str(node_id): str(cell["status"])
            for node_id, cell in state["cells"].items()
        }
        events = [FleetEvent.from_json(b) for b in state["events"]]
    else:
        statuses = {
            str(n["node"]): str(n["status"]) for n in source["nodes"]
        }
        events = [FleetEvent.from_json(b) for b in source["events"]]

    started = [n for n, s in statuses.items() if s != "pending"]
    crashed = [n for n, s in statuses.items() if s == "crashed"]
    rows: list[Record] = []
    for kind in sorted(
        {e.kind for e in events if e.kind in DEGRADATION_KINDS}
    ):
        hits = [e for e in events if e.kind == kind]
        affected = sorted({e.node for e in hits if e.node})
        survived = [
            n for n in affected if statuses.get(n) != "crashed"
        ]
        rows.append(
            {
                "kind": kind,
                "events": len(hits),
                "nodes_affected": len(affected),
                "nodes_survived": len(survived),
                "survival_rate": (
                    len(survived) / len(affected) if affected else 1.0
                ),
            }
        )
    rows.append(
        {
            "kind": "fleet",
            "events": sum(1 for e in events if e.degradation),
            "nodes_affected": len(started),
            "nodes_survived": len(started) - len(crashed),
            "survival_rate": (
                (len(started) - len(crashed)) / len(started)
                if started
                else 1.0
            ),
        }
    )
    return rows


def capsched_timeline_records(directory: str | Path) -> list[Record]:
    """Cap-schedule adaptation timeline from a telemetry directory.

    One row per ``cap.change`` / ``cap.change_rejected`` event across
    every stream, in emission order: at which region invocation the
    schedule moved (or tried to move) the cap, between which levels,
    and whether the write survived the applier's retry policy
    (``applied``).
    """
    rows: list[Record] = []
    for row in telemetry_records(directory):
        name = row.get("name")
        if name not in ("cap.change", "cap.change_rejected"):
            continue
        rows.append(
            {
                "stream": row["stream"],
                "seq": row.get("seq"),
                "invocation": row.get("attrs.invocation"),
                "cap_from": row.get("attrs.cap_from"),
                "cap_to": row.get("attrs.cap_to"),
                "applied": name == "cap.change",
            }
        )
    rows.sort(key=lambda r: (r["stream"], r["seq"] or 0))
    return rows


def telemetry_records(
    directory: str | Path, kinds: Sequence[str] | None = None
) -> list[Record]:
    """Flat rows for every record in a ``--telemetry`` directory.

    Each JSONL file contributes its stem as the ``stream`` column;
    nested attribute payloads are flattened to ``attr.<key>`` columns
    restricted to scalar values (richer payloads are JSON-encoded).
    ``kinds`` filters on the record ``kind`` (``span``, ``event``,
    ``metric``, ...).
    """
    from repro.telemetry import load_telemetry_dir

    rows: list[Record] = []
    for stream, records in load_telemetry_dir(directory):
        for record in records:
            if kinds is not None and record.get("kind") not in kinds:
                continue
            row: Record = {"stream": stream}
            for key, value in record.items():
                if isinstance(value, Mapping):
                    for sub, subval in value.items():
                        if not isinstance(subval, SCALAR_TYPES):
                            subval = json.dumps(subval, sort_keys=True)
                        row[f"{key}.{sub}"] = subval
                elif isinstance(value, SCALAR_TYPES):
                    row[key] = value
                else:
                    row[key] = json.dumps(value, sort_keys=True)
            rows.append(row)
    return rows


def service_hit_rate_records(
    stats_response: Mapping,
    counters: Mapping[str, float],
    tiers: Sequence[str],
) -> list[Record]:
    """Hit-rate rows for the tuning service, at every granularity.

    ``stats_response`` is a daemon ``stats``-verb reply (the
    ``stats`` sub-object carries :meth:`ServiceStore.stats_json`
    including ``per_shard``); ``counters`` are telemetry counter
    totals from a bus that observed the client-side chain; ``tiers``
    is the chain's tier order.  Scopes:

    * ``tier``: per :class:`ConfigSource` tier - ``hits`` is lookups
      the tier answered, ``misses`` is chain lookups it did *not*
      answer (already answered above it, or missed), so ``hit_rate``
      is the tier's share of all chain traffic;
    * ``chain``: the whole degradation chain (miss = fresh tuning);
    * ``shard``: per daemon store shard (zero-traffic shards elided);
    * ``store``: the daemon store total.
    """
    rows: list[Record] = []
    tier_hits = {
        tier: float(counters.get(f"config_source.hits.{tier}", 0.0))
        for tier in tiers
    }
    chain_misses = float(counters.get("config_source.misses", 0.0))
    lookups = sum(tier_hits.values()) + chain_misses
    for tier in tiers:
        hits = tier_hits[tier]
        rows.append(
            {
                "scope": "tier",
                "name": tier,
                "hits": int(hits),
                "misses": int(lookups - hits),
                "requests": int(lookups),
                "hit_rate": (hits / lookups) if lookups else None,
            }
        )
    rows.append(
        {
            "scope": "chain",
            "name": "all",
            "hits": int(lookups - chain_misses),
            "misses": int(chain_misses),
            "requests": int(lookups),
            "hit_rate": (
                (lookups - chain_misses) / lookups if lookups else None
            ),
        }
    )
    store_stats = stats_response.get("stats") or {}
    for shard in store_stats.get("per_shard") or []:
        hits = int(shard.get("hits", 0))
        misses = int(shard.get("misses", 0))
        requests = hits + misses
        if requests == 0:
            continue  # an untouched shard says nothing about hit rate
        rows.append(
            {
                "scope": "shard",
                "name": f"shard{int(shard.get('shard', 0)):02d}",
                "hits": hits,
                "misses": misses,
                "requests": requests,
                "hit_rate": hits / requests,
            }
        )
    hits = int(store_stats.get("hits", 0))
    misses = int(store_stats.get("misses", 0))
    requests = hits + misses
    rows.append(
        {
            "scope": "store",
            "name": "total",
            "hits": hits,
            "misses": misses,
            "requests": requests,
            "hit_rate": (hits / requests) if requests else None,
        }
    )
    return rows


def surrogate_corpus_records(source) -> list[Record]:
    """Flat rows of a surrogate training corpus.

    ``source`` is either a corpus file path (as written by
    ``repro surrogate fit --corpus`` /
    :func:`repro.surrogate.corpus.save_corpus`) or an iterable of
    :class:`~repro.surrogate.corpus.TrainingRecord`\\ s.  Training
    records are already flat scalar cells, so they pass through the
    backends unchanged.
    """
    if isinstance(source, (str, Path)):
        from repro.surrogate.corpus import load_corpus

        records, _stats = load_corpus(source)
    else:
        records = list(source)
    return [r.to_json() for r in records]


def surrogate_fit_records(report) -> list[Record]:
    """One-row table of a surrogate fit-quality report (corpus notes
    are counted rather than inlined - they are free-text, not cells)."""
    blob = report.to_json()
    blob["corpus_notes"] = len(blob.pop("corpus_notes"))
    return [blob]


def bench_trend_records(bench_dir: str | Path) -> list[Record]:
    """BENCH metric trends across a directory of snapshots.

    ``bench_dir`` holds one subdirectory per recorded commit (sorted
    name order = history order - date- or sequence-prefixed names
    give chronological trends), each a ``BENCH_*.json`` set as
    written by the benchmark suite.  One row per (bench, metric,
    commit) with the value and its relative change against the
    *first* snapshot that carried the metric.
    """
    from repro.analysis.bench import load_bench_dir

    root = Path(bench_dir)
    if not root.is_dir():
        raise FileNotFoundError(
            f"not a bench-history directory: {root}"
        )
    snapshots: list[tuple[str, dict[str, dict]]] = []
    for sub in sorted(p for p in root.iterdir() if p.is_dir()):
        try:
            loaded = load_bench_dir(sub)
        except FileNotFoundError:
            continue
        if loaded:
            snapshots.append((sub.name, loaded))
    if not snapshots:
        raise ValueError(
            f"no BENCH_*.json snapshots under {root} (expected one "
            "subdirectory per commit)"
        )
    # stable row order: bench, metric, then commit (history) order
    names = sorted({n for _, loaded in snapshots for n in loaded})
    rows: list[Record] = []
    for bench in names:
        metrics = sorted(
            {
                m
                for _, loaded in snapshots
                if bench in loaded
                for m in loaded[bench]["metrics"]
            }
        )
        for metric in metrics:
            first: float | None = None
            for commit, loaded in snapshots:
                entry = loaded.get(bench, {}).get("metrics", {}).get(
                    metric
                )
                if entry is None:
                    continue
                value = float(entry["value"])
                if first is None:
                    first = value
                rows.append(
                    {
                        "bench": bench,
                        "metric": metric,
                        "direction": str(entry["direction"]),
                        "commit": commit,
                        "value": value,
                        "rel_change_vs_first": (
                            (value - first) / abs(first)
                            if first not in (None, 0.0)
                            else 0.0
                        ),
                    }
                )
    return rows
