"""Watchdog supervision for region measurement.

PR 2 taught the simulator to *inject* hangs and crashes; this layer
adds *recovery*.  Every region execution in a supervised run goes
through :meth:`RegionSupervisor.execute`, which consults the
``region.exec`` fault site and applies an escalating ladder when a
measurement fails or stalls:

1. **bounded retry** - a crashed execution is retried up to
   ``max_retries`` times (the candidate configuration stays
   outstanding in its tuning session, so the retry re-measures it);
2. **pin to default** - a region that keeps failing is pinned to the
   default configuration for the rest of the run via
   :meth:`~repro.core.policy.ArcsPolicy.pin_region`, and the
   degradation is recorded on the existing
   ``AppRunResult.degraded`` channel so it surfaces in CLI output;
3. **abort** - a region that *still* fails after being pinned aborts
   the run with :class:`RunAbortedError`.  The last run checkpoint
   (written after the previous completed invocation) remains valid,
   so the operator can resume after fixing the environment.

With no fault injector and no deadline the supervisor is a pass-through:
it adds zero simulated time and zero RNG draws, so supervised clean
runs are byte-identical to unsupervised ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import DEFAULT_HANG_S
from repro.openmp.records import RegionExecutionRecord
from repro.openmp.region import RegionProfile
from repro.openmp.runtime import OpenMPRuntime
from repro.telemetry.bus import bus


class RunAbortedError(RuntimeError):
    """The watchdog gave up on a region that kept failing even after
    being pinned to the default configuration."""

    def __init__(self, region: str, reason: str) -> None:
        self.region = region
        self.reason = reason
        #: the telemetry flight recorder's last-N events at abort time
        #: (empty when telemetry is disabled) - the post-mortem context
        #: for what the control loop saw right before giving up.
        self.flight: tuple[dict, ...] = bus().flight.dump()
        super().__init__(
            f"run aborted: region {region!r} kept failing after being "
            f"pinned to the default configuration ({reason}); the last "
            "checkpoint remains valid for --resume-from"
        )


@dataclass(frozen=True)
class SuperviseConfig:
    """Watchdog knobs.

    ``deadline_s`` is the per-execution wall-time budget (``None`` =
    no deadline; crashes are still handled).  ``max_retries`` bounds
    the consecutive failures tolerated before escalating.
    """

    deadline_s: float | None = None
    max_retries: int = 2

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0 or None, got {self.deadline_s}"
            )
        if self.max_retries < 1:
            raise ValueError(
                f"max_retries must be >= 1, got {self.max_retries}"
            )


@dataclass
class _RegionHealth:
    consecutive_failures: int = 0
    pinned: bool = False


class RegionSupervisor:
    """Wraps ``runtime.parallel_for`` with deadline + escalation.

    ``pin`` is the policy hook called at the pin-to-default rung
    (normally :meth:`ArcsPolicy.pin_region`); ``None`` means the
    degradation note is recorded but no policy is told (non-tuning
    strategies, which already run the default configuration).
    """

    def __init__(
        self,
        runtime: OpenMPRuntime,
        config: SuperviseConfig | None = None,
        pin=None,
    ) -> None:
        self.runtime = runtime
        self.config = config or SuperviseConfig()
        self.pin = pin
        self._health: dict[str, _RegionHealth] = {}

    # ------------------------------------------------------------------
    def _attempt(
        self, region: RegionProfile
    ) -> tuple[RegionExecutionRecord | None, str | None]:
        """One supervised execution attempt: ``(record, failure)``.
        ``record is None`` means the execution never completed (crash);
        a record plus a failure means it completed but stalled past the
        deadline (the measurement itself is still trustworthy)."""
        node = self.runtime.node
        spec = None
        if node.faults is not None:
            spec = node.faults.draw("region.exec")
        if spec is not None and spec.action == "crash":
            return None, "injected execution crash"
        before = node.now_s
        record = self.runtime.parallel_for(region)
        wall = node.now_s - before
        if spec is not None and spec.action == "hang":
            hang_s = (
                DEFAULT_HANG_S
                if spec.magnitude is None
                else spec.magnitude
            )
            node.advance(hang_s)
            wall += hang_s
        deadline = self.config.deadline_s
        if deadline is not None and wall > deadline:
            return record, (
                f"execution stalled: {wall:g}s exceeded the {deadline:g}s "
                "deadline"
            )
        return record, None

    def execute(self, region: RegionProfile) -> RegionExecutionRecord:
        """Execute ``region`` under supervision (the runner passes this
        as ``run_application``'s ``execute`` hook)."""
        health = self._health.setdefault(region.name, _RegionHealth())
        attempts = 0
        while True:
            attempts += 1
            record, failure = self._attempt(region)
            if failure is None:
                if attempts > 1:
                    self.runtime.degradations.append(
                        f"region {region.name}: recovered after "
                        f"{attempts - 1} failed attempt(s)"
                    )
                health.consecutive_failures = 0
                return record
            health.consecutive_failures += 1
            if record is not None:
                # completed-but-stalled: the measurement is usable, so
                # never re-run it - but sustained stalling escalates.
                if health.consecutive_failures > self.config.max_retries:
                    self._escalate(region.name, failure)
                    health.consecutive_failures = 0
                return record
            if attempts <= self.config.max_retries:
                bus().emit(
                    "supervise.retry",
                    region=region.name,
                    attempt=attempts,
                    failure=failure,
                )
                continue
            self._escalate(region.name, failure)
            attempts = 0
            health.consecutive_failures = 0

    def _escalate(self, region_name: str, failure: str) -> None:
        health = self._health[region_name]
        if not health.pinned:
            health.pinned = True
            self.runtime.degradations.append(
                f"region {region_name}: {failure} persisted past "
                f"{self.config.max_retries} retries; pinned to the "
                "default configuration"
            )
            bus().emit(
                "supervise.pin", region=region_name, failure=failure
            )
            if self.pin is not None:
                self.pin(region_name, failure)
            return
        bus().emit(
            "supervise.abort", region=region_name, failure=failure
        )
        raise RunAbortedError(region_name, failure)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "health": {
                name: [h.consecutive_failures, h.pinned]
                for name, h in self._health.items()
            }
        }

    def restore(self, blob: dict) -> None:
        self._health = {
            str(name): _RegionHealth(int(consecutive), bool(pinned))
            for name, (consecutive, pinned) in blob["health"].items()
        }
