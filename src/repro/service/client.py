"""The blocking service client: deadlines, retries, circuit breaker.

This is the robustness headline of the service layer.  Every request:

* carries a hard **deadline** (socket timeout on connect and read);
* is retried under a seeded :class:`~repro.util.retry.RetryPolicy`
  (jittered exponential backoff, deterministic under the repro seed);
* flows through the client-side **fault sites** - ``service.connect``
  (refused), ``service.response`` (hang past deadline / slow),
  ``service.payload`` (torn / bit-flipped bytes) - so every network
  failure mode is reproducible from a fault plan without a hostile
  network;
* classifies failures into :class:`ServiceUnavailable` /
  :class:`ServiceTimeout` / :class:`ServiceProtocolError`, all of them
  :class:`ServiceError` - the one type the
  :class:`~repro.service.source.ServiceSource` tier catches to degrade
  to the next :class:`ConfigSource` instead of erroring.

The :class:`CircuitBreaker` stops a dead daemon from charging every
lookup the full deadline x retries cost: after ``failure_threshold``
consecutive failures the breaker opens and lookups fail fast
(no network at all); after ``probe_interval`` short-circuited calls
it half-opens and lets exactly one probe through - success closes it,
failure re-opens it.  The schedule counts *requests*, not wall-clock,
so breaker behaviour is deterministic under test.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass

from repro.faults.inject import FaultInjector
from repro.obs.trace import traced_span
from repro.service import protocol
from repro.telemetry.bus import bus
from repro.util.retry import RetryPolicy

#: default per-request deadline.
DEFAULT_DEADLINE_S = 2.0

#: default network retry policy: 3 total attempts, 25 ms base backoff
#: doubling to at most 250 ms, up to 50% seeded jitter.
DEFAULT_RETRY = RetryPolicy(
    attempts=3,
    base_delay_s=0.025,
    multiplier=2.0,
    max_delay_s=0.25,
    jitter=0.5,
)


class ServiceError(RuntimeError):
    """Base for every client-side service failure (the type a
    :class:`ConfigSource` tier catches to fall back)."""


class ServiceUnavailable(ServiceError):
    """Could not connect (refused / reset / unreachable)."""


class ServiceTimeout(ServiceError):
    """The per-request deadline elapsed before a full response."""


class ServiceProtocolError(ServiceError):
    """The response was torn, corrupt, or spoke a foreign schema."""


class ServiceRequestFailed(ServiceError):
    """The daemon answered with ``ok: false``."""


@dataclass
class CircuitBreaker:
    """Request-count-based breaker: open fails fast, half-open probes.

    States: ``closed`` (normal), ``open`` (fail fast without touching
    the network), ``half_open`` (one probe in flight).  Transitions
    are driven purely by call counts, so behaviour is deterministic.
    """

    failure_threshold: int = 3
    probe_interval: int = 8
    state: str = "closed"
    consecutive_failures: int = 0
    skipped: int = 0
    opens: int = 0

    def allow(self) -> bool:
        """May the next request touch the network?  While open, counts
        the short-circuited call; every ``probe_interval``-th call
        half-opens and is let through as the probe."""
        if self.state == "closed":
            return True
        if self.state == "half_open":
            return True
        self.skipped += 1
        if self.skipped >= self.probe_interval:
            self.state = "half_open"
            self.skipped = 0
            tb = bus()
            if tb.enabled:
                tb.emit("service.breaker", state="half_open")
            return True
        return False

    def record_success(self) -> None:
        if self.state != "closed":
            tb = bus()
            if tb.enabled:
                tb.emit("service.breaker", state="closed")
        self.state = "closed"
        self.consecutive_failures = 0
        self.skipped = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        tripped = (
            self.state == "half_open"
            or self.consecutive_failures >= self.failure_threshold
        )
        if tripped and self.state != "open":
            self.state = "open"
            self.skipped = 0
            self.opens += 1
            tb = bus()
            if tb.enabled:
                tb.count("service.breaker_opens")
                tb.emit("service.breaker", state="open")


def parse_address(address: str | tuple[str, int]) -> tuple[str, int]:
    """Accept ``(host, port)`` or ``"host:port"``."""
    if isinstance(address, tuple):
        return address[0], int(address[1])
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"service address must be host:port, got {address!r}"
        )
    return host, int(port)


class ServiceClient:
    """Blocking newline-JSON client for one daemon address."""

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        deadline_s: float = DEFAULT_DEADLINE_S,
        retry: RetryPolicy = DEFAULT_RETRY,
        faults: FaultInjector | None = None,
        sleep=time.sleep,
    ) -> None:
        if deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0, got {deadline_s}"
            )
        self.address = parse_address(address)
        self.deadline_s = deadline_s
        self.retry = retry
        self.faults = faults
        self._sleep = sleep

    # ------------------------------------------------------------------
    # high-level ops
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self.request(protocol.request("ping"))

    def get(self, key: str) -> dict | None:
        """The stored payload for ``key``, or ``None`` on a clean
        miss.  Raises a :class:`ServiceError` subclass on failure."""
        response = self.request(protocol.request("get", key=key))
        if not response.get("hit"):
            return None
        payload = response.get("payload")
        if not isinstance(payload, dict):
            raise ServiceProtocolError(
                "get response marked hit but carried no payload"
            )
        return payload

    def put(self, key: str, payload: dict) -> None:
        self.request(
            protocol.request("put", key=key, payload=payload)
        )

    def stats(self) -> dict:
        return self.request(protocol.request("stats"))

    def shutdown(self) -> None:
        self.request(protocol.request("shutdown"))

    # ------------------------------------------------------------------
    # request machinery
    # ------------------------------------------------------------------
    def request(self, message: dict) -> dict:
        """Send one request with deadline + retry; returns the
        validated ``ok`` response.

        Under an ambient trace context the whole request becomes a
        ``service.request`` span and the frame carries its traceparent
        (stamped once per request, not per retry attempt, so the
        daemon's serve spans all hang off one client node).
        """
        op = str(message.get("op", "?"))
        tb = bus()
        with traced_span("service.request", op=op):
            if tb.enabled:
                tb.count(f"service.client.{op}")
                ctx = tb.trace
                if ctx is not None and "trace" not in message:
                    message = dict(message)
                    message["trace"] = ctx.to_traceparent()
            data = protocol.encode(message)
            # ServiceRequestFailed is deliberately NOT retried: the
            # daemon answered coherently, so the same frame would fail
            # again.
            return self.retry.run(
                lambda: self._attempt(data),
                retry_on=(
                    ServiceUnavailable,
                    ServiceTimeout,
                    ServiceProtocolError,
                ),
                site=f"service.{op}",
                salt=("service", op),
                sleep=self._sleep,
            )

    def _attempt(self, data: bytes) -> dict:
        raw = self._exchange(data)
        raw = self._mangle_payload(raw)
        try:
            response = protocol.validate_response(
                protocol.decode(raw)
            )
        except protocol.ProtocolError as exc:
            raise ServiceProtocolError(str(exc)) from exc
        if not response.get("ok"):
            # the daemon answered coherently but negatively; retrying
            # the same frame cannot help, so fail without the backoff
            # dance - the source tier treats it like any ServiceError.
            raise ServiceRequestFailed(
                str(response.get("error", "request failed"))
            )
        return response

    def _exchange(self, data: bytes) -> bytes:
        """One connect/send/read cycle under the deadline, with the
        client-side fault sites applied in order."""
        faults = self.faults
        if faults is not None:
            spec = faults.draw("service.connect")
            if spec is not None:
                raise ServiceUnavailable(
                    f"injected connection refused to "
                    f"{self.address[0]}:{self.address[1]}"
                )
        try:
            sock = socket.create_connection(
                self.address, timeout=self.deadline_s
            )
        except socket.timeout as exc:
            raise ServiceTimeout(
                f"connect to {self.address[0]}:{self.address[1]} "
                f"exceeded the {self.deadline_s:g}s deadline"
            ) from exc
        except OSError as exc:
            raise ServiceUnavailable(
                f"cannot connect to "
                f"{self.address[0]}:{self.address[1]}: {exc}"
            ) from exc
        with sock:
            deadline = time.monotonic() + self.deadline_s
            try:
                sock.sendall(data)
            except OSError as exc:
                raise ServiceUnavailable(
                    f"send failed: {exc}"
                ) from exc
            if faults is not None:
                spec = faults.draw("service.response")
                if spec is not None:
                    if spec.action == "hang":
                        # the server never answers: the deadline is
                        # charged logically, not slept, so fault tests
                        # stay fast.
                        raise ServiceTimeout(
                            f"injected response hang exceeded the "
                            f"{self.deadline_s:g}s deadline"
                        )
                    self._sleep(min(spec.magnitude or 0.01, 0.05))
            return self._read_line(sock, deadline)

    def _read_line(self, sock: socket.socket, deadline: float) -> bytes:
        chunks: list[bytes] = []
        total = 0
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceTimeout(
                    f"response exceeded the {self.deadline_s:g}s "
                    "deadline"
                )
            sock.settimeout(remaining)
            try:
                chunk = sock.recv(65536)
            except socket.timeout as exc:
                raise ServiceTimeout(
                    f"response exceeded the {self.deadline_s:g}s "
                    "deadline"
                ) from exc
            except OSError as exc:
                raise ServiceUnavailable(
                    f"connection lost mid-response: {exc}"
                ) from exc
            if not chunk:
                # server closed before the terminating newline - the
                # mid-write-crash signature; the partial frame is a
                # protocol error, distinct from a clean miss.
                raise ServiceProtocolError(
                    "connection closed mid-response "
                    f"({total} byte(s) received, no frame terminator)"
                )
            chunks.append(chunk)
            total += len(chunk)
            if total > protocol.MAX_LINE_BYTES:
                raise ServiceProtocolError(
                    "response exceeded the frame size limit"
                )
            if chunk.endswith(b"\n") or b"\n" in chunk:
                return b"".join(chunks)

    def _mangle_payload(self, raw: bytes) -> bytes:
        """Apply the ``service.payload`` fault site to received bytes:
        ``torn`` truncates mid-frame, ``corrupt`` flips a byte into
        JSON garbage."""
        if self.faults is None:
            return raw
        spec = self.faults.draw("service.payload")
        if spec is None:
            return raw
        if spec.action == "torn":
            return raw[: max(1, len(raw) // 2)]
        # corrupt: flip a mid-frame byte; 0xFF is invalid inside any
        # UTF-8 JSON document, so the decode reliably fails.
        mid = len(raw) // 2
        return raw[:mid] + b"\xff" + raw[mid + 1 :]
