"""The daemon's disk-persistent sharded config-knowledge store.

Layout (``root`` is the daemon's ``--store`` directory)::

    root/
        shard-00.jsonl ... shard-<n>.jsonl   # append-only entry logs
        quarantine/<shard>.<k>               # corrupt shards, kept for
                                             # post-mortem, never read

Each shard is an append-only JSONL log (the :class:`~repro.
experiments.journal.SweepJournal` recipe) whose lines are
schema-stamped **and checksummed**: a torn tail from a crash mid-write
*or* a bit flipped anywhere in the file is detected per line, the
offending shard is quarantined (renamed aside, preserved for
inspection), every line that still validates is salvaged into a fresh
shard, and the other shards are never touched.  Within a shard the
last line for a key wins, so an update is just another append -
compaction happens on :meth:`close`.

Admission is LRU-bounded (``capacity`` entries across all shards);
writes are batched in memory (``write_behind`` pending entries per
flush) and the final flush on :meth:`close` is fsynced, so a daemon
shut down cleanly never loses acknowledged writes and a daemon killed
hard loses at most the unflushed write-behind window - never its
integrity.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.telemetry.bus import bus
from repro.util.atomicio import atomic_write_text

#: bump when the entry line layout changes; mismatched lines are
#: treated as corrupt (quarantined + salvaged), never silently mixed.
STORE_SCHEMA_VERSION = 1

#: default shard count; keys spread by digest prefix.
DEFAULT_SHARDS = 16

#: default LRU capacity (entries across all shards).
DEFAULT_CAPACITY = 4096

#: default write-behind window: pending puts buffered before an
#: automatic flush.
DEFAULT_WRITE_BEHIND = 64


def _line_checksum(key: str, payload: dict) -> str:
    blob = json.dumps(
        [key, payload], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


@dataclass
class StoreStats:
    """Operation counters, surfaced through the daemon's ``stats`` op."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    flushes: int = 0
    quarantined_shards: int = 0
    salvaged_entries: int = 0


class ServiceStore:
    """Sharded, LRU-bounded, write-behind (key -> JSON payload) store.

    Not thread-safe by design: the daemon drives it from a single
    asyncio event loop.  All loading is tolerant - a corrupt shard
    costs its unsalvageable lines, never an exception and never the
    other shards.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        shards: int = DEFAULT_SHARDS,
        capacity: int = DEFAULT_CAPACITY,
        write_behind: int = DEFAULT_WRITE_BEHIND,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if write_behind < 1:
            raise ValueError(
                f"write_behind must be >= 1, got {write_behind}"
            )
        self.root = Path(root)
        self.shards = shards
        self.capacity = capacity
        self.write_behind = write_behind
        self.stats = StoreStats()
        #: per-shard (hits, misses) counters, keyed by shard index -
        #: the raw material of the ``service_hit_rate`` figure, served
        #: live through the daemon's ``stats`` op.
        self._shard_hits: dict[int, int] = {}
        self._shard_misses: dict[int, int] = {}
        #: live entries in LRU order (oldest first; dict preserves
        #: insertion order and re-insertion moves to the end).
        self._entries: dict[str, dict] = {}
        #: keys with writes not yet flushed to their shard.
        self._pending: dict[str, dict] = {}
        #: shards whose on-disk form has stale lines (evicted or
        #: superseded entries); rewritten on close.
        self._dirty_shards: set[int] = set()
        self._closed = False
        self._load()

    # ------------------------------------------------------------------
    # paths / sharding
    # ------------------------------------------------------------------
    def shard_index(self, key: str) -> int:
        digest = hashlib.sha256(key.encode()).digest()
        return digest[0] % self.shards

    def shard_path(self, index: int) -> Path:
        return self.root / f"shard-{index:02d}.jsonl"

    # ------------------------------------------------------------------
    # loading + corruption recovery
    # ------------------------------------------------------------------
    def _load(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        for index in range(self.shards):
            self._load_shard(index)
        self._enforce_capacity()

    def _load_shard(self, index: int) -> None:
        path = self.shard_path(index)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return
        entries: dict[str, dict] = {}
        corrupt = 0
        for raw in data.splitlines():
            line = raw.decode(errors="replace").strip()
            if not line:
                continue
            entry = self._parse_line(line)
            if entry is None:
                # a torn tail, a bit flip, or a foreign schema.  Keep
                # scanning: lines are independently checksummed, so
                # later intact lines are still trustworthy.
                corrupt += 1
                continue
            key, payload = entry
            entries[key] = payload
        if corrupt:
            self._quarantine(index, path, entries, corrupt)
        self._entries.update(entries)

    @staticmethod
    def _parse_line(line: str) -> tuple[str, dict] | None:
        try:
            blob = json.loads(line)
        except json.JSONDecodeError:
            return None
        if (
            not isinstance(blob, dict)
            or blob.get("schema") != STORE_SCHEMA_VERSION
        ):
            return None
        key = blob.get("key")
        payload = blob.get("payload")
        if not isinstance(key, str) or not isinstance(payload, dict):
            return None
        if blob.get("crc") != _line_checksum(key, payload):
            return None
        return key, payload

    def _quarantine(
        self,
        index: int,
        path: Path,
        salvaged: dict[str, dict],
        corrupt: int,
    ) -> None:
        """Move a damaged shard aside and rebuild it from the lines
        that still validate.  Quarantined copies are numbered, never
        overwritten, so repeated corruption keeps every post-mortem."""
        qdir = self.root / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        n = 0
        while (qdir / f"{path.name}.{n}").exists():
            n += 1
        os.replace(path, qdir / f"{path.name}.{n}")
        self._rewrite_shard(index, salvaged)
        self.stats.quarantined_shards += 1
        self.stats.salvaged_entries += len(salvaged)
        tb = bus()
        if tb.enabled:
            tb.count("service.store.quarantines")
            tb.emit(
                "service.store.shard_quarantined",
                shard=index,
                corrupt_lines=corrupt,
                salvaged=len(salvaged),
            )

    def _rewrite_shard(
        self, index: int, entries: dict[str, dict]
    ) -> None:
        lines = [
            self._encode_line(key, payload)
            for key, payload in entries.items()
        ]
        atomic_write_text(
            self.shard_path(index),
            "".join(line + "\n" for line in lines),
        )

    @staticmethod
    def _encode_line(key: str, payload: dict) -> str:
        # payload insertion order is preserved (no sort_keys): served
        # entries must round-trip byte-identically; only the CRC uses
        # a canonical (sorted) rendering.
        return json.dumps(
            {
                "schema": STORE_SCHEMA_VERSION,
                "key": key,
                "payload": payload,
                "crc": _line_checksum(key, payload),
            },
            separators=(",", ":"),
        )

    # ------------------------------------------------------------------
    # reads / writes
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> dict | None:
        shard = self.shard_index(key)
        payload = self._entries.get(key)
        if payload is None:
            self.stats.misses += 1
            self._shard_misses[shard] = (
                self._shard_misses.get(shard, 0) + 1
            )
            return None
        # LRU touch: re-insert at the freshest end.
        del self._entries[key]
        self._entries[key] = payload
        self.stats.hits += 1
        self._shard_hits[shard] = self._shard_hits.get(shard, 0) + 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        if self._closed:
            raise RuntimeError("store is closed")
        if key in self._entries:
            del self._entries[key]
            self._dirty_shards.add(self.shard_index(key))
        self._entries[key] = payload
        self._pending[key] = payload
        self.stats.puts += 1
        self._enforce_capacity()
        if len(self._pending) >= self.write_behind:
            self.flush()

    def _enforce_capacity(self) -> None:
        while len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self._pending.pop(oldest, None)
            self._dirty_shards.add(self.shard_index(oldest))
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def flush(self, *, fsync: bool = False) -> int:
        """Append pending writes to their shards; returns how many
        entries were written.  ``fsync=True`` additionally forces the
        appends to stable storage (the shutdown path)."""
        if not self._pending:
            return 0
        by_shard: dict[int, list[str]] = {}
        for key, payload in self._pending.items():
            by_shard.setdefault(self.shard_index(key), []).append(
                self._encode_line(key, payload)
            )
        for index, lines in sorted(by_shard.items()):
            path = self.shard_path(index)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "a") as handle:
                handle.write("".join(line + "\n" for line in lines))
                handle.flush()
                if fsync:
                    os.fsync(handle.fileno())
        written = len(self._pending)
        self._pending.clear()
        self.stats.flushes += 1
        tb = bus()
        if tb.enabled:
            tb.count("service.store.flushes")
            tb.emit(
                "service.store.flush", entries=written, fsync=fsync
            )
        return written

    def compact(self) -> None:
        """Rewrite every shard that accumulated stale lines (evicted
        or superseded entries) from the live map."""
        for index in sorted(self._dirty_shards):
            live = {
                key: payload
                for key, payload in self._entries.items()
                if self.shard_index(key) == index
            }
            self._rewrite_shard(index, live)
        self._dirty_shards.clear()

    def close(self) -> None:
        """Flush (fsynced) and compact; idempotent."""
        if self._closed:
            return
        self.flush(fsync=True)
        self.compact()
        self._closed = True

    # ------------------------------------------------------------------
    def stats_json(self) -> dict:
        shard_entries: dict[int, int] = {}
        for key in self._entries:
            index = self.shard_index(key)
            shard_entries[index] = shard_entries.get(index, 0) + 1
        per_shard = []
        for index in range(self.shards):
            hits = self._shard_hits.get(index, 0)
            misses = self._shard_misses.get(index, 0)
            per_shard.append(
                {
                    "shard": index,
                    "entries": shard_entries.get(index, 0),
                    "hits": hits,
                    "misses": misses,
                }
            )
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "shards": self.shards,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "puts": self.stats.puts,
            "evictions": self.stats.evictions,
            "flushes": self.stats.flushes,
            "quarantined_shards": self.stats.quarantined_shards,
            "salvaged_entries": self.stats.salvaged_entries,
            "per_shard": per_shard,
        }
