"""``ConfigSource``: the degradation-ordered tuned-config chain.

ARCS-Offline needs tuned per-region configurations before its measured
runs.  Historically they came from exactly one place (a local
:class:`~repro.core.history.HistoryStore`, tuned fresh if absent).
This module makes the provenance explicit and *ordered by degradation*:

1. :class:`ServiceSource` - the shared ``repro serve`` daemon (other
   tenants' tuning, survives every process);
2. :class:`MemoSource`   - a process-wide warm memo (free once any
   strategy in this process tuned the context);
3. :class:`HistorySource` - the local on-disk history file;
4. fresh tuning - not a source: it is what the runner does when the
   whole chain misses.

:class:`ChainedConfigSource` walks the tiers in order.  A tier that
*fails* (network fault, corrupt entry, open breaker) records a
degradation note and falls through - the chain as a whole never
raises, so every injected network fault degrades to a correct local
answer.  Hits are promoted back up into the tiers that missed, so a
recovered daemon is re-warmed by its clients.

Keys are :class:`ConfigKey` pairs: the human-readable experiment key
(local history files) plus a content-addressed digest over the full
measurement context - app fingerprint, machine, cap, seed, noise,
fault plan - so multi-tenant sharing can never collide two different
experiments that happen to share a label.
"""

from __future__ import annotations

import hashlib
import json
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.history import (
    HistoryStore,
    _config_from_json,
    _config_to_json,
)
from repro.faults.plan import plan_fingerprint
from repro.openmp.types import OMPConfig
from repro.obs.trace import traced_span
from repro.service.client import (
    CircuitBreaker,
    ServiceClient,
    ServiceError,
)
from repro.telemetry.bus import bus

if TYPE_CHECKING:  # avoid the runner <-> source import cycle
    from repro.experiments.runner import ExperimentSetup
    from repro.workloads.base import Application

#: bump when the shared-knowledge payload layout or digest inputs
#: change; old service entries then simply miss.
KNOWLEDGE_SCHEMA_VERSION = 1

#: bound on the process-wide memo tier (FIFO admission, like the
#: evaluation memo in :mod:`repro.openmp.batch`).
MEMO_CAPACITY = 512

#: Entry = (configs per region, objective values per region).
Entry = tuple[dict[str, OMPConfig], dict[str, float | None]]


@dataclass(frozen=True)
class ConfigKey:
    """One tuning context, in both keying schemes."""

    experiment: str  #: human-readable ``app|machine|cap|workload``
    digest: str      #: content-addressed digest (service / memo key)


def config_key(app: "Application", setup: "ExperimentSetup") -> ConfigKey:
    """Key for the tuned knowledge of one (app, machine, cap) context.

    Mirrors :func:`repro.experiments.cache.tuning_digest` (strategy
    and repeats excluded - every offline cell of a context shares one
    exhaustive tuning result) but is derived independently so the
    service payload schema can evolve without invalidating the local
    result cache.
    """
    from repro.core.history import experiment_key
    from repro.experiments.serialize import app_fingerprint

    blob: dict = {
        "schema": KNOWLEDGE_SCHEMA_VERSION,
        "app": app.name,
        "workload": app.workload,
        "fingerprint": app_fingerprint(app),
        "machine": setup.spec.name,
        "cap_w": setup.cap_w,
        "seed": setup.seed,
        "noise_sigma": setup.noise_sigma,
    }
    faults = plan_fingerprint(setup.fault_plan)
    if faults is not None:
        blob["faults"] = faults
    digest = hashlib.sha256(
        json.dumps(blob, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    return ConfigKey(
        experiment=experiment_key(
            app.name, setup.spec.name, setup.cap_w, app.workload
        ),
        digest=digest,
    )


# ---------------------------------------------------------------------------
# entry <-> payload
# ---------------------------------------------------------------------------
def entry_to_payload(key: ConfigKey, entry: Entry) -> dict:
    configs, values = entry
    return {
        "schema": KNOWLEDGE_SCHEMA_VERSION,
        "experiment": key.experiment,
        "regions": {
            region: _config_to_json(cfg, values.get(region))
            for region, cfg in configs.items()
        },
    }


def payload_to_entry(payload: dict) -> Entry:
    """Inverse of :func:`entry_to_payload`; raises ``KeyError`` /
    ``ValueError`` / ``TypeError`` on malformed payloads (the caller
    treats those as a failed tier, not a crash)."""
    if payload.get("schema") != KNOWLEDGE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported knowledge schema {payload.get('schema')!r}"
        )
    regions = payload["regions"]
    if not isinstance(regions, dict) or not regions:
        raise ValueError("knowledge entry holds no regions")
    configs: dict[str, OMPConfig] = {}
    values: dict[str, float | None] = {}
    for region, blob in regions.items():
        configs[region], values[region] = _config_from_json(blob)
    return configs, values


# ---------------------------------------------------------------------------
# the source tiers
# ---------------------------------------------------------------------------
class ConfigSource(ABC):
    """One tier of tuned-config knowledge.

    ``lookup``/``publish`` NEVER raise for operational failures - a
    failing tier appends a degradation note to ``self.notes`` (drained
    by the caller into ``StrategyRunResult.degradations``) and reports
    a miss, so the chain above it can fall through.
    """

    name: str = "?"
    #: whether a hit from this tier may be promoted into the tiers
    #: above it.  False for *derived* knowledge (the surrogate
    #: cold-start tier): predictions must never be written into the
    #: measured-knowledge tiers as if they had been tuned.
    promote: bool = True

    def __init__(self) -> None:
        self.notes: list[str] = []

    @abstractmethod
    def lookup(self, key: ConfigKey) -> Entry | None:
        """Tuned entry for ``key``, or ``None`` (miss or failure)."""

    @abstractmethod
    def publish(self, key: ConfigKey, entry: Entry) -> None:
        """Best-effort write-through of freshly tuned knowledge."""

    def drain_notes(self) -> list[str]:
        notes, self.notes = self.notes, []
        return notes

    def _note(self, text: str) -> None:
        note = f"config source {self.name}: {text}"
        if note not in self.notes:
            self.notes.append(note)


class HistorySource(ConfigSource):
    """The local ARCS history file as a chain tier."""

    name = "history"

    def __init__(self, store: HistoryStore) -> None:
        super().__init__()
        self.store = store

    def lookup(self, key: ConfigKey) -> Entry | None:
        if not self.store.has(key.experiment):
            return None
        return (
            self.store.load(key.experiment),
            self.store.load_values(key.experiment),
        )

    def publish(self, key: ConfigKey, entry: Entry) -> None:
        configs, values = entry
        self.store.save(
            key.experiment,
            configs,
            {r: v for r, v in values.items() if v is not None},
        )


#: the process-wide memo tier's backing map (digest -> payload).
_PROCESS_MEMO: dict[str, dict] = {}


class MemoSource(ConfigSource):
    """Process-wide warm memo: tuned entries survive across sweeps and
    strategies within one process, FIFO-bounded."""

    name = "memo"

    def __init__(
        self,
        memo: dict[str, dict] | None = None,
        capacity: int = MEMO_CAPACITY,
    ) -> None:
        super().__init__()
        self.memo = _PROCESS_MEMO if memo is None else memo
        self.capacity = capacity

    def lookup(self, key: ConfigKey) -> Entry | None:
        payload = self.memo.get(key.digest)
        if payload is None:
            return None
        try:
            return payload_to_entry(payload)
        except (KeyError, TypeError, ValueError):
            self.memo.pop(key.digest, None)
            self._note("held a malformed entry; discarded it")
            return None

    def publish(self, key: ConfigKey, entry: Entry) -> None:
        if key.digest not in self.memo:
            while len(self.memo) >= self.capacity:
                self.memo.pop(next(iter(self.memo)))
        self.memo[key.digest] = entry_to_payload(key, entry)


class ServiceSource(ConfigSource):
    """The remote daemon tier: every failure mode - refused, timed
    out, torn, corrupt, mid-write crash, open breaker - reports a
    miss plus a degradation note.  Notes carry only the failure *type*
    (never addresses or ports), so degradation lists stay byte-stable
    across runs bound to different ephemeral ports."""

    name = "service"

    def __init__(
        self,
        client: ServiceClient,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        super().__init__()
        self.client = client
        self.breaker = breaker if breaker is not None else CircuitBreaker()

    def _guarded(self, what: str, fn) -> object | None:
        """Run one client op under the breaker; ``None`` on failure."""
        if not self.breaker.allow():
            self._note(
                f"circuit open; skipped remote {what} and fell back"
            )
            return None
        try:
            result = fn()
        except ServiceError as exc:
            self.breaker.record_failure()
            self._note(
                f"remote {what} failed ({type(exc).__name__}); "
                "fell back to next tier"
            )
            tb = bus()
            if tb.enabled:
                tb.count("service.fallbacks")
                tb.emit(
                    "service.fallback",
                    op=what,
                    error=type(exc).__name__,
                )
            return None
        self.breaker.record_success()
        return result

    def lookup(self, key: ConfigKey) -> Entry | None:
        payload = self._guarded(
            "lookup", lambda: self.client.get(key.digest)
        )
        if payload is None:
            return None
        try:
            return payload_to_entry(payload)  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            self._note(
                "returned a malformed entry; fell back to next tier"
            )
            return None

    def publish(self, key: ConfigKey, entry: Entry) -> None:
        payload = entry_to_payload(key, entry)
        self._guarded(
            "publish", lambda: self.client.put(key.digest, payload)
        )


# ---------------------------------------------------------------------------
# the chain
# ---------------------------------------------------------------------------
class ChainedConfigSource(ConfigSource):
    """Walk tiers in degradation order; never raise; promote hits."""

    name = "chain"

    def __init__(self, sources: list[ConfigSource]) -> None:
        super().__init__()
        self.sources = list(sources)

    def lookup(self, key: ConfigKey) -> Entry | None:
        tb = bus()
        with traced_span(
            "config_source.lookup", experiment=key.experiment
        ) as span_attrs:
            missed: list[ConfigSource] = []
            for source in self.sources:
                entry = source.lookup(key)
                if entry is not None:
                    span_attrs["tier"] = source.name
                    if tb.enabled:
                        tb.count(f"config_source.hits.{source.name}")
                        tb.emit(
                            "config_source.hit",
                            tier=source.name,
                            experiment=key.experiment,
                        )
                    # re-warm the tiers above that missed (or failed):
                    # a recovered daemon gets its knowledge back from
                    # the clients that kept it alive locally.  Tiers
                    # serving derived (unmeasured) knowledge opt out.
                    if source.promote:
                        for upper in missed:
                            upper.publish(key, entry)
                    return entry
                missed.append(source)
            if tb.enabled:
                tb.count("config_source.misses")
                tb.emit(
                    "config_source.miss", experiment=key.experiment
                )
            return None

    def publish(self, key: ConfigKey, entry: Entry) -> None:
        for source in self.sources:
            source.publish(key, entry)

    def drain_notes(self) -> list[str]:
        notes = super().drain_notes()
        for source in self.sources:
            notes.extend(source.drain_notes())
        return notes


def default_chain(
    service: str | tuple[str, int] | None = None,
    *,
    history: HistoryStore | None = None,
    faults=None,
    deadline_s: float | None = None,
    retry=None,
    memo: dict[str, dict] | None = None,
    breaker: CircuitBreaker | None = None,
    surrogate: ConfigSource | None = None,
) -> ChainedConfigSource:
    """The standard degradation order: service -> memo -> history ->
    surrogate cold start.

    Every part is optional; the chain always contains the memo tier,
    so even a bare chain shares tuning within the process.
    ``surrogate`` (a :class:`~repro.surrogate.source.
    SurrogateColdStartSource`) goes last: model predictions only serve
    when every measured-knowledge tier missed, and they are never
    promoted upward.
    """
    from repro.service.client import DEFAULT_DEADLINE_S, DEFAULT_RETRY

    sources: list[ConfigSource] = []
    if service is not None:
        client = ServiceClient(
            service,
            deadline_s=(
                DEFAULT_DEADLINE_S if deadline_s is None else deadline_s
            ),
            retry=DEFAULT_RETRY if retry is None else retry,
            faults=faults,
        )
        sources.append(ServiceSource(client, breaker=breaker))
    sources.append(MemoSource(memo=memo))
    if history is not None:
        sources.append(HistorySource(history))
    if surrogate is not None:
        sources.append(surrogate)
    return ChainedConfigSource(sources)
