"""The newline-delimited JSON wire protocol.

One request per line, one response per line, both schema-stamped.
Requests::

    {"schema": 1, "op": "ping"}
    {"schema": 1, "op": "get",  "key": "<digest>"}
    {"schema": 1, "op": "put",  "key": "<digest>", "payload": {...}}
    {"schema": 1, "op": "stats"}
    {"schema": 1, "op": "shutdown"}            # orderly close + fsync

Responses always carry ``ok``; a ``get`` adds ``hit`` and (on a hit)
``payload``.  Errors come back as ``{"ok": false, "error": "..."}`` -
a *protocol*-level problem (malformed JSON, unknown op, foreign
schema) is answered, never crashed on, so one bad tenant cannot take
the daemon down for the others.

The module is dependency-free in both directions (no store, no
asyncio) so the daemon, the blocking client and the tests share one
source of truth for framing and validation.
"""

from __future__ import annotations

import json

#: bump when the wire layout changes; daemon and client refuse
#: mismatched peers instead of mis-parsing them.
PROTOCOL_VERSION = 1

#: maximum accepted line length (a malformed / hostile peer cannot
#: balloon daemon memory with an unterminated line).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: ops a request may carry.
OPS = ("ping", "get", "put", "stats", "shutdown")


class ProtocolError(ValueError):
    """A frame violated the wire protocol."""


def encode(message: dict) -> bytes:
    """One frame: compact JSON + newline.  Insertion order is kept
    (NOT sorted): payload dicts round-trip byte-identically, which the
    determinism contract of served tuning entries depends on."""
    return (
        json.dumps(message, separators=(",", ":")) + "\n"
    ).encode()


def decode(line: bytes | str) -> dict:
    """Parse one frame; raises :class:`ProtocolError` on anything that
    is not a JSON object."""
    if isinstance(line, bytes):
        line = line.decode(errors="replace")
    try:
        blob = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(blob, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(blob).__name__}"
        )
    return blob


def request(op: str, **fields: object) -> dict:
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; known: {OPS}")
    return {"schema": PROTOCOL_VERSION, "op": op, **fields}


def validate_request(blob: dict) -> tuple[str, dict]:
    """Check an incoming request frame; returns ``(op, blob)``."""
    if blob.get("schema") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol schema {blob.get('schema')!r} "
            f"(this daemon speaks {PROTOCOL_VERSION})"
        )
    op = blob.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; known: {OPS}")
    if op in ("get", "put") and not isinstance(blob.get("key"), str):
        raise ProtocolError(f"op {op!r} needs a string 'key'")
    if op == "put" and not isinstance(blob.get("payload"), dict):
        raise ProtocolError("op 'put' needs an object 'payload'")
    return op, blob


def ok(**fields: object) -> dict:
    return {"schema": PROTOCOL_VERSION, "ok": True, **fields}


def error(message: str) -> dict:
    return {"schema": PROTOCOL_VERSION, "ok": False, "error": message}


def validate_response(blob: dict) -> dict:
    """Check a response frame client-side; raises on foreign schemas
    and malformed shapes (a torn or bit-flipped payload surfaces here,
    not as a silent mis-read)."""
    if blob.get("schema") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported response schema {blob.get('schema')!r}"
        )
    if not isinstance(blob.get("ok"), bool):
        raise ProtocolError("response is missing boolean 'ok'")
    return blob
