"""The asyncio config-knowledge daemon behind ``repro serve``.

One process, one event loop, many concurrent tenants: each client
connection is an asyncio task reading newline-delimited JSON requests
and answering them against a shared :class:`~repro.service.store.
ServiceStore`.  The store is single-threaded by construction (only
the loop touches it), so no locks - concurrency lives entirely in the
socket layer.

Failure discipline:

* protocol garbage from one tenant is answered with an error frame
  and the connection dropped; other tenants never notice;
* a ``service.server``/``crash`` fault (from ``--faults``) makes the
  daemon write *half* a response and sever the connection - the
  injected equivalent of the server dying mid-write, which the client
  must survive by falling back a tier;
* shutdown - the ``shutdown`` op, ``SIGINT``/``SIGTERM``, or
  :meth:`ConfigServiceDaemon.stop` - flushes the write-behind buffer
  with fsync before the process exits, so acknowledged writes are
  durable.

:class:`ThreadedDaemon` runs the same daemon on a background thread
with its own loop - the harness tests, the stress benchmark and the
chaos tools all boot the real server this way instead of mocking it.
"""

from __future__ import annotations

import asyncio
import threading
from pathlib import Path

from repro.faults.inject import FaultInjector, make_injector
from repro.faults.plan import FaultPlan
from repro.obs.trace import TraceContext, root_context, traced_span
from repro.service import protocol
from repro.service.store import ServiceStore
from repro.telemetry.bus import TelemetryBus, bus, install
from repro.telemetry.sinks import JsonlSink
from repro.util.log import get_logger

log = get_logger("service.daemon")


class ConfigServiceDaemon:
    """The server: a :class:`ServiceStore` behind an asyncio socket."""

    def __init__(
        self,
        store: ServiceStore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: FaultInjector | None = None,
    ) -> None:
        self.store = store
        self.host = host
        self.port = port
        self.faults = faults
        self.requests = 0
        self.protocol_errors = 0
        self.injected_crashes = 0
        self._server: asyncio.AbstractServer | None = None
        self._stopping: asyncio.Event | None = None

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid once :meth:`start` returned
        (``port=0`` requests an ephemeral port from the OS)."""
        if self._server is None:
            raise RuntimeError("daemon is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> None:
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        log.info(
            "service daemon listening",
            host=self.address[0],
            port=self.address[1],
            entries=len(self.store),
        )

    async def serve_until_stopped(self) -> None:
        assert self._server is not None and self._stopping is not None
        async with self._server:
            await self._stopping.wait()
        self.store.close()
        log.info("service daemon stopped", requests=self.requests)

    def stop(self) -> None:
        """Request shutdown (safe to call from the loop)."""
        if self._stopping is not None:
            self._stopping.set()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > protocol.MAX_LINE_BYTES:
                    await self._send(
                        writer, protocol.error("request line too long")
                    )
                    break
                stop_after = False
                try:
                    op, blob = protocol.validate_request(
                        protocol.decode(line)
                    )
                except protocol.ProtocolError as exc:
                    self.protocol_errors += 1
                    response: dict = protocol.error(str(exc))
                    stop_after = True  # drop the misbehaving tenant
                else:
                    response, stop_after = self._dispatch(op, blob)
                alive = await self._send(writer, response)
                if stop_after or not alive:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _dispatch(self, op: str, blob: dict) -> tuple[dict, bool]:
        self.requests += 1
        tb = bus()
        if not tb.enabled:
            return self._dispatch_op(op, blob)
        tb.count(f"service.daemon.{op}")
        # adopt the caller's trace context from the wire frame (absent
        # on frames from older clients - extra fields are optional both
        # ways) so the serve span becomes a child of the exact client
        # request that produced it, across the process boundary.
        parent = TraceContext.from_traceparent(blob.get("trace"))
        prev = tb.trace
        if parent is not None:
            tb.trace = parent
        try:
            with traced_span("service.serve", op=op):
                served = tb.trace
                response, stop_after = self._dispatch_op(op, blob)
                if parent is not None and served is not None:
                    # tell the client exactly which daemon span
                    # produced its answer
                    response["trace"] = served.to_traceparent()
            return response, stop_after
        finally:
            tb.trace = prev

    def _dispatch_op(self, op: str, blob: dict) -> tuple[dict, bool]:
        tb = bus()
        if op == "ping":
            return protocol.ok(entries=len(self.store)), False
        if op == "get":
            payload = self.store.get(blob["key"])
            if payload is None:
                if tb.enabled:
                    tb.count("service.daemon.get_miss")
                return protocol.ok(hit=False), False
            if tb.enabled:
                tb.count("service.daemon.get_hit")
            return protocol.ok(hit=True, payload=payload), False
        if op == "put":
            self.store.put(blob["key"], blob["payload"])
            return protocol.ok(), False
        if op == "stats":
            return (
                protocol.ok(
                    stats=self.store.stats_json(),
                    requests=self.requests,
                    protocol_errors=self.protocol_errors,
                ),
                False,
            )
        # op == "shutdown": ack, then stop accepting work.
        self.stop()
        return protocol.ok(stopping=True), True

    async def _send(
        self, writer: asyncio.StreamWriter, response: dict
    ) -> bool:
        """Write one response frame; returns False when the connection
        is (or was made) unusable.  The ``service.server`` fault site
        fires here: a ``crash`` writes half the frame and severs the
        connection, simulating the daemon dying mid-write."""
        data = protocol.encode(response)
        if self.faults is not None:
            spec = self.faults.draw("service.server")
            if spec is not None and spec.action == "crash":
                self.injected_crashes += 1
                try:
                    writer.write(data[: max(1, len(data) // 2)])
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                writer.transport.abort()
                return False
        try:
            writer.write(data)
            await writer.drain()
        except (ConnectionError, OSError):
            return False
        return True


async def _serve(daemon: ConfigServiceDaemon) -> None:
    await daemon.start()
    await daemon.serve_until_stopped()


def serve_forever(
    store_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 9178,
    fault_plan: FaultPlan | None = None,
    capacity: int | None = None,
    ready: "threading.Event | None" = None,
    daemon_box: list | None = None,
    telemetry_dir: str | Path | None = None,
) -> None:
    """Blocking entry point for ``repro serve``: build the store, run
    the daemon until ``shutdown``/Ctrl-C, then close (fsync) the
    store.  ``ready``/``daemon_box`` are test hooks: the started
    daemon is appended to ``daemon_box`` and ``ready`` set once the
    socket is bound.  ``telemetry_dir`` installs an enabled bus for
    the daemon's lifetime writing ``daemon.jsonl`` there (serve spans,
    store events, op counters)."""
    session: TelemetryBus | None = None
    old_bus: TelemetryBus | None = None
    if telemetry_dir is not None:
        session = TelemetryBus(enabled=True)
        session.add_sink(JsonlSink(Path(telemetry_dir) / "daemon.jsonl"))
        # identify by the store *name*, never its absolute path:
        # records must not depend on where the tree was checked out
        identity = {
            "command": "serve",
            "store": Path(store_dir).name,
            "host": host,
            "port": port,
        }
        session.meta(**identity)
        session.trace = root_context(**identity)
        old_bus = install(session)
    kwargs = {} if capacity is None else {"capacity": capacity}
    store = ServiceStore(store_dir, **kwargs)
    daemon = ConfigServiceDaemon(
        store,
        host=host,
        port=port,
        faults=make_injector(fault_plan, salt="server"),
    )

    async def _run() -> None:
        await daemon.start()
        if daemon_box is not None:
            daemon_box.append(daemon)
        if ready is not None:
            ready.set()
        await daemon.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        store.close()
    finally:
        if session is not None:
            session.close()
            install(old_bus)


class ThreadedDaemon:
    """A real daemon on a background thread (tests / benchmarks /
    chaos tools).  Use as a context manager::

        with ThreadedDaemon(tmp / "store") as td:
            client = ServiceClient(td.address)
    """

    def __init__(
        self,
        store_dir: str | Path,
        *,
        fault_plan: FaultPlan | None = None,
        capacity: int | None = None,
        port: int = 0,
        telemetry_dir: str | Path | None = None,
    ) -> None:
        self.store_dir = Path(store_dir)
        self.fault_plan = fault_plan
        self.capacity = capacity
        self.port = port
        #: NOTE: installs a process-wide bus from the daemon thread;
        #: only set this when the host process is not running its own
        #: telemetry session (the in-process bus is shared otherwise,
        #: which is exactly what the propagation tests rely on).
        self.telemetry_dir = telemetry_dir
        self._thread: threading.Thread | None = None
        self._box: list[ConfigServiceDaemon] = []

    def start(self) -> "ThreadedDaemon":
        """Boot (or re-boot) the daemon thread.  After the first start
        the bound port is pinned, so a later :meth:`start` rebinds the
        SAME address - what the kill/restart soak relies on: clients
        holding the address reconnect to the restarted daemon."""
        if self.running:
            raise RuntimeError("daemon thread is already running")
        ready = threading.Event()
        self._box = []
        self._thread = threading.Thread(
            target=serve_forever,
            args=(self.store_dir,),
            kwargs={
                "port": self.port,
                "fault_plan": self.fault_plan,
                "capacity": self.capacity,
                "ready": ready,
                "daemon_box": self._box,
                "telemetry_dir": self.telemetry_dir,
            },
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=10.0):
            raise RuntimeError("service daemon failed to start")
        self.port = self.address[1]
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "ThreadedDaemon":
        return self.start()

    @property
    def daemon(self) -> ConfigServiceDaemon:
        return self._box[0]

    @property
    def address(self) -> tuple[str, int]:
        return self.daemon.address

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        daemon = self._box[0] if self._box else None
        if daemon is not None and daemon._stopping is not None:
            # hop onto the daemon's loop to set the asyncio event
            try:
                loop = getattr(daemon._server, "get_loop", None)
                if loop is not None:
                    daemon._server.get_loop().call_soon_threadsafe(
                        daemon.stop
                    )
            except RuntimeError:
                pass
        thread.join(timeout=10.0)
        self._thread = None
