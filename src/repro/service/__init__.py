"""Tuning-as-a-service: the shared config-knowledge daemon.

Every tuned configuration used to die with the process that found it:
the evaluation memo is process-wide, the sweep cache is per-sweep, the
history file is per-path.  This package promotes that knowledge into a
long-lived, multi-tenant service:

* :mod:`repro.service.store` - the disk-persistent, schema-stamped,
  sharded store (atomic writes, torn-shard quarantine + rebuild, LRU
  admission, write-behind batching, fsync on shutdown);
* :mod:`repro.service.protocol` - the newline-delimited JSON wire
  protocol shared by daemon and client;
* :mod:`repro.service.daemon` - the asyncio socket server behind
  ``repro serve``;
* :mod:`repro.service.client` - the blocking client with per-request
  deadlines, seeded backoff retries and a circuit breaker;
* :mod:`repro.service.source` - the :class:`ConfigSource` degradation
  chain (remote service -> warm memo -> local history -> fresh tuning)
  that the controller and experiment runner consume.
"""

from repro.service.client import (
    CircuitBreaker,
    ServiceClient,
    ServiceError,
    ServiceProtocolError,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.service.daemon import ConfigServiceDaemon, serve_forever
from repro.service.source import (
    ChainedConfigSource,
    ConfigKey,
    ConfigSource,
    HistorySource,
    MemoSource,
    ServiceSource,
    config_key,
    default_chain,
)
from repro.service.store import (
    STORE_SCHEMA_VERSION,
    ServiceStore,
    StoreStats,
)

__all__ = [
    "CircuitBreaker",
    "ChainedConfigSource",
    "ConfigKey",
    "ConfigServiceDaemon",
    "ConfigSource",
    "HistorySource",
    "MemoSource",
    "ServiceClient",
    "ServiceError",
    "ServiceProtocolError",
    "ServiceSource",
    "ServiceStore",
    "ServiceTimeout",
    "ServiceUnavailable",
    "StoreStats",
    "STORE_SCHEMA_VERSION",
    "config_key",
    "default_chain",
    "serve_forever",
]
