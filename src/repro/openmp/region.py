"""Parallel-region descriptors.

A :class:`RegionProfile` characterizes one OpenMP parallel(-for) region
the way the paper characterizes its benchmark kernels: per-iteration
compute cost, memory behaviour (stride / footprint / reuse), load
(im)balance across iterations, and any serial prologue.  The paper's
analysis (Section V) explains every result through exactly these
features - scalability, load balancing and cache behaviour - so they
are the simulator's inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.cache import MemoryProfile
from repro.util.rng import rng_for
from repro.util.validation import require_nonnegative, require_positive

_IMBALANCE_KINDS = ("none", "linear", "sawtooth", "step", "random")


@dataclass(frozen=True)
class ImbalanceSpec:
    """Deterministic per-iteration cost variation.

    ``amplitude`` is the relative cost swing (0 = perfectly balanced).
    Kinds:

    * ``linear``: cost ramps across the iteration space (typical of
      triangular loop nests) - hurts default static block scheduling;
    * ``sawtooth``: periodic ramps with ``period`` iterations;
    * ``step``: a ``heavy_fraction`` of iterations costs more (e.g.
      boundary elements, EOS iteration counts);
    * ``random``: lognormal variation with sigma=``amplitude``, seeded
      deterministically from the region name.
    """

    kind: str = "none"
    amplitude: float = 0.0
    period: int = 16
    heavy_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in _IMBALANCE_KINDS:
            raise ValueError(
                f"kind must be one of {_IMBALANCE_KINDS}, got {self.kind!r}"
            )
        require_nonnegative("amplitude", self.amplitude)
        require_positive("period", self.period)
        if self.kind == "step" and not 0.0 < self.heavy_fraction <= 1.0:
            raise ValueError(
                "heavy_fraction must be in (0, 1] for step imbalance"
            )

    def weights(self, n_iterations: int, seed_key: str) -> np.ndarray:
        """Mean-1 positive weight per iteration."""
        require_positive("n_iterations", n_iterations)
        n = n_iterations
        if self.kind == "none" or self.amplitude == 0.0:
            return np.ones(n)
        x = np.arange(n, dtype=float)
        if self.kind == "linear":
            ramp = (2.0 * x / max(1, n - 1)) - 1.0 if n > 1 else np.zeros(1)
            w = 1.0 + self.amplitude * ramp
        elif self.kind == "sawtooth":
            phase = (x % self.period) / self.period
            w = 1.0 + self.amplitude * (2.0 * phase - 1.0)
        elif self.kind == "step":
            heavy = int(round(self.heavy_fraction * n))
            w = np.ones(n)
            if 0 < heavy < n:
                w[:heavy] += self.amplitude
        else:  # random
            rng = rng_for(0xA2C5, "imbalance", seed_key, n)
            w = rng.lognormal(mean=0.0, sigma=self.amplitude, size=n)
        w = np.clip(w, 0.05, None)
        return w / w.mean()


@dataclass(frozen=True)
class RegionProfile:
    """Static characterization of one OpenMP parallel region.

    ``cpu_ns_per_iter`` is the pure-compute cost of an average
    iteration on one thread at base frequency with no cache misses;
    the memory-stall component is derived from ``memory`` by the cache
    model and is frequency-invariant.  ``iterations`` is the trip count
    of the parallelized (outermost) loop for the workload size this
    profile describes.
    """

    name: str
    iterations: int
    cpu_ns_per_iter: float
    memory: MemoryProfile
    imbalance: ImbalanceSpec = field(default_factory=ImbalanceSpec)
    serial_ns: float = 0.0

    def __post_init__(self) -> None:
        require_positive("iterations", self.iterations)
        require_positive("cpu_ns_per_iter", self.cpu_ns_per_iter)
        require_nonnegative("serial_ns", self.serial_ns)
        if not self.name:
            raise ValueError("region name must be non-empty")

    def iteration_weights(self) -> np.ndarray:
        """Per-iteration mean-1 cost weights (deterministic)."""
        return self.imbalance.weights(self.iterations, self.name)

    def ideal_serial_seconds(self) -> float:
        """Single-thread, miss-free compute time - a scale reference."""
        return (
            self.serial_ns + self.iterations * self.cpu_ns_per_iter
        ) * 1e-9
