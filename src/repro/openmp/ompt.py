"""OMPT-style tools interface.

Mirrors the OMPT Technical Report surface ARCS relies on (Section
III-A): a tool registers callbacks; the runtime dispatches events with
parallel-region identifiers, team sizes and timing payloads.  APEX
starts a timer on ``PARALLEL_BEGIN`` and stops it on ``PARALLEL_END``;
the TAU-style profiling of Figure 9 additionally consumes the
``IMPLICIT_TASK`` / ``WORK_LOOP`` / ``SYNC_REGION_BARRIER`` aggregate
events.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable
from dataclasses import dataclass, field
from enum import Enum

from repro.openmp.records import RegionExecutionRecord
from repro.telemetry.bus import bus


class OmptEvent(Enum):
    """Event kinds dispatched by the simulated runtime."""

    PARALLEL_BEGIN = "ompt_event_parallel_begin"
    PARALLEL_END = "ompt_event_parallel_end"
    IMPLICIT_TASK = "ompt_event_implicit_task"
    WORK_LOOP = "ompt_event_work_loop"
    SYNC_REGION_BARRIER = "ompt_event_sync_region_barrier"


#: per-event dispatch counter names, precomputed because dispatch runs
#: five times per region invocation - formatting them inline shows up
#: in the telemetry overhead budget.
_DISPATCH_COUNTERS = {
    event: f"ompt.dispatch.{event.name.lower()}" for event in OmptEvent
}


@dataclass(frozen=True)
class ParallelBeginPayload:
    """Fired on entry to a parallel region, before execution."""

    region_name: str
    parallel_id: int
    requested_team_size: int
    timestamp_s: float


@dataclass(frozen=True)
class ParallelEndPayload:
    """Fired on region exit with the full execution record."""

    region_name: str
    parallel_id: int
    timestamp_s: float
    record: RegionExecutionRecord


@dataclass(frozen=True)
class DurationPayload:
    """Aggregate duration events (implicit task / loop / barrier)."""

    region_name: str
    parallel_id: int
    duration_s: float


Callback = Callable[[object], None]


@dataclass
class OmptInterface:
    """Callback registry with monotonically increasing parallel ids."""

    _callbacks: dict[OmptEvent, list[Callback]] = field(
        default_factory=lambda: defaultdict(list)
    )
    _next_parallel_id: int = 1

    def register(self, event: OmptEvent, callback: Callback) -> None:
        """Register ``callback`` for ``event`` (multiple tools may
        coexist, as OMPT allows)."""
        if not callable(callback):
            raise TypeError("callback must be callable")
        self._callbacks[event].append(callback)

    def unregister(self, event: OmptEvent, callback: Callback) -> None:
        try:
            self._callbacks[event].remove(callback)
        except ValueError:
            raise ValueError(
                f"callback not registered for {event}"
            ) from None

    def has_tool(self) -> bool:
        """True if any callback is registered - the runtime skips event
        construction entirely otherwise (OMPT's 'minimal overhead when
        not in use' design objective)."""
        return any(self._callbacks.values())

    def new_parallel_id(self) -> int:
        pid = self._next_parallel_id
        self._next_parallel_id += 1
        return pid

    def dispatch(self, event: OmptEvent, payload: object) -> None:
        tb = bus()
        if tb.enabled:
            tb.count("ompt.dispatch")
            tb.count(_DISPATCH_COUNTERS[event])
        for callback in self._callbacks.get(event, ()):
            callback(payload)
