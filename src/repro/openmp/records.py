"""Execution records produced by the simulator.

A :class:`RegionExecutionRecord` carries everything the paper measures
per region execution: wall time, per-thread compute/barrier split (the
OMP_BARRIER metric of Figures 3/6/10), cache miss rates (L1/L2/L3),
package energy, and the operating frequency chosen by RAPL.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.openmp.types import OMPConfig


@dataclass(frozen=True)
class RegionExecutionRecord:
    """Result of one execution of one parallel region."""

    region_name: str
    config: OMPConfig
    time_s: float                      # wall time of the region
    loop_time_s: float                 # max per-thread useful loop time
    serial_time_s: float               # serial prologue
    fork_join_s: float                 # team fork + join + barrier base
    barrier_wait_total_s: float        # sum of per-thread barrier waits
    barrier_wait_max_s: float
    thread_busy_s: tuple[float, ...]   # per-thread useful time
    energy_j: float                    # node package energy (all sockets)
    avg_power_w: float
    frequencies_ghz: tuple[float, ...]
    l1_miss_rate: float
    l2_miss_rate: float
    l3_miss_rate: float
    dram_bytes: float
    dispatch_overhead_s: float         # dynamic/guided dequeue cost (max thread)
    dram_energy_j: float = 0.0         # DRAM-domain energy (future work)

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"time_s must be >= 0, got {self.time_s}")
        if self.energy_j < 0:
            raise ValueError(f"energy_j must be >= 0, got {self.energy_j}")

    @property
    def n_threads(self) -> int:
        return self.config.n_threads

    @property
    def barrier_fraction(self) -> float:
        """Fraction of aggregate thread time spent waiting at the
        barrier - the paper's load-balance symptom."""
        total = self.time_s * self.n_threads
        if total <= 0:
            return 0.0
        return self.barrier_wait_total_s / total


@dataclass(frozen=True)
class RegionTotals:
    """Accumulated per-region totals over a whole application run
    (the Figure 9 breakdown: IMPLICIT_TASK / LOOP / BARRIER)."""

    region_name: str
    calls: int
    implicit_task_s: float   # total region wall time across calls
    loop_s: float            # total useful loop-body time
    barrier_s: float         # total barrier wait
    energy_j: float

    @property
    def time_per_call_s(self) -> float:
        return self.implicit_task_s / self.calls if self.calls else 0.0
