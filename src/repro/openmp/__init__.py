"""Simulated OpenMP runtime with OMPT support.

Implements the pieces of the OpenMP 4.0 execution model that ARCS
tunes: team sizing (``omp_set_num_threads``), loop scheduling
(``omp_set_schedule`` with static/dynamic/guided and chunk sizes, using
the exact specification semantics), fork/join and barrier behaviour,
plus the OMPT events/callbacks interface (parallel begin/end, implicit
task, worksharing loop, barrier sync region) that APEX hooks into.

Region *times* come from the simulated machine substrate
(:mod:`repro.machine`); scheduling *semantics* are real.
"""

from repro.openmp.ompt import OmptEvent, OmptInterface
from repro.openmp.records import RegionExecutionRecord
from repro.openmp.region import ImbalanceSpec, RegionProfile
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.schedule import Chunk, chunks_for
from repro.openmp.types import OMPConfig, ScheduleKind

__all__ = [
    "Chunk",
    "ImbalanceSpec",
    "OMPConfig",
    "OmptEvent",
    "OmptInterface",
    "OpenMPRuntime",
    "RegionExecutionRecord",
    "RegionProfile",
    "ScheduleKind",
    "chunks_for",
]
