"""OpenMP worksharing-loop chunking semantics.

These are the real OpenMP 4.0 rules, not approximations:

* ``static`` with chunk ``k``: iterations are divided into chunks of
  size ``k`` assigned round-robin to threads in thread-id order.
* ``static`` with no chunk (the default-config case): iterations are
  divided into at most ``n_threads`` contiguous blocks of near-equal
  size (the "iterations / threads" division the paper describes).
* ``dynamic`` with chunk ``k`` (default 1): chunks of ``k`` handed out
  in order, each to the next thread that requests work.
* ``guided`` with chunk ``k`` (default 1): chunk sizes proportional to
  the remaining iterations divided by the team size, decreasing, never
  smaller than ``k`` (except the final chunk).

The functions here only *partition*; the execution engine decides
which thread runs which chunk (statically for ``static``, by greedy
earliest-available-thread simulation for ``dynamic``/``guided``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.openmp.types import OMPConfig, ScheduleKind


@dataclass(frozen=True)
class Chunk:
    """A contiguous block of loop iterations ``[start, start+size)``."""

    start: int
    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"chunk size must be >= 1, got {self.size}")
        if self.start < 0:
            raise ValueError(f"chunk start must be >= 0, got {self.start}")

    @property
    def stop(self) -> int:
        return self.start + self.size


def static_default_chunks(n_iterations: int, n_threads: int) -> list[Chunk]:
    """Spec-default static: <= ``n_threads`` near-equal contiguous blocks.

    Uses the conventional "big blocks first" split: the first
    ``n_iterations % n_threads`` threads get one extra iteration.
    """
    _check(n_iterations, n_threads)
    chunks: list[Chunk] = []
    base, extra = divmod(n_iterations, n_threads)
    start = 0
    for tid in range(n_threads):
        size = base + (1 if tid < extra else 0)
        if size == 0:
            break
        chunks.append(Chunk(start=start, size=size))
        start += size
    return chunks


def fixed_chunks(n_iterations: int, chunk: int) -> list[Chunk]:
    """Split into consecutive chunks of ``chunk`` iterations (static
    with a chunk argument, and dynamic)."""
    _check(n_iterations, 1)
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    chunks = []
    for start in range(0, n_iterations, chunk):
        chunks.append(
            Chunk(start=start, size=min(chunk, n_iterations - start))
        )
    return chunks


def guided_chunks(
    n_iterations: int, n_threads: int, min_chunk: int
) -> list[Chunk]:
    """Guided self-scheduling: each successive chunk is
    ``ceil(remaining / n_threads)``, floored at ``min_chunk``."""
    _check(n_iterations, n_threads)
    if min_chunk < 1:
        raise ValueError(f"min_chunk must be >= 1, got {min_chunk}")
    chunks = []
    remaining = n_iterations
    start = 0
    while remaining > 0:
        size = max(min_chunk, -(-remaining // n_threads))
        size = min(size, remaining)
        chunks.append(Chunk(start=start, size=size))
        start += size
        remaining -= size
    return chunks


def chunks_for(config: OMPConfig, n_iterations: int) -> list[Chunk]:
    """Chunk list, in dispatch order, for a loop of ``n_iterations``
    executed under ``config``."""
    if config.schedule is ScheduleKind.STATIC:
        if config.chunk is None:
            return static_default_chunks(n_iterations, config.n_threads)
        return fixed_chunks(n_iterations, config.chunk)
    if config.schedule is ScheduleKind.DYNAMIC:
        return fixed_chunks(n_iterations, config.chunk or 1)
    if config.schedule is ScheduleKind.GUIDED:
        return guided_chunks(
            n_iterations, config.n_threads, config.chunk or 1
        )
    raise ValueError(f"unknown schedule {config.schedule!r}")


def static_assignment(
    config: OMPConfig, chunks: list[Chunk]
) -> list[int]:
    """Owner thread of each chunk under static scheduling (round-robin
    for chunked static, block for default static)."""
    if config.schedule is not ScheduleKind.STATIC:
        raise ValueError("static_assignment requires a static schedule")
    if config.chunk is None:
        # default static: chunk i belongs to thread i (block partition)
        return list(range(len(chunks)))
    return [i % config.n_threads for i in range(len(chunks))]


def chunk_bounds(
    config: OMPConfig, n_iterations: int
) -> tuple[np.ndarray, np.ndarray]:
    """Chunk boundaries as ``(starts, stops)`` index arrays - the same
    partition :func:`chunks_for` produces, without materializing one
    :class:`Chunk` object per chunk (the batched evaluator's form).

    Invariant (guarded by the property suite): for every config,
    ``starts[i] == chunks_for(...)[i].start`` and
    ``stops[i] == chunks_for(...)[i].stop``.
    """
    if config.schedule is ScheduleKind.STATIC and config.chunk is None:
        _check(n_iterations, config.n_threads)
        base, extra = divmod(n_iterations, config.n_threads)
        sizes = base + (np.arange(config.n_threads) < extra)
        sizes = sizes[sizes > 0]
        stops = np.cumsum(sizes)
        return stops - sizes, stops
    if config.schedule is ScheduleKind.GUIDED:
        _check(n_iterations, config.n_threads)
        min_chunk = config.chunk or 1
        if min_chunk < 1:
            raise ValueError(f"min_chunk must be >= 1, got {min_chunk}")
        sizes_list: list[int] = []
        remaining = n_iterations
        while remaining > 0:
            size = max(min_chunk, -(-remaining // config.n_threads))
            size = min(size, remaining)
            sizes_list.append(size)
            remaining -= size
        sizes = np.asarray(sizes_list)
        stops = np.cumsum(sizes)
        return stops - sizes, stops
    if config.schedule not in (ScheduleKind.STATIC, ScheduleKind.DYNAMIC):
        raise ValueError(f"unknown schedule {config.schedule!r}")
    # static with a chunk argument, and dynamic: fixed-size chunks
    _check(n_iterations, 1)
    chunk = (
        config.chunk
        if config.schedule is ScheduleKind.STATIC
        else (config.chunk or 1)
    )
    if chunk is None or chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    starts = np.arange(0, n_iterations, chunk)
    return starts, np.minimum(starts + chunk, n_iterations)


def average_chunk_iters(config: OMPConfig, n_iterations: int) -> float:
    """Mean scheduling quantum in iterations - the cache model's
    locality input."""
    chunks = chunks_for(config, n_iterations)
    return n_iterations / max(1, len(chunks))


def _check(n_iterations: int, n_threads: int) -> None:
    if n_iterations < 1:
        raise ValueError(
            f"n_iterations must be >= 1, got {n_iterations}"
        )
    if n_threads < 1:
        raise ValueError(f"n_threads must be >= 1, got {n_threads}")
