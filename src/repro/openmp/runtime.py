"""The OpenMP runtime facade.

Provides the runtime-library routines ARCS drives
(``omp_set_num_threads``, ``omp_set_schedule`` — Section III-C notes
these calls are exactly where the *configuration changing overhead*
comes from), executes parallel-for regions through the simulation
engine, dispatches OMPT events around each region, and applies
seeded run-to-run measurement noise (the paper ran everything three
times for this reason).
"""

from __future__ import annotations

import dataclasses

from repro.machine.node import SimulatedNode
from repro.openmp.barrier import TeamCosts
from repro.openmp.engine import ExecutionEngine
from repro.openmp.ompt import (
    DurationPayload,
    OmptEvent,
    OmptInterface,
    ParallelBeginPayload,
    ParallelEndPayload,
)
from repro.openmp.records import RegionExecutionRecord
from repro.openmp.region import RegionProfile
from repro.openmp.types import OMPConfig, ScheduleKind
from repro.telemetry.bus import bus
from repro.util.rng import rng_for
from repro.util.validation import require_nonnegative

#: cost of one omp_set_num_threads / omp_set_schedule call.  Two calls
#: per configuration change give the paper's ~0.8 ms per region call
#: (Section III-C: "In Crill, we calculated this overhead to be about
#: 0.8 msec in each region call").
CONFIG_CALL_OVERHEAD_S = 0.4e-3

#: cost of one userspace DVFS write (sysfs scaling_max_freq) - the
#: future-work DVFS dimension pays this per frequency change.
DVFS_WRITE_OVERHEAD_S = 60.0e-6


class OpenMPRuntime:
    """A simulated OpenMP runtime bound to one :class:`SimulatedNode`."""

    def __init__(
        self,
        node: SimulatedNode,
        seed: int = 0,
        noise_sigma: float = 0.01,
        costs: TeamCosts | None = None,
    ) -> None:
        require_nonnegative("noise_sigma", noise_sigma)
        self.node = node
        self.engine = ExecutionEngine(node, costs)
        self.ompt = OmptInterface()
        self.seed = seed
        self.noise_sigma = noise_sigma
        self._num_threads = node.spec.total_hw_threads
        self._schedule: tuple[ScheduleKind, int | None] = (
            ScheduleKind.STATIC,
            None,
        )
        self._call_index = 0
        self.config_change_time_s = 0.0
        self.config_change_calls = 0
        #: notes appended by harnesses when a fault forced them off the
        #: intended measurement path (e.g. a power cap that could not be
        #: applied); surfaced in the run result's degradations.
        self.degradations: list[str] = []
        #: per-region batched-prefetch hints (candidate configs a tuner
        #: expects to try soon); consumed by the next ``parallel_for``
        #: on that region.  Pure performance state - deliberately not
        #: checkpointed; tuners re-hint after a resume.
        self._probe_hints: dict[str, tuple[OMPConfig, ...]] = {}

    # ------------------------------------------------------------------
    # the omp_* runtime-library surface
    # ------------------------------------------------------------------
    def omp_get_max_threads(self) -> int:
        return self.node.spec.total_hw_threads

    def omp_get_num_threads(self) -> int:
        return self._num_threads

    def omp_set_num_threads(self, n_threads: int) -> None:
        """Set the team size for subsequent regions.  Costs real time -
        this is half of ARCS's configuration-changing overhead."""
        if not 1 <= n_threads <= self.omp_get_max_threads():
            raise ValueError(
                f"n_threads must be in [1, {self.omp_get_max_threads()}], "
                f"got {n_threads}"
            )
        self._charge_config_call()
        self._num_threads = n_threads

    def omp_get_schedule(self) -> tuple[ScheduleKind, int | None]:
        return self._schedule

    def omp_set_schedule(
        self, kind: ScheduleKind, chunk: int | None = None
    ) -> None:
        """Set the schedule for subsequent ``schedule(runtime)`` loops."""
        if not isinstance(kind, ScheduleKind):
            raise TypeError(f"kind must be ScheduleKind, got {kind!r}")
        if chunk is not None and chunk < 1:
            raise ValueError(f"chunk must be >= 1 or None, got {chunk}")
        self._charge_config_call()
        self._schedule = (kind, chunk)

    def set_frequency_limit(self, freq_ghz: float | None) -> None:
        """Apply a userspace DVFS ceiling for subsequent regions (the
        future-work tuning dimension).  Costs a sysfs-write overhead,
        accounted with the configuration-changing overheads."""
        self.node.advance(DVFS_WRITE_OVERHEAD_S)
        self.config_change_time_s += DVFS_WRITE_OVERHEAD_S
        self.config_change_calls += 1
        self.node.set_frequency_limit(freq_ghz)

    def frequency_limit(self) -> float | None:
        return self.node.frequency_limit_ghz

    def _charge_config_call(self) -> None:
        self.node.advance(CONFIG_CALL_OVERHEAD_S)
        self.config_change_time_s += CONFIG_CALL_OVERHEAD_S
        self.config_change_calls += 1
        # the calling core burns active power during the runtime call
        socket0_f = self.node.frequency_for_team(
            self.node.topology.place(1)
        )[0]
        self.node.deposit_energy(
            0,
            (
                self.node.power.core_dynamic_w(socket0_f)
                + self.node.power.uncore_w(socket0_f)
            )
            * CONFIG_CALL_OVERHEAD_S,
        )

    def current_config(self) -> OMPConfig:
        kind, chunk = self._schedule
        return OMPConfig(
            n_threads=self._num_threads, schedule=kind, chunk=chunk
        )

    def hint_probes(
        self, region_name: str, configs: tuple[OMPConfig, ...]
    ) -> None:
        """Hint configurations a tuner expects to measure on
        ``region_name`` soon, so the next execution of that region can
        batch-evaluate them in one vectorized pass (see
        ``repro.openmp.batch``).  Purely an optimization: results are
        byte-identical with or without hints."""
        if configs:
            self._probe_hints[region_name] = tuple(configs)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready mutable runtime state.  The noise stream is keyed
        by ``_call_index``, so restoring it (plus the node clock) makes
        every subsequent measurement byte-identical to the
        uninterrupted run.  The engine's record cache is pure
        memoization and is rebuilt on demand."""
        kind, chunk = self._schedule
        return {
            "num_threads": self._num_threads,
            "schedule": [kind.value, chunk],
            "call_index": self._call_index,
            "config_change_time_s": self.config_change_time_s,
            "config_change_calls": self.config_change_calls,
            "degradations": list(self.degradations),
        }

    def restore(self, blob: dict) -> None:
        self._num_threads = int(blob["num_threads"])
        kind, chunk = blob["schedule"]
        self._schedule = (
            ScheduleKind(kind),
            None if chunk is None else int(chunk),
        )
        self._call_index = int(blob["call_index"])
        self.config_change_time_s = float(blob["config_change_time_s"])
        self.config_change_calls = int(blob["config_change_calls"])
        self.degradations = [str(note) for note in blob["degradations"]]

    # ------------------------------------------------------------------
    # region execution
    # ------------------------------------------------------------------
    def parallel_for(self, region: RegionProfile) -> RegionExecutionRecord:
        """Execute one ``#pragma omp parallel for schedule(runtime)``
        region under the runtime's current configuration.

        OMPT ``PARALLEL_BEGIN`` fires *before* the team is formed, so a
        tool (the ARCS policy) may adjust the configuration inside the
        callback and affect this very execution - exactly how ARCS
        applies per-region settings.
        """
        ompt_active = self.ompt.has_tool()
        parallel_id = 0
        if ompt_active:
            parallel_id = self.ompt.new_parallel_id()
            self.ompt.dispatch(
                OmptEvent.PARALLEL_BEGIN,
                ParallelBeginPayload(
                    region_name=region.name,
                    parallel_id=parallel_id,
                    requested_team_size=self._num_threads,
                    timestamp_s=self.node.now_s,
                ),
            )
        hints = self._probe_hints.pop(region.name, None)
        if hints is not None:
            # warm the engine's record caches for the hinted candidates
            # in one vectorized pass; execute() below then sequences
            # side effects exactly as the scalar path would.
            self.engine.prefetch(region, hints)
        tb = bus()
        if tb.enabled:
            begin, seq = tb.span_begin()
            config = self.current_config()
            record = self.engine.execute(region, config)
            record = self._apply_noise(record)
            tb.span_finish(
                "omp.region", begin, seq,
                region=region.name,
                config=config.label(),
                time_s=record.time_s,
                energy_j=record.energy_j,
            )
            tb.count("omp.regions")
            tb.observe("omp.region_time_s", record.time_s)
        else:
            record = self.engine.execute(region, self.current_config())
            record = self._apply_noise(record)
        if ompt_active:
            self._dispatch_aggregates(region.name, parallel_id, record)
            self.ompt.dispatch(
                OmptEvent.PARALLEL_END,
                ParallelEndPayload(
                    region_name=region.name,
                    parallel_id=parallel_id,
                    timestamp_s=self.node.now_s,
                    record=record,
                ),
            )
        return record

    def _apply_noise(
        self, record: RegionExecutionRecord
    ) -> RegionExecutionRecord:
        """Seeded multiplicative run-to-run noise on time and energy.

        The engine already advanced the clock by the deterministic
        time; here we advance by the noise delta (noise factors are
        floored so time never goes backwards).
        """
        self._call_index += 1
        if self.noise_sigma == 0.0:
            return record
        rng = rng_for(self.seed, "noise", self._call_index)
        factor = float(
            max(1.0 + rng.normal(0.0, self.noise_sigma), 1.0)
        )
        if factor == 1.0:
            return record
        delta_t = record.time_s * (factor - 1.0)
        self.node.advance(delta_t)
        sockets = self.node.spec.sockets
        per_socket = record.energy_j * (factor - 1.0) / sockets
        dram_per_socket = record.dram_energy_j * (factor - 1.0) / sockets
        for socket in range(sockets):
            self.node.deposit_energy(socket, per_socket)
            self.node.deposit_dram_energy(socket, dram_per_socket)
        return dataclasses.replace(
            record,
            time_s=record.time_s * factor,
            loop_time_s=record.loop_time_s * factor,
            barrier_wait_total_s=record.barrier_wait_total_s * factor,
            barrier_wait_max_s=record.barrier_wait_max_s * factor,
            thread_busy_s=tuple(
                t * factor for t in record.thread_busy_s
            ),
            energy_j=record.energy_j * factor,
            dram_energy_j=record.dram_energy_j * factor,
        )

    def _dispatch_aggregates(
        self, name: str, parallel_id: int, record: RegionExecutionRecord
    ) -> None:
        n = record.config.n_threads
        mean_busy = sum(record.thread_busy_s) / n
        self.ompt.dispatch(
            OmptEvent.IMPLICIT_TASK,
            DurationPayload(
                region_name=name,
                parallel_id=parallel_id,
                duration_s=record.time_s,
            ),
        )
        self.ompt.dispatch(
            OmptEvent.WORK_LOOP,
            DurationPayload(
                region_name=name,
                parallel_id=parallel_id,
                duration_s=mean_busy,
            ),
        )
        self.ompt.dispatch(
            OmptEvent.SYNC_REGION_BARRIER,
            DurationPayload(
                region_name=name,
                parallel_id=parallel_id,
                duration_s=record.barrier_wait_total_s / n,
            ),
        )
