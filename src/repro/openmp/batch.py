"""Batched configuration evaluation.

ARCS's cost is dominated by evaluating candidate (threads, schedule,
chunk) configurations one scalar ``ExecutionEngine._simulate`` call at
a time - the exhaustive offline search walks the full Table-I space
for every region at every power cap.  This module evaluates a *set* of
candidate configurations for one region in a single vectorized pass:

* team context (placement, cap-constrained frequencies, per-thread
  jitter, throughput) is computed once per distinct thread count, not
  once per configuration;
* the cache model is evaluated once per distinct scheduling quantum
  (many configs share an average chunk size);
* the DRAM-bandwidth contention fixed point runs *batched*: one
  ``(configs, threads)`` matrix per thread-count group instead of one
  vector per config, with reductions that are bit-identical to the
  scalar path (elementwise IEEE arithmetic; the per-config rate
  reduction runs as a 1-D ``np.sum`` over each contiguous row, because
  a 2-D ``np.sum(axis=1)`` blocks its pairwise summation differently
  and drifts by 1 ULP);
* chunk partitions come from :func:`repro.openmp.schedule.chunk_bounds`
  (index arrays) instead of per-chunk ``Chunk`` objects;
* chunk scheduling and energy integration reuse the engine's own
  ``_run_static`` / ``_run_dynamic`` / ``_energy`` / ``_complete``
  methods, so the batched records are byte-identical to scalar ones
  **by construction** (and the differential test wall proves it).

The module also keeps a process-wide, content-keyed evaluation memo on
``(machine spec, team costs, region profile, caps, frequency limit,
config)``.  Every key component is a frozen dataclass compared by
value, so repeated probes across Harmony restarts, cap-schedule
re-tunes, fresh runtimes, and sweep cells hit the memo regardless of
which engine instance computed the record first.

Batching is a pure pre-computation: it fills caches with records the
scalar path would have produced, and ``ExecutionEngine.execute`` stays
the only side-effecting sequencing point (clock advance, energy
deposits, OMPT event order, measurement noise).  Disable it with the
``REPRO_NO_BATCH`` environment variable, :func:`set_batching`, or the
CLI ``--no-batch`` escape hatch; results are identical either way.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

from repro.openmp.records import RegionExecutionRecord
from repro.openmp.region import RegionProfile
from repro.openmp.schedule import chunk_bounds
from repro.openmp.types import OMPConfig
from repro.util.rng import rng_for

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.openmp.engine import ExecutionEngine

#: set to a non-empty value to disable batched evaluation process-wide
#: (the CLI's ``--no-batch`` sets it so sweep worker processes inherit
#: the choice).
NO_BATCH_ENV = "REPRO_NO_BATCH"

#: bound on the process-wide memo; far above one sweep's working set
#: (a full Table-I space x 13 regions x 5 caps is ~10k records).
MEMO_LIMIT = 65536

_enabled: bool = not os.environ.get(NO_BATCH_ENV)
_memo: dict[tuple, RegionExecutionRecord] = {}
_memo_hits: int = 0
_memo_misses: int = 0


def batching_enabled() -> bool:
    """Whether batched evaluation + the process-wide memo are active."""
    return _enabled


def set_batching(enabled: bool) -> None:
    """Process-wide switch (the ``--no-batch`` escape hatch)."""
    global _enabled
    _enabled = bool(enabled)


def memo_key(
    engine: ExecutionEngine,
    region: RegionProfile,
    config: OMPConfig,
    caps: tuple[float | None, ...],
) -> tuple:
    """Content key for one evaluation: every input ``_simulate`` reads.

    Spec, costs, region and config are frozen dataclasses, so equal
    content from different instances (fresh runtimes, sweep repeats)
    maps to the same entry.
    """
    return (
        engine.node.spec,
        engine.costs,
        region,
        caps,
        engine.node.frequency_limit_ghz,
        config,
    )


def memo_get(key: tuple) -> RegionExecutionRecord | None:
    global _memo_hits, _memo_misses
    record = _memo.get(key)
    if record is None:
        _memo_misses += 1
    else:
        _memo_hits += 1
    return record


def memo_put(key: tuple, record: RegionExecutionRecord) -> None:
    if len(_memo) >= MEMO_LIMIT and key not in _memo:
        # FIFO eviction keeps the memo bounded and deterministic.
        _memo.pop(next(iter(_memo)))
    _memo[key] = record


def memo_stats() -> dict[str, int]:
    return {
        "entries": len(_memo),
        "hits": _memo_hits,
        "misses": _memo_misses,
    }


def clear_memo() -> None:
    global _memo_hits, _memo_misses
    _memo.clear()
    _memo_hits = 0
    _memo_misses = 0


class BatchEvaluator:
    """Vectorized evaluation of many configs for one region.

    Produces the exact records ``ExecutionEngine._simulate`` would, in
    input order, without touching the node clock or energy counters.
    """

    def __init__(self, engine: ExecutionEngine) -> None:
        self._engine = engine

    def evaluate(
        self, region: RegionProfile, configs: list[OMPConfig]
    ) -> list[RegionExecutionRecord]:
        engine = self._engine
        node = engine.node
        spec = node.spec
        entry = engine._weights(region)
        total_weight = float(entry.prefix[-1])
        records: list[RegionExecutionRecord | None] = [None] * len(configs)

        # group configs by thread count: the team context (placement,
        # frequencies, jitter, per-thread compute cost) is shared.
        groups: dict[int, list[int]] = {}
        for i, config in enumerate(configs):
            groups.setdefault(config.n_threads, []).append(i)

        for n_threads, members in groups.items():
            placement = node.topology.place(n_threads)
            freqs = node.frequency_for_team(placement)
            throughput = placement.per_thread_throughput()
            threads_per_socket = placement.threads_per_socket
            uncore = [
                node.frequency.uncore_scale(freqs[s])
                for s in range(spec.sockets)
            ]
            active_cores = placement.active_cores_per_socket
            jitter_rng = rng_for(
                0x0E5, "thread-jitter", region.name, n_threads, spec.name
            )
            raw_jitter = np.abs(
                jitter_rng.normal(0.0, 1.0, size=n_threads)
            )
            socket_of = np.array(
                [slot.socket for slot in placement.slots]
            )

            # per-thread cost of a weight-1 iteration: the cpu half is
            # config-independent; the memory half factors into a
            # per-socket stall coefficient times the same jitter.
            jitter_arr = np.empty(n_threads)
            cpu_s = np.empty(n_threads)
            for slot, thr in zip(placement.slots, throughput):
                f = freqs[slot.socket]
                siblings = placement.siblings_active(slot)
                jitter = 1.0 + (
                    spec.thread_jitter_sigma
                    * (siblings ** 0.5)
                    * raw_jitter[slot.thread_id]
                )
                jitter_arr[slot.thread_id] = jitter
                cpu_s[slot.thread_id] = (
                    region.cpu_ns_per_iter
                    * 1e-9
                    * (spec.base_freq_ghz / f)
                    / thr
                    * jitter
                )

            # cache model once per distinct scheduling quantum
            traffic_cache: dict[float, list] = {}

            def traffic_for(avg_chunk: float) -> list:
                cached = traffic_cache.get(avg_chunk)
                if cached is None:
                    cached = [
                        node.cache.predict(
                            region.memory,
                            region.iterations,
                            max(1, threads_per_socket[s]),
                            n_threads,
                            avg_chunk,
                            uncore_scale=uncore[s],
                            smt_share=threads_per_socket[s]
                            / max(1, active_cores[s]),
                        )
                        if threads_per_socket[s] > 0
                        else None
                        for s in range(spec.sockets)
                    ]
                    traffic_cache[avg_chunk] = cached
                return cached

            k = len(members)
            n_sockets = spec.sockets
            bounds: list[tuple[np.ndarray, np.ndarray]] = []
            traffics: list[list] = []
            stall_coeff = np.zeros((k, n_sockets))
            dram_bytes = np.zeros((k, n_sockets))
            for row, i in enumerate(members):
                starts, stops = chunk_bounds(
                    configs[i], region.iterations
                )
                bounds.append((starts, stops))
                avg_chunk = region.iterations / max(1, len(starts))
                traffic = traffic_for(avg_chunk)
                traffics.append(traffic)
                for s in range(n_sockets):
                    t = traffic[s]
                    if t is None:
                        continue
                    stall_coeff[row, s] = (
                        t.accesses_per_iter * t.stall_ns_per_access * 1e-9
                    )
                    dram_bytes[row, s] = t.dram_bytes_per_iter

            mem_s = stall_coeff[:, socket_of] * jitter_arr[None, :]

            # -- batched DRAM bandwidth contention fixed point ----------
            # bit-identical to the scalar loop: every operation is
            # elementwise except the row sum, which matches the scalar
            # np.sum for C-contiguous rows.
            share = np.array(
                [
                    threads_per_socket[s] / n_threads
                    for s in range(n_sockets)
                ]
            )
            capacity = np.array(
                [
                    node.memory.effective_bandwidth(
                        threads_per_socket[s], freqs[s]
                    )
                    for s in range(n_sockets)
                ]
            )
            mem_mult = np.ones((k, n_sockets))
            for _ in range(engine.BW_FIXED_POINT_ITERS):
                per_iter = cpu_s[None, :] + mem_s * mem_mult[:, socket_of]
                # the row reduction must run per contiguous row: a 2-D
                # ``np.sum(..., axis=1)`` blocks its pairwise summation
                # differently and drifts from the scalar path by 1 ULP.
                inv = 1.0 / per_iter
                rate = np.array(
                    [np.sum(inv[row]) for row in range(k)]
                )
                t_est = np.maximum(total_weight / rate, 1e-12)
                new_mult = node.memory.contention_multiplier_batch(
                    dram_bytes
                    * region.iterations
                    * share[None, :]
                    / t_est[:, None],
                    capacity[None, :],
                )
                mem_mult = 0.5 * (mem_mult + new_mult)

            per_weight = cpu_s[None, :] + mem_s * mem_mult[:, socket_of]

            # -- schedule + energy per config (shared engine methods) ---
            for row, i in enumerate(members):
                starts, stops = bounds[row]
                chunk_weights = entry.prefix[stops] - entry.prefix[starts]
                records[i] = engine._complete(
                    region,
                    configs[i],
                    placement,
                    freqs,
                    threads_per_socket,
                    traffics[row],
                    len(starts),
                    chunk_weights,
                    per_weight[row],
                )

        return records  # type: ignore[return-value]
