"""Fork/join, barrier and dispatch cost constants.

These model the OpenMP runtime's own overheads (Bull's EWOMP'99
measurements [20] motivate their shape): forking a team and the
end-of-region barrier cost grow logarithmically with the team size
(tree barriers); every dynamic/guided chunk dequeue pays a small
constant for the shared-counter atomic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import us
from repro.util.validation import require_positive


@dataclass(frozen=True)
class TeamCosts:
    """Runtime-overhead constants (seconds via the helpers)."""

    fork_base_us: float = 1.2
    fork_per_log2_thread_us: float = 0.6
    barrier_base_us: float = 0.6
    barrier_per_log2_thread_us: float = 0.45
    dispatch_us: float = 0.35          # per dynamic/guided chunk dequeue

    def fork_join_s(self, n_threads: int) -> float:
        """Team fork + implicit join cost for an ``n_threads`` team."""
        require_positive("n_threads", n_threads)
        if n_threads == 1:
            return us(self.fork_base_us) * 0.25
        return us(
            self.fork_base_us
            + self.fork_per_log2_thread_us * math.log2(n_threads)
        )

    def barrier_s(self, n_threads: int) -> float:
        """Base cost of the end-of-loop barrier itself (excluding load
        -imbalance waiting, which the engine computes)."""
        require_positive("n_threads", n_threads)
        if n_threads == 1:
            return 0.0
        return us(
            self.barrier_base_us
            + self.barrier_per_log2_thread_us * math.log2(n_threads)
        )

    def dispatch_s(self) -> float:
        """Cost of one dynamic/guided chunk dequeue."""
        return us(self.dispatch_us)
