"""Core OpenMP configuration types.

An *OpenMP configuration* in the paper's sense (Section I) is the
triple **(number of threads, scheduling policy, chunk size)**.  The
``DEFAULT`` markers mirror Table I, where "default" is an explicit
member of each search dimension: default schedule means the runtime's
``static`` policy, and a ``None`` chunk means the specification default
(iterations/threads for static, 1 for dynamic and guided).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache


class ScheduleKind(Enum):
    """OpenMP loop scheduling policies explored by ARCS (Table I)."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class OMPConfig:
    """One point of the ARCS search space.

    ``chunk=None`` selects the specification-default chunking for the
    schedule kind.
    """

    n_threads: int
    schedule: ScheduleKind = ScheduleKind.STATIC
    chunk: int | None = None

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError(
                f"n_threads must be >= 1, got {self.n_threads}"
            )
        if self.chunk is not None and self.chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {self.chunk}")

    def label(self) -> str:
        """Compact label used in paper-style tables, e.g.
        ``"16, guided, 8"`` or ``"32, static, default"``."""
        return _cached_label(self)


@lru_cache(maxsize=None)
def _cached_label(config: OMPConfig) -> str:
    # telemetry labels every applied config; the search space is tiny
    # (hundreds of points) so memoizing beats re-formatting per event
    chunk = "default" if config.chunk is None else str(config.chunk)
    return f"{config.n_threads}, {config.schedule.value}, {chunk}"


def default_config(max_threads: int) -> OMPConfig:
    """The paper's baseline: "maximum number of available threads,
    static scheduling, and chunk sizes calculated dynamically by
    dividing total number of loop iterations by number of threads"
    (i.e. spec-default static chunking)."""
    return OMPConfig(
        n_threads=max_threads, schedule=ScheduleKind.STATIC, chunk=None
    )
