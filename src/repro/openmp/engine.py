"""Region execution engine.

Turns (region profile, OpenMP configuration, current power caps) into a
:class:`RegionExecutionRecord`.  The pipeline:

1. place the team on the machine (physical cores first, SMT last);
2. ask RAPL for the per-package sustainable frequency — the cap's
   effect on compute speed;
3. predict cache miss rates from the region's memory profile, the
   socket-level thread count and the scheduling quantum, then resolve
   the DRAM-bandwidth contention fixed point;
4. partition iterations per the exact OpenMP schedule semantics and
   simulate the dispatch (greedy earliest-available-thread for
   dynamic/guided, closed-form for static), yielding per-thread finish
   times — load imbalance falls out here;
5. integrate the power model over the region (active cores, spinning /
   sleeping waiters, uncore) to get package energy.

The engine is deterministic; run-to-run noise is applied by the
runtime layer.  Records are memoized on (region, config, caps) because
applications execute identical region calls thousands of times.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.machine.node import SimulatedNode
from repro.openmp import batch as _batch
from repro.openmp.barrier import TeamCosts
from repro.openmp.records import RegionExecutionRecord
from repro.openmp.region import RegionProfile
from repro.openmp.schedule import average_chunk_iters, chunks_for
from repro.openmp.types import OMPConfig, ScheduleKind
from repro.telemetry.bus import bus
from repro.util.rng import rng_for

#: above this many chunks, dynamic dispatch uses the balanced-flow
#: approximation instead of the exact greedy simulation.
_SIM_CHUNK_LIMIT = 4096

from repro.machine.power import SMT_POWER_FACTOR as _SMT_POWER_FACTOR

#: bandwidth fixed-point iterations (converges geometrically).
_BW_FIXED_POINT_ITERS = 3


@dataclass(frozen=True)
class _WeightCacheEntry:
    weights: np.ndarray
    prefix: np.ndarray  # prefix[i] = sum(weights[:i])


class ExecutionEngine:
    """Simulates parallel-region executions on a :class:`SimulatedNode`."""

    #: bandwidth fixed-point iteration count, exposed for the batched
    #: evaluator (which must run the exact same number of rounds).
    BW_FIXED_POINT_ITERS = _BW_FIXED_POINT_ITERS

    def __init__(
        self, node: SimulatedNode, costs: TeamCosts | None = None
    ) -> None:
        self.node = node
        self.costs = costs or TeamCosts()
        self._weight_cache: dict[tuple[str, int], _WeightCacheEntry] = {}
        self._record_cache: dict[tuple, RegionExecutionRecord] = {}

    # ------------------------------------------------------------------
    def _caps(self) -> tuple[float | None, ...]:
        return tuple(
            self.node.rapl.effective_cap_w(s, self.node.now_s)
            for s in range(self.node.spec.sockets)
        )

    def execute(
        self, region: RegionProfile, config: OMPConfig
    ) -> RegionExecutionRecord:
        """Execute ``region`` under ``config``; advances the node clock
        and deposits package energy into the RAPL counters."""
        spec = self.node.spec
        if config.n_threads > spec.total_hw_threads:
            raise ValueError(
                f"config requests {config.n_threads} threads but "
                f"{spec.name} has {spec.total_hw_threads} hardware threads"
            )
        caps = self._caps()
        key = (
            region.name,
            region.iterations,
            config,
            caps,
            self.node.frequency_limit_ghz,
        )
        record = self._record_cache.get(key)
        if record is None and _batch.batching_enabled():
            # process-wide content-keyed memo: another engine (a fresh
            # runtime, an earlier sweep cell) may have computed this
            # exact evaluation already.
            record = _batch.memo_get(
                _batch.memo_key(self, region, config, caps)
            )
            if record is not None:
                self._record_cache[key] = record
        if record is None:
            record = self._simulate(region, config)
            self._record_cache[key] = record
            if _batch.batching_enabled():
                _batch.memo_put(
                    _batch.memo_key(self, region, config, caps), record
                )
        # side effects: clock + energy counters
        per_socket = record.energy_j / spec.sockets
        dram_per_socket = record.dram_energy_j / spec.sockets
        self.node.advance(record.time_s)
        for socket in range(spec.sockets):
            self.node.deposit_energy(socket, per_socket)
            self.node.deposit_dram_energy(socket, dram_per_socket)
        return record

    # ------------------------------------------------------------------
    def prefetch(
        self, region: RegionProfile, configs: tuple[OMPConfig, ...]
    ) -> int:
        """Warm the record caches for candidate ``configs`` under the
        current power caps in one vectorized pass.

        Pure pre-computation: no clock advance, no energy deposits, no
        OMPT events - subsequent :meth:`execute` calls hit the cache
        and behave byte-identically to the scalar path.  Returns the
        number of freshly computed records (cached/memoized candidates
        and configs the machine cannot run cost nothing).
        """
        if not _batch.batching_enabled() or not configs:
            return 0
        spec = self.node.spec
        caps = self._caps()
        todo: list[tuple[OMPConfig, tuple, tuple]] = []
        seen: set[OMPConfig] = set()
        for config in configs:
            if config.n_threads > spec.total_hw_threads:
                continue
            if config in seen:
                continue
            seen.add(config)
            key = (
                region.name,
                region.iterations,
                config,
                caps,
                self.node.frequency_limit_ghz,
            )
            if key in self._record_cache:
                continue
            mkey = _batch.memo_key(self, region, config, caps)
            record = _batch.memo_get(mkey)
            if record is not None:
                self._record_cache[key] = record
                continue
            todo.append((config, key, mkey))
        if not todo:
            return 0
        records = _batch.BatchEvaluator(self).evaluate(
            region, [config for config, _, _ in todo]
        )
        for (config, key, mkey), record in zip(todo, records):
            self._record_cache[key] = record
            _batch.memo_put(mkey, record)
        tb = bus()
        if tb.enabled:
            tb.count("batch.prefetches")
            tb.count("batch.prefetched_configs", len(todo))
            tb.emit(
                "batch.prefetch",
                region=region.name,
                configs=len(configs),
                computed=len(todo),
            )
        return len(todo)

    # ------------------------------------------------------------------
    def _weights(self, region: RegionProfile) -> _WeightCacheEntry:
        key = (region.name, region.iterations)
        entry = self._weight_cache.get(key)
        if entry is None:
            w = region.iteration_weights()
            prefix = np.concatenate(([0.0], np.cumsum(w)))
            entry = _WeightCacheEntry(weights=w, prefix=prefix)
            self._weight_cache[key] = entry
        return entry

    def _simulate(
        self, region: RegionProfile, config: OMPConfig
    ) -> RegionExecutionRecord:
        spec = self.node.spec
        n_threads = config.n_threads
        placement = self.node.topology.place(n_threads)
        freqs = self.node.frequency_for_team(placement)
        throughput = placement.per_thread_throughput()
        threads_per_socket = placement.threads_per_socket

        entry = self._weights(region)
        total_weight = float(entry.prefix[-1])
        avg_chunk = average_chunk_iters(config, region.iterations)

        # -- cache + memory model per socket ----------------------------
        uncore = [
            self.node.frequency.uncore_scale(freqs[s])
            for s in range(spec.sockets)
        ]
        active_cores = placement.active_cores_per_socket
        traffic = [
            self.node.cache.predict(
                region.memory,
                region.iterations,
                max(1, threads_per_socket[s]),
                n_threads,
                avg_chunk,
                uncore_scale=uncore[s],
                smt_share=threads_per_socket[s] / max(1, active_cores[s]),
            )
            if threads_per_socket[s] > 0
            else None
            for s in range(spec.sockets)
        ]

        # Per-thread cost of a weight-1 iteration, split cpu/mem.
        # Per-thread jitter (OS noise, SMT partner interference) is
        # deterministic per (region, thread) so records stay memoizable;
        # it grows with SMT co-residency and only slows threads down.
        jitter_rng = rng_for(
            0x0E5, "thread-jitter", region.name, n_threads, spec.name
        )
        raw_jitter = np.abs(jitter_rng.normal(0.0, 1.0, size=n_threads))
        cpu_s = np.empty(n_threads)
        mem_s = np.empty(n_threads)
        for slot, thr in zip(placement.slots, throughput):
            f = freqs[slot.socket]
            t = traffic[slot.socket]
            assert t is not None
            siblings = placement.siblings_active(slot)
            jitter = 1.0 + (
                spec.thread_jitter_sigma
                * (siblings ** 0.5)
                * raw_jitter[slot.thread_id]
            )
            cpu_s[slot.thread_id] = (
                region.cpu_ns_per_iter
                * 1e-9
                * (spec.base_freq_ghz / f)
                / thr
                * jitter
            )
            mem_s[slot.thread_id] = (
                t.accesses_per_iter * t.stall_ns_per_access * 1e-9 * jitter
            )

        # -- DRAM bandwidth contention fixed point -----------------------
        mem_mult = np.ones(spec.sockets)
        for _ in range(_BW_FIXED_POINT_ITERS):
            per_iter = cpu_s + mem_s * mem_mult[
                [slot.socket for slot in placement.slots]
            ]
            # balanced-flow estimate of compute time
            rate = float(np.sum(1.0 / per_iter))
            t_est = max(total_weight / rate, 1e-12)
            new_mult = np.ones(spec.sockets)
            for s in range(spec.sockets):
                t = traffic[s]
                if t is None or t.dram_bytes_per_iter <= 0:
                    continue
                share = threads_per_socket[s] / n_threads
                dram_rate = (
                    t.dram_bytes_per_iter * region.iterations * share / t_est
                )
                new_mult[s] = self.node.memory.contention_multiplier(
                    dram_rate, freqs[s], streams=threads_per_socket[s]
                )
            mem_mult = 0.5 * (mem_mult + new_mult)

        socket_of = np.array([slot.socket for slot in placement.slots])
        per_weight_s = cpu_s + mem_s * mem_mult[socket_of]

        # -- schedule the chunks -----------------------------------------
        chunks = chunks_for(config, region.iterations)
        chunk_weights = (
            entry.prefix[[c.stop for c in chunks]]
            - entry.prefix[[c.start for c in chunks]]
        )
        return self._complete(
            region,
            config,
            placement,
            freqs,
            threads_per_socket,
            traffic,
            len(chunks),
            chunk_weights,
            per_weight_s,
        )

    def _complete(
        self,
        region: RegionProfile,
        config: OMPConfig,
        placement,
        freqs: tuple[float, ...],
        threads_per_socket,
        traffic,
        n_chunks: int,
        chunk_weights: np.ndarray,
        per_weight_s: np.ndarray,
    ) -> RegionExecutionRecord:
        """Schedule the chunks and assemble the record - the back half
        of :meth:`_simulate`, shared with the batched evaluator so both
        paths run the exact same arithmetic."""
        spec = self.node.spec
        n_threads = config.n_threads
        if config.schedule is ScheduleKind.STATIC:
            finish, dispatch_max = self._run_static(
                config, n_chunks, chunk_weights, per_weight_s
            )
        else:
            finish, dispatch_max = self._run_dynamic(
                n_threads, chunk_weights, per_weight_s
            )

        t_compute = float(finish.max())
        waits = t_compute - finish
        barrier_base = self.costs.barrier_s(n_threads)
        fork_join = self.costs.fork_join_s(n_threads)
        serial_s = region.serial_ns * 1e-9
        time_s = serial_s + fork_join + t_compute + barrier_base
        # Master-only (single/master construct) sections inside the
        # region leave the other threads waiting at the construct's
        # barrier - OMPT reports that as sync-region time.  This is the
        # Figure 9 EvalEOSForElems situation: a region whose inclusive
        # time is dominated by barrier waits no configuration can fix.
        serial_barrier_s = (n_threads - 1) * serial_s

        energy_j = self._energy(
            placement, freqs, finish, t_compute, serial_s, time_s
        )

        # -- aggregate cache metrics (thread-weighted across sockets) ----
        l1 = l2 = l3 = dram = 0.0
        for s in range(spec.sockets):
            t = traffic[s]
            if t is None:
                continue
            share = threads_per_socket[s] / n_threads
            l1 += share * t.l1_miss_rate
            l2 += share * t.l2_miss_rate
            l3 += share * t.l3_miss_rate
            dram += t.dram_bytes_per_iter * region.iterations * share

        dram_energy_j = (
            spec.sockets * spec.dram_static_w * time_s
            + dram * spec.dram_energy_j_per_byte
        )

        return RegionExecutionRecord(
            region_name=region.name,
            config=config,
            time_s=time_s,
            loop_time_s=t_compute,
            serial_time_s=serial_s,
            fork_join_s=fork_join + barrier_base,
            barrier_wait_total_s=float(waits.sum())
            + n_threads * barrier_base
            + serial_barrier_s,
            barrier_wait_max_s=float(waits.max()) + barrier_base,
            thread_busy_s=tuple(float(x) for x in finish),
            energy_j=energy_j,
            avg_power_w=energy_j / time_s if time_s > 0 else 0.0,
            frequencies_ghz=freqs,
            l1_miss_rate=l1,
            l2_miss_rate=l2,
            l3_miss_rate=l3,
            dram_bytes=dram,
            dispatch_overhead_s=dispatch_max,
            dram_energy_j=dram_energy_j,
        )

    # ------------------------------------------------------------------
    def _run_static(
        self,
        config: OMPConfig,
        n_chunks: int,
        chunk_weights: np.ndarray,
        per_weight_s: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Closed-form static scheduling: owners are fixed a priori
        (block partition for default static, round-robin for chunked —
        the same rule as :func:`static_assignment`, vectorized)."""
        n_threads = config.n_threads
        if config.chunk is None:
            owners = np.arange(n_chunks)
        else:
            owners = np.arange(n_chunks) % n_threads
        thread_weight = np.bincount(
            owners, weights=chunk_weights, minlength=n_threads
        )[:n_threads]
        finish = thread_weight * per_weight_s
        return finish, 0.0

    def _run_dynamic(
        self,
        n_threads: int,
        chunk_weights: np.ndarray,
        per_weight_s: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Greedy earliest-available-thread dispatch (exact) or the
        balanced-flow approximation for very large chunk counts."""
        dispatch = self.costs.dispatch_s()
        n_chunks = len(chunk_weights)
        if n_chunks > _SIM_CHUNK_LIMIT:
            # Balanced flow: threads drain the chunk queue at their own
            # speeds; finish spread is bounded by one chunk duration.
            total_weight = float(chunk_weights.sum())
            dispatch_per_weight = dispatch * n_chunks / max(
                total_weight, 1e-30
            )
            eff_per_weight = per_weight_s + dispatch_per_weight
            rates = 1.0 / eff_per_weight
            t_balanced = total_weight / float(rates.sum())
            straggle = float(chunk_weights.max()) * float(
                per_weight_s.max()
            ) * 0.5
            finish = np.full(n_threads, t_balanced)
            finish[-1] += straggle
            share = rates / float(rates.sum())
            dispatch_max = float((share * n_chunks * dispatch).max())
            return finish, dispatch_max
        avail = [(0.0, tid) for tid in range(n_threads)]
        heapq.heapify(avail)
        finish = np.zeros(n_threads)
        dispatch_time = np.zeros(n_threads)
        for w in chunk_weights:
            t, tid = heapq.heappop(avail)
            duration = dispatch + float(w) * per_weight_s[tid]
            t_new = t + duration
            finish[tid] = t_new
            dispatch_time[tid] += dispatch
            heapq.heappush(avail, (t_new, tid))
        return finish, float(dispatch_time.max())

    # ------------------------------------------------------------------
    def _energy(
        self,
        placement,
        freqs: tuple[float, ...],
        finish: np.ndarray,
        t_compute: float,
        serial_s: float,
        time_s: float,
    ) -> float:
        """Integrate the package power model over the region."""
        spec = self.node.spec
        power = self.node.power
        energy = 0.0
        # group team threads by (socket, core)
        cores: dict[tuple[int, int], list[int]] = {}
        for slot in placement.slots:
            cores.setdefault((slot.socket, slot.core), []).append(
                slot.thread_id
            )
        team_cores_per_socket = [0] * spec.sockets
        for (socket, _core), tids in cores.items():
            team_cores_per_socket[socket] += 1
            f = freqs[socket]
            dyn = power.core_dynamic_w(f)
            active = float(max(finish[tid] for tid in tids))
            smt_extra = _SMT_POWER_FACTOR * (len(tids) - 1)
            energy += dyn * (1.0 + smt_extra) * active
            wait = max(0.0, t_compute - active)
            energy += power.idle_interval(wait, f).energy_j
            # serial prologue: team cores idle, except the master's core
            if serial_s > 0 and 0 not in tids:
                energy += power.idle_interval(serial_s, f).energy_j
        # master core during serial prologue
        if serial_s > 0:
            master_socket = placement.slots[0].socket
            energy += power.core_dynamic_w(freqs[master_socket]) * serial_s
        for socket in range(spec.sockets):
            f = freqs[socket]
            # uncore draws for the whole region
            energy += power.uncore_w(f) * time_s
            # cores outside the team sleep throughout
            unused = spec.cores_per_socket - team_cores_per_socket[socket]
            energy += unused * spec.idle_core_sleep_w * time_s
        return energy
