"""In-memory metrics registry: counters, gauges, histograms.

Metrics are aggregated in memory (no per-increment event records - a
counter bumped once per OMPT dispatch would dominate the log) and
flushed as one sorted block of ``"metric"`` records when the bus
closes, so the JSONL stays deterministic and compact.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class HistogramStats:
    """Streaming summary of an observed distribution."""

    count: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass
class MetricsRegistry:
    """All metric state for one bus."""

    counters: defaultdict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramStats] = field(default_factory=dict)

    def count(self, name: str, delta: float = 1.0) -> None:
        self.counters[name] += delta

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = HistogramStats()
            self.histograms[name] = hist
        hist.observe(value)

    def snapshot(self) -> list[dict]:
        """JSON-ready ``"metric"`` records, sorted by (kind, name).

        ``min``/``max`` of an empty histogram are ``None`` - never
        ``Infinity``, which strict JSON cannot represent.
        """
        records: list[dict] = []
        for name in sorted(self.counters):
            records.append(
                {
                    "type": "metric",
                    "kind": "counter",
                    "name": name,
                    "value": self.counters[name],
                }
            )
        for name in sorted(self.gauges):
            records.append(
                {
                    "type": "metric",
                    "kind": "gauge",
                    "name": name,
                    "value": self.gauges[name],
                }
            )
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            records.append(
                {
                    "type": "metric",
                    "kind": "histogram",
                    "name": name,
                    "count": hist.count,
                    "sum": hist.sum,
                    "min": hist.min,
                    "max": hist.max,
                    "mean": hist.mean,
                }
            )
        return records
