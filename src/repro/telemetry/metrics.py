"""In-memory metrics registry: counters, gauges, histograms.

Metrics are aggregated in memory (no per-increment event records - a
counter bumped once per OMPT dispatch would dominate the log) and
flushed as one sorted block of ``"metric"`` records when the bus
closes, so the JSONL stays deterministic and compact.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

#: Samples retained per histogram for percentile estimation.  Keep-the-
#: first-N is deliberate: a random reservoir would need an RNG and break
#: the byte-identity contract, and repro distributions are stationary
#: under the seed, so the prefix is representative.
RESERVOIR_SIZE = 4096


@dataclass
class HistogramStats:
    """Streaming summary of an observed distribution."""

    count: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self.samples) < RESERVOIR_SIZE:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile over the retained samples.

        Documented edge cases (previously index errors downstream):

        * empty histogram → ``None`` (no data is not a number);
        * single sample → that sample, for every ``p``;
        * small n (e.g. p99 with n < 100) → the nearest-rank sample,
          which degrades to ``max`` — never an out-of-range index;
        * ``p`` outside [0, 100] → ``ValueError``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        # nearest-rank: 1-based rank ceil(p/100 * n); p=0 pins to min
        n = len(ordered)
        rank = min(n, max(1, math.ceil(p * n / 100.0)))
        return ordered[rank - 1]


@dataclass
class MetricsRegistry:
    """All metric state for one bus."""

    counters: defaultdict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramStats] = field(default_factory=dict)

    def count(self, name: str, delta: float = 1.0) -> None:
        self.counters[name] += delta

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = HistogramStats()
            self.histograms[name] = hist
        hist.observe(value)

    def snapshot(self) -> list[dict]:
        """JSON-ready ``"metric"`` records, sorted by (kind, name).

        ``min``/``max`` of an empty histogram are ``None`` - never
        ``Infinity``, which strict JSON cannot represent.
        """
        records: list[dict] = []
        for name in sorted(self.counters):
            records.append(
                {
                    "type": "metric",
                    "kind": "counter",
                    "name": name,
                    "value": self.counters[name],
                }
            )
        for name in sorted(self.gauges):
            records.append(
                {
                    "type": "metric",
                    "kind": "gauge",
                    "name": name,
                    "value": self.gauges[name],
                }
            )
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            records.append(
                {
                    "type": "metric",
                    "kind": "histogram",
                    "name": name,
                    "count": hist.count,
                    "sum": hist.sum,
                    "min": hist.min,
                    "max": hist.max,
                    "mean": hist.mean,
                    "p50": hist.percentile(50),
                    "p95": hist.percentile(95),
                    "p99": hist.percentile(99),
                }
            )
        return records
