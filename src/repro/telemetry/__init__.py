"""Unified telemetry: one event bus across the whole ARCS control loop.

Every layer of the reproduction - OMPT dispatch, APEX timers, the ARCS
policy, Harmony search, RAPL/MSR accesses, fault injection, cap
schedules, checkpoints, supervision and the sweep harness - reports to
a single process-wide :class:`~repro.telemetry.bus.TelemetryBus`.  The
bus records spans (begin/end with the *simulated* clock), point events,
and counter/gauge/histogram metrics, keeps a bounded in-memory flight
recorder for post-mortems, and streams records to fsync-batched JSONL
sinks that a Chrome-trace exporter turns into a Perfetto-loadable
``trace.json``.

The default bus is disabled: every call is an attribute check plus an
early return, so instrumented code pays ~nothing unless a run opts in
(``repro run --telemetry DIR``).  Timestamps always come from the
simulated node's clock (never wall-clock), so two runs at the same seed
produce byte-identical event logs.
"""

from __future__ import annotations

from repro.telemetry.bus import TelemetryBus, bus, install
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sinks import (
    JsonlSink,
    export_chrome_trace,
    load_telemetry_dir,
    read_jsonl,
)
from repro.telemetry.timeline import (
    merged_records,
    render_decision_timeline,
    render_metrics_summary,
)

__all__ = [
    "TelemetryBus",
    "bus",
    "install",
    "FlightRecorder",
    "MetricsRegistry",
    "JsonlSink",
    "export_chrome_trace",
    "load_telemetry_dir",
    "merged_records",
    "read_jsonl",
    "render_decision_timeline",
    "render_metrics_summary",
]
