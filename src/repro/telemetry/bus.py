"""The process-wide telemetry bus.

One :class:`TelemetryBus` instance is installed per process (per
*worker* process in a parallel sweep) and every instrumented layer
reports to it through the module-level :func:`bus` accessor.  The
default bus is **disabled**: every public call starts with an
``enabled`` check and returns immediately, so instrumentation costs an
attribute load plus a branch when telemetry is off.

Determinism contract
--------------------
Timestamps come from a *bound clock* - normally the simulated node's
``now_s`` - never from wall-clock.  Because each repeat builds a fresh
node whose clock restarts at zero, the bus keeps a monotone offset:
rebinding the clock pins the offset at the largest timestamp emitted so
far, so a run's event log forms one monotonically non-decreasing
timeline across repeats.  Records carry a sequence number that breaks
ties between events at the same simulated instant.  Nothing in a
record depends on wall-clock, PIDs or absolute paths, so two runs at
the same seed produce byte-identical logs.
"""

from __future__ import annotations

from typing import Callable, Iterator

from contextlib import contextmanager

from repro.telemetry.flight import DEFAULT_FLIGHT_SIZE, FlightRecorder
from repro.telemetry.metrics import MetricsRegistry


class TelemetryBus:
    """Spans, point events and metrics over one virtual timeline."""

    def __init__(
        self,
        *,
        enabled: bool = False,
        flight_size: int = DEFAULT_FLIGHT_SIZE,
    ) -> None:
        self.enabled = enabled
        self.flight = FlightRecorder(flight_size)
        self.metrics = MetricsRegistry()
        #: ambient trace context (:class:`repro.obs.trace.TraceContext`
        #: or ``None``).  When set, every record emitted is stamped
        #: with the (trace_id, span_id) it belongs to, and
        #: :func:`repro.obs.trace.traced_span` derives child contexts
        #: from it.  Purely observational: nothing in the control loop
        #: reads it back.
        self.trace = None
        self._sinks: list = []
        self._clock: Callable[[], float] | None = None
        self._clock_offset = 0.0
        self._max_ts = 0.0
        self._seq = 0
        self._trace_children = 0
        self._closed = False

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def add_sink(self, sink) -> None:
        """Attach a sink (anything with ``write(record)`` / ``close()``)."""
        self._sinks.append(sink)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Use ``clock()`` (a simulated-time callable) for timestamps.

        Rebinding - e.g. when a repeat builds a fresh node whose clock
        restarts at zero - pins the monotone offset at the largest
        timestamp seen so far, so the run-wide timeline never goes
        backwards.
        """
        if not self.enabled:
            return
        self._clock_offset = self._max_ts
        self._clock = clock

    def now(self) -> float:
        """Current virtual timestamp (monotone across clock rebinds)."""
        raw = self._clock() if self._clock is not None else 0.0
        ts = self._clock_offset + raw
        if ts > self._max_ts:
            self._max_ts = ts
        return ts

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------
    def emit(self, name: str, **attrs: object) -> None:
        """Record a point event at the current virtual time."""
        if not self.enabled:
            return
        self._record(
            {
                "type": "event",
                "ts": self.now(),
                "seq": self._next_seq(),
                "name": name,
                "attrs": attrs,
            }
        )

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[dict]:
        """Record a ``name`` span around the ``with`` body.

        Yields a mutable attribute dict: attributes added inside the
        body (e.g. the measured time/energy) land on the finished span
        record.  Disabled buses yield a throwaway dict and record
        nothing.
        """
        if not self.enabled:
            yield {}
            return
        span_attrs = dict(attrs)
        begin = self.now()
        seq = self._next_seq()
        try:
            yield span_attrs
        finally:
            end = self.now()
            self._record(
                {
                    "type": "span",
                    "ts": begin,
                    "seq": seq,
                    "name": name,
                    "dur": end - begin,
                    "attrs": span_attrs,
                }
            )

    def span_begin(self) -> tuple[float, int]:
        """Fast-path open for hand-rolled spans on hot paths (the
        :meth:`span` contextmanager's generator machinery measurably
        costs at per-region-invocation rates).  Pair with
        :meth:`span_finish`; callers must check ``enabled`` first."""
        return self.now(), self._next_seq()

    def span_finish(
        self,
        name: str,
        begin: float,
        seq: int,
        *,
        trace: dict | None = None,
        **attrs: object,
    ) -> None:
        """Close a hand-rolled span; the record is byte-identical to
        one produced by the :meth:`span` contextmanager.  ``trace``
        (used by :func:`repro.obs.trace.traced_span`) attaches an
        explicit trace dict, overriding the ambient stamp."""
        if not self.enabled:
            return
        record = {
            "type": "span",
            "ts": begin,
            "seq": seq,
            "name": name,
            "dur": self.now() - begin,
            "attrs": attrs,
        }
        if trace is not None:
            record["trace"] = trace
        self._record(record)

    # ------------------------------------------------------------------
    # metrics (aggregated in memory, flushed at close)
    # ------------------------------------------------------------------
    def count(self, name: str, delta: float = 1.0) -> None:
        if not self.enabled:
            return
        # inlined MetricsRegistry.count: this is the hottest telemetry
        # call (once per OMPT dispatch / MSR read) and the extra method
        # hop is measurable
        self.metrics.counters[name] += delta

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.metrics.observe(name, value)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def meta(self, **attrs: object) -> None:
        """Record the run-identity header (run_id, strategy, seed...)."""
        if not self.enabled:
            return
        self._record(
            {
                "type": "meta",
                "ts": self.now(),
                "seq": self._next_seq(),
                "name": "run.meta",
                "attrs": attrs,
            }
        )

    def flush(self) -> None:
        for sink in self._sinks:
            sink.flush()

    def close(self) -> None:
        """Flush aggregated metrics as ``metric`` records, then close
        every sink.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        # metric-flush records summarize the whole run; stamping them
        # with whatever span happened to be ambient would be a lie
        self.trace = None
        if self.enabled:
            final_ts = self._max_ts
            for record in self.metrics.snapshot():
                record["ts"] = final_ts
                record["seq"] = self._next_seq()
                self._record(record)
        for sink in self._sinks:
            sink.close()
        self._sinks.clear()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def next_trace_index(self) -> int:
        """Per-bus counter feeding deterministic child span-id
        derivation (see :func:`repro.obs.trace.child_context`)."""
        self._trace_children += 1
        return self._trace_children

    def _record(self, record: dict) -> None:
        ctx = self.trace
        if ctx is not None and "trace" not in record:
            record["trace"] = {
                "trace_id": ctx.trace_id,
                "span_id": ctx.span_id,
            }
        self.flight.record(record)
        for sink in self._sinks:
            sink.write(record)


#: The process-wide bus.  Disabled by default; ``repro run --telemetry``
#: (or a sweep worker) installs an enabled one.
_BUS = TelemetryBus(enabled=False)


def bus() -> TelemetryBus:
    """The currently installed process-wide bus."""
    return _BUS


def install(new_bus: TelemetryBus) -> TelemetryBus:
    """Install ``new_bus`` as the process-wide bus; returns the old one."""
    global _BUS
    old = _BUS
    _BUS = new_bus
    return old
