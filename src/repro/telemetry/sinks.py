"""Telemetry sinks: fsync-batched JSONL and a Chrome-trace exporter.

The JSONL log is the source of truth: one JSON object per line, strict
JSON (``allow_nan=False`` - a non-finite value in a record is a bug,
not something to smuggle past the parser), sorted keys so byte-identity
is a meaningful determinism check.  The Chrome-trace exporter is a pure
function over those lines; ``trace.json`` can always be regenerated
from the JSONL.
"""

from __future__ import annotations

import atexit
import json
import os
import weakref
from pathlib import Path

#: Records buffered before a write+fsync batch.  Each fsync costs
#: ~0.5 ms; at per-invocation record rates a small batch dominates the
#: telemetry overhead budget.  A crash loses at most one batch - and
#: the flight recorder attached to the abort exception covers exactly
#: that tail.
JSONL_BATCH_SIZE = 512

#: one reusable encoder: ``json.dumps`` with non-default options
#: constructs a fresh ``JSONEncoder`` per call, which is measurable at
#: record rates.
_ENCODER = json.JSONEncoder(
    sort_keys=True, separators=(",", ":"), allow_nan=False
)


def encode_record(record: dict) -> str:
    """One canonical JSONL line (sorted keys, no NaN, compact)."""
    return _ENCODER.encode(record)


#: Live sinks flushed at interpreter exit.  Weak references: a sink
#: that was properly closed (or garbage-collected) drops out on its
#: own; only sinks still open when the process exits are flushed.
_LIVE_SINKS: "weakref.WeakSet[JsonlSink]" = weakref.WeakSet()


def _flush_live_sinks() -> None:
    """atexit hook: a short-lived worker that exits between batches
    must not lose its final (< ``JSONL_BATCH_SIZE``) tail of records."""
    for sink in list(_LIVE_SINKS):
        try:
            sink.close()
        except OSError:
            pass  # exit path: a torn flush is no worse than no flush


atexit.register(_flush_live_sinks)


class JsonlSink:
    """Append telemetry records to a JSONL file, fsyncing in batches."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._pending = 0
        _LIVE_SINKS.add(self)

    def write(self, record: dict) -> None:
        self._fh.write(_ENCODER.encode(record) + "\n")
        self._pending += 1
        if self._pending >= JSONL_BATCH_SIZE:
            self.flush()

    def flush(self) -> None:
        if self._fh.closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._pending = 0

    def close(self) -> None:
        _LIVE_SINKS.discard(self)
        if self._fh.closed:
            return
        self.flush()
        self._fh.close()


def read_jsonl(path: str | Path) -> list[dict]:
    """Records from one JSONL file, tolerating a torn final line (a
    killed run may die mid-write; everything before the tear is good)."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail - keep the prefix
    return records


def telemetry_files(directory: str | Path) -> list[Path]:
    """All telemetry JSONL files under ``directory``, sorted by name so
    the merge order (and thus trace.json) is deterministic."""
    return sorted(Path(directory).glob("*.jsonl"))


def load_telemetry_dir(directory: str | Path) -> list[tuple[str, list[dict]]]:
    """``(stem, records)`` per JSONL file in ``directory``.

    A run directory holds one ``telemetry.jsonl``; a sweep directory
    holds the parent's ``sweep.jsonl`` plus one ``task-<runid>.jsonl``
    per cell (including cells from a killed sweep stitched back in by
    ``--resume``).
    """
    loaded = []
    for path in telemetry_files(directory):
        loaded.append((path.stem, read_jsonl(path)))
    if not loaded:
        raise FileNotFoundError(
            f"no telemetry JSONL files found in {directory}"
        )
    return loaded


# ----------------------------------------------------------------------
# Chrome trace / Perfetto export
# ----------------------------------------------------------------------
def export_chrome_trace(
    directory: str | Path, out_path: str | Path | None = None
) -> Path:
    """Convert a telemetry directory into a Perfetto-loadable
    ``trace.json`` (Chrome trace event format, JSON-array flavour).

    Each JSONL file becomes one "process" in the viewer (pid = its
    sorted position) so a sweep's cells land on parallel tracks.  Spans
    become complete ("X") events, point events become instants ("i"),
    timestamps are virtual seconds scaled to microseconds.
    """
    directory = Path(directory)
    if out_path is None:
        out_path = directory / "trace.json"
    events: list[dict] = []
    for pid, (stem, records) in enumerate(load_telemetry_dir(directory)):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": stem},
            }
        )
        for record in records:
            events.extend(_trace_events(record, pid))
    out_path = Path(out_path)
    out_path.write_text(
        json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
        + "\n",
        encoding="utf-8",
    )
    return out_path


def _trace_events(record: dict, pid: int) -> list[dict]:
    kind = record.get("type")
    ts_us = float(record.get("ts", 0.0)) * 1e6
    name = record.get("name", "?")
    args = dict(record.get("attrs") or {})
    if kind == "span":
        return [
            {
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "name": name,
                "cat": name.split(".", 1)[0],
                "ts": ts_us,
                "dur": float(record.get("dur", 0.0)) * 1e6,
                "args": args,
            }
        ]
    if kind == "event":
        return [
            {
                "ph": "i",
                "pid": pid,
                "tid": 0,
                "name": name,
                "cat": name.split(".", 1)[0],
                "ts": ts_us,
                "s": "t",
                "args": args,
            }
        ]
    if kind == "meta":
        return [
            {
                "ph": "i",
                "pid": pid,
                "tid": 0,
                "name": name,
                "cat": "meta",
                "ts": ts_us,
                "s": "p",
                "args": args,
            }
        ]
    # aggregated metrics land as counter samples at close time
    if kind == "metric" and record.get("kind") in ("counter", "gauge"):
        return [
            {
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "name": record.get("name", "?"),
                "ts": ts_us,
                "args": {"value": record.get("value", 0.0)},
            }
        ]
    return []
