"""Bounded in-memory flight recorder for post-mortem dumps.

The recorder keeps the last N telemetry records regardless of whether
any sink is attached, so an aborted run can attach "what the controller
saw, decided and did" to its exception without requiring the operator
to have enabled file telemetry in advance.
"""

from __future__ import annotations

from collections import deque

DEFAULT_FLIGHT_SIZE = 256


class FlightRecorder:
    """Ring buffer of the most recent telemetry records."""

    def __init__(self, size: int = DEFAULT_FLIGHT_SIZE) -> None:
        if size < 1:
            raise ValueError(f"flight size must be >= 1, got {size}")
        self._records: deque[dict] = deque(maxlen=size)

    def record(self, record: dict) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()

    def dump(self, last: int | None = None) -> tuple[str, ...]:
        """The last ``last`` records (default: all buffered) as
        human-readable one-liners, oldest first."""
        records = list(self._records)
        if last is not None:
            records = records[-last:]
        return tuple(format_record(r) for r in records)


def format_record(record: dict) -> str:
    """One flight-recorder line for a span/event record."""
    kind = record.get("type", "?")
    ts = record.get("ts")
    head = f"[{ts:.6f}]" if isinstance(ts, (int, float)) else "[-]"
    name = record.get("name", "?")
    parts = [head, name]
    if kind == "span":
        dur = record.get("dur")
        if isinstance(dur, (int, float)):
            parts.append(f"dur={dur:.6f}s")
    attrs = record.get("attrs") or {}
    parts.extend(f"{k}={_fmt(v)}" for k, v in sorted(attrs.items()))
    return " ".join(parts)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
