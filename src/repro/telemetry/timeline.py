"""Text rendering of a telemetry log: decision timeline + metrics.

``render_decision_timeline`` answers the post-mortem question the
paper's Section V-C analysis needed: *what did the controller see,
decide and do, in order, and what did it cost?*  It walks the merged
event stream and prints, per region invocation, the config the policy
applied (and why), the objective the measurement produced, whether the
search accepted it, and the power cap in force at the time.
"""

from __future__ import annotations

from repro.util.tables import format_table

#: Event names consumed by the timeline renderer.  Instrumentation and
#: rendering share this module-level contract.
POLICY_APPLY = "policy.apply"
POLICY_REPORT = "policy.report"

#: Non-policy events worth interleaving into the timeline because they
#: change what the controller sees (cap moves, faults, supervision).
TIMELINE_EVENTS = (
    "cap.change",
    "cap.change_rejected",
    "fault.fired",
    "supervise.retry",
    "supervise.pin",
    "supervise.abort",
    "harmony.restart",
    "harmony.reject",
    "harmony.failed",
    "run.aborted",
)


def merged_records(loaded: list[tuple[str, list[dict]]]) -> list[dict]:
    """Merge per-file record lists into one (ts, seq)-ordered stream.

    Records from different files (sweep cells) interleave by virtual
    time; the per-file seq breaks ties within a file.  Shared by the
    timeline renderer and the :mod:`repro.obs` aggregator/profiler.
    """
    merged: list[tuple[float, int, int, dict]] = []
    for file_index, (_, records) in enumerate(loaded):
        for record in records:
            merged.append(
                (
                    float(record.get("ts", 0.0)),
                    file_index,
                    int(record.get("seq", 0)),
                    record,
                )
            )
    merged.sort(key=lambda item: (item[0], item[1], item[2]))
    return [item[3] for item in merged]


#: Backwards-compatible private alias (pre-obs callers).
_sorted_records = merged_records


def render_decision_timeline(
    loaded: list[tuple[str, list[dict]]], region: str | None = None
) -> str:
    """The per-region decision timeline as aligned text lines.

    ``loaded`` is the output of
    :func:`repro.telemetry.sinks.load_telemetry_dir`.  ``region``
    restricts the view to one parallel region.
    """
    lines: list[str] = []
    for meta in _meta_records(loaded):
        attrs = meta.get("attrs") or {}
        parts = [f"{k}={attrs[k]}" for k in sorted(attrs)]
        lines.append("# " + " ".join(parts))
    pending: dict[str, dict] = {}
    n_decisions = 0
    for record in _sorted_records(loaded):
        if record.get("type") != "event":
            continue
        name = record.get("name")
        attrs = record.get("attrs") or {}
        rgn = attrs.get("region")
        if region is not None and rgn is not None and rgn != region:
            continue
        ts = float(record.get("ts", 0.0))
        if name == POLICY_APPLY:
            if rgn is not None:
                pending[rgn] = record
            continue
        if name == POLICY_REPORT:
            apply_attrs = (pending.pop(rgn, None) or {}).get("attrs") or {}
            config = apply_attrs.get("config", attrs.get("config", "?"))
            source = apply_attrs.get("source", "?")
            objective = attrs.get("objective")
            obj_text = (
                f"{objective:.6g}"
                if isinstance(objective, (int, float))
                else "-"
            )
            verdict = _verdict(attrs)
            cap = attrs.get("cap_w", apply_attrs.get("cap_w"))
            cap_text = f"cap={cap:g}W" if isinstance(cap, (int, float)) else "uncapped"
            lines.append(
                f"[{ts:10.6f}] {rgn}: {config} ({source}) "
                f"-> objective={obj_text} -> {verdict} [{cap_text}]"
            )
            n_decisions += 1
            continue
        if name in TIMELINE_EVENTS:
            detail = " ".join(
                f"{k}={attrs[k]}" for k in sorted(attrs) if k != "region"
            )
            prefix = f"{rgn}: " if rgn else ""
            lines.append(f"[{ts:10.6f}] ** {name} ** {prefix}{detail}")
    if not n_decisions:
        lines.append("(no policy decisions recorded)")
    return "\n".join(lines)


def _verdict(attrs: dict) -> str:
    accepted = attrs.get("accepted")
    if accepted is True:
        return "accept"
    if accepted is False:
        return "reject"
    return "recorded"


def _meta_records(loaded: list[tuple[str, list[dict]]]) -> list[dict]:
    metas = []
    for _, records in loaded:
        metas.extend(r for r in records if r.get("type") == "meta")
    return metas


def render_metrics_summary(loaded: list[tuple[str, list[dict]]]) -> str:
    """Aggregated metrics across every file as one ASCII table.

    Counters and histogram counts/sums add across files; gauges keep
    the last value seen (file order is the deterministic sorted-name
    order from ``load_telemetry_dir``).
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    hists: dict[str, dict] = {}
    for _, records in loaded:
        for record in records:
            if record.get("type") != "metric":
                continue
            kind = record.get("kind")
            name = record.get("name", "?")
            if kind == "counter":
                counters[name] = counters.get(name, 0.0) + float(
                    record.get("value", 0.0)
                )
            elif kind == "gauge":
                gauges[name] = float(record.get("value", 0.0))
            elif kind == "histogram":
                agg = hists.setdefault(
                    name, {"count": 0, "sum": 0.0, "min": None, "max": None}
                )
                agg["count"] += int(record.get("count", 0))
                agg["sum"] += float(record.get("sum", 0.0))
                for key, pick in (("min", min), ("max", max)):
                    value = record.get(key)
                    if value is None:
                        continue
                    agg[key] = (
                        value
                        if agg[key] is None
                        else pick(agg[key], value)
                    )
    rows: list[list[object]] = []
    for name in sorted(counters):
        rows.append(["counter", name, f"{counters[name]:g}", "", ""])
    for name in sorted(gauges):
        rows.append(["gauge", name, f"{gauges[name]:g}", "", ""])
    for name in sorted(hists):
        agg = hists[name]
        mean = agg["sum"] / agg["count"] if agg["count"] else 0.0
        rows.append(
            [
                "histogram",
                name,
                f"n={agg['count']} mean={mean:.6g}",
                "-" if agg["min"] is None else f"{agg['min']:.6g}",
                "-" if agg["max"] is None else f"{agg['max']:.6g}",
            ]
        )
    if not rows:
        return "(no metrics recorded)"
    return format_table(
        ["kind", "name", "value", "min", "max"],
        rows,
        title="telemetry metrics",
    )
