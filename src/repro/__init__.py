"""repro - reproduction of ARCS (CLUSTER 2016).

ARCS: Adaptive Runtime Configuration Selection for Power-Constrained
OpenMP Applications.  See README.md for the architecture overview and
DESIGN.md for the paper-to-module map.

Public API quick reference::

    from repro import (
        SimulatedNode, crill, minotaur,      # machine substrate
        OpenMPRuntime, OMPConfig, ScheduleKind,
        ARCS, HistoryStore,                  # the paper's contribution
        sp_application, bt_application, lulesh_application,
        run_application,
        ExperimentSetup, run_strategy, CRILL_POWER_LEVELS,
    )
"""

from repro.core.controller import ARCS
from repro.core.history import HistoryStore, experiment_key
from repro.experiments.runner import (
    CRILL_POWER_LEVELS,
    ExperimentSetup,
    StrategyRunResult,
    run_arcs_offline,
    run_arcs_online,
    run_default,
    run_strategy,
)
from repro.machine.node import SimulatedNode
from repro.machine.spec import MachineSpec, crill, machine_by_name, minotaur
from repro.openmp.region import ImbalanceSpec, RegionProfile
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.types import OMPConfig, ScheduleKind, default_config
from repro.workloads.base import Application, RegionCall, run_application
from repro.workloads.bt import bt_application
from repro.workloads.lulesh import lulesh_application
from repro.workloads.registry import application_by_name
from repro.workloads.sp import sp_application

__version__ = "1.0.0"

__all__ = [
    "ARCS",
    "Application",
    "CRILL_POWER_LEVELS",
    "ExperimentSetup",
    "HistoryStore",
    "ImbalanceSpec",
    "MachineSpec",
    "OMPConfig",
    "OpenMPRuntime",
    "RegionCall",
    "RegionProfile",
    "ScheduleKind",
    "SimulatedNode",
    "StrategyRunResult",
    "application_by_name",
    "bt_application",
    "crill",
    "default_config",
    "experiment_key",
    "lulesh_application",
    "machine_by_name",
    "minotaur",
    "run_application",
    "run_arcs_offline",
    "run_arcs_online",
    "run_default",
    "run_strategy",
    "sp_application",
]
