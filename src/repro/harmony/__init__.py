"""Active Harmony search engine (re-implemented).

"APEX integrates the auto-tuning and optimization search framework
Active Harmony ... Active Harmony implements several search methods,
including exhaustive search, Parallel Rank Order and Nelder-Mead.  In
this work, we used the exhaustive and Nelder-Mead search algorithms."
(Section III-B)

This package provides the tuning-session abstraction (ask/tell over a
discrete, partly-categorical search space) and the cited strategies,
plus a random-search baseline for ablations.
"""

from repro.harmony.engine import STRATEGIES, make_strategy
from repro.harmony.exhaustive import ExhaustiveSearch
from repro.harmony.neldermead import NelderMeadSearch
from repro.harmony.pro import ParallelRankOrderSearch
from repro.harmony.random_search import RandomSearch
from repro.harmony.session import SearchStrategy, TuningSession
from repro.harmony.space import Parameter, SearchSpace

__all__ = [
    "STRATEGIES",
    "ExhaustiveSearch",
    "NelderMeadSearch",
    "ParallelRankOrderSearch",
    "Parameter",
    "RandomSearch",
    "SearchSpace",
    "SearchStrategy",
    "TuningSession",
    "make_strategy",
]
