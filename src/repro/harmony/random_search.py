"""Random search baseline (for the search-strategy ablation)."""

from __future__ import annotations

from repro.harmony.session import SearchStrategy
from repro.harmony.space import SearchSpace
from repro.util.rng import rng_for
from repro.util.validation import require_positive


class RandomSearch(SearchStrategy):
    """Uniform sampling without replacement (up to the budget)."""

    def __init__(
        self, space: SearchSpace, max_evals: int = 48, seed: int = 0
    ) -> None:
        super().__init__(space)
        require_positive("max_evals", max_evals)
        self.max_evals = min(max_evals, space.size)
        rng = rng_for(seed, "random-search", space.size)
        seen: set[tuple[int, ...]] = set()
        self._plan: list[tuple[int, ...]] = []
        cards = [p.cardinality for p in space.parameters]
        # rejection-sample distinct points; bounded because budget <= size
        while len(self._plan) < self.max_evals:
            point = tuple(int(rng.integers(0, c)) for c in cards)
            if point not in seen:
                seen.add(point)
                self._plan.append(point)
        self._next = 0
        self._pending: tuple[int, ...] | None = None
        self._best: tuple[tuple[int, ...], float] | None = None

    def ask(self) -> tuple[int, ...] | None:
        if self._pending is not None:
            return self._pending
        if self._next >= len(self._plan):
            return None
        self._pending = self._plan[self._next]
        self._next += 1
        return self._pending

    def tell(self, indices: tuple[int, ...], value: float) -> None:
        if self._pending is None or indices != self._pending:
            raise ValueError(
                f"tell({indices}) does not match the outstanding ask "
                f"({self._pending})"
            )
        if self._best is None or value < self._best[1]:
            self._best = (indices, value)
        self._pending = None

    def probe_preview(self) -> tuple[tuple[int, ...], ...]:
        pending = () if self._pending is None else (self._pending,)
        return pending + tuple(self._plan[self._next:])

    @property
    def converged(self) -> bool:
        return self._pending is None and self._next >= len(self._plan)

    @property
    def best(self) -> tuple[tuple[int, ...], float] | None:
        return self._best
