"""Exhaustive search - the ARCS-Offline tuning-run strategy.

"the method uses an exhaustive search to find the best configuration
during one execution, then executes again with that optimal
configuration."  (Section III-B)
"""

from __future__ import annotations

from repro.harmony.session import SearchStrategy
from repro.harmony.space import SearchSpace


class ExhaustiveSearch(SearchStrategy):
    """Enumerates every point of the space once, in row-major order."""

    def __init__(self, space: SearchSpace) -> None:
        super().__init__(space)
        # materialized (rather than a lazy generator) so the whole
        # remaining walk can be previewed for batched prefetching.
        self._order = list(space.iter_indices())
        self._pos = 0
        self._pending: tuple[int, ...] | None = None
        self._best: tuple[tuple[int, ...], float] | None = None

    def ask(self) -> tuple[int, ...] | None:
        if self._pending is not None:
            return self._pending
        if self._pos >= len(self._order):
            return None
        self._pending = self._order[self._pos]
        self._pos += 1
        return self._pending

    def tell(self, indices: tuple[int, ...], value: float) -> None:
        if self._pending is None or indices != self._pending:
            raise ValueError(
                f"tell({indices}) does not match the outstanding ask "
                f"({self._pending})"
            )
        if self._best is None or value < self._best[1]:
            self._best = (indices, value)
        self._pending = None

    def probe_preview(self) -> tuple[tuple[int, ...], ...]:
        pending = () if self._pending is None else (self._pending,)
        return pending + tuple(self._order[self._pos:])

    @property
    def converged(self) -> bool:
        return self._pos >= len(self._order) and self._pending is None

    @property
    def best(self) -> tuple[tuple[int, ...], float] | None:
        return self._best
