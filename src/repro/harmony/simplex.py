"""Shared machinery for simplex-style searches (Nelder-Mead, PRO).

The strategies run as generators: they ``yield`` index vectors that
need a real measurement and receive the objective via ``send``.  A
point cache short-circuits re-evaluations of already-measured points
(the discrete lattice makes revisits common near convergence), so a
cached revisit costs zero region executions.

Replay contract (relied on by session checkpointing): a strategy's
entire state is a deterministic function of its constructor arguments
and the sequence of ``tell`` values it has received.  Replaying the
same tells against a freshly-constructed strategy reproduces the same
``ask`` sequence bit-for-bit - there is no hidden wall-clock or global
RNG state.  Subclasses must preserve this.
"""

from __future__ import annotations

from abc import abstractmethod
from collections.abc import Generator

import numpy as np

from repro.harmony.session import SearchStrategy
from repro.harmony.space import SearchSpace
from repro.telemetry.bus import bus
from repro.util.validation import require_positive


class BudgetExhausted(Exception):
    """Raised inside the algorithm generator when the evaluation budget
    is spent; terminates the search gracefully."""


EvalGen = Generator[tuple[int, ...], float, float]


class SimplexSearchBase(SearchStrategy):
    """Cache + generator plumbing for simplex searches on the lattice."""

    def __init__(
        self,
        space: SearchSpace,
        max_evals: int = 48,
        start: tuple[int, ...] | None = None,
    ) -> None:
        super().__init__(space)
        require_positive("max_evals", max_evals)
        self.max_evals = max_evals
        self._cache: dict[tuple[int, ...], float] = {}
        self._evals = 0
        self._best: tuple[tuple[int, ...], float] | None = None
        self._pending: tuple[int, ...] | None = None
        self._done = False
        self._started = False
        if start is not None:
            start = space.clamp(start)
        self._start = start
        self._gen = self._driver()

    # ------------------------------------------------------------------
    # SearchStrategy interface
    # ------------------------------------------------------------------
    def ask(self) -> tuple[int, ...] | None:
        if self._done:
            return None
        if self._pending is not None:
            return self._pending
        if not self._started:
            self._started = True
            try:
                self._pending = next(self._gen)
            except StopIteration:
                self._done = True
                return None
            return self._pending
        raise RuntimeError(
            "ask() called with no outstanding point and no pending tell; "
            "call tell() first"
        )

    def tell(self, indices: tuple[int, ...], value: float) -> None:
        if self._pending is None or indices != self._pending:
            raise ValueError(
                f"tell({indices}) does not match the outstanding ask "
                f"({self._pending})"
            )
        self._pending = None
        try:
            self._pending = self._gen.send(value)
        except StopIteration:
            self._done = True

    @property
    def converged(self) -> bool:
        return self._done

    @property
    def best(self) -> tuple[tuple[int, ...], float] | None:
        return self._best

    @property
    def evals_used(self) -> int:
        """Real (uncached) measurements consumed so far."""
        return self._evals

    def probe_preview(self) -> tuple[tuple[int, ...], ...]:
        """Before the first ask: the whole initial simplex (its vertex
        evaluation order is fixed), deduplicated after lattice
        rounding.  Mid-search the next move depends on unreported
        measurements, so only the outstanding point is previewed."""
        if self._done:
            return ()
        if self._started:
            return () if self._pending is None else (self._pending,)
        preview: list[tuple[int, ...]] = []
        seen: set[tuple[int, ...]] = set()
        for v in self._initial_simplex(self._initial_vertex_count()):
            key = self._round(v)
            if key not in seen:
                seen.add(key)
                preview.append(key)
        return tuple(preview)

    def _initial_vertex_count(self) -> int:
        """Vertices in the initial simplex; subclasses override."""
        return self.space.dimensions + 1

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    def _round(self, x: np.ndarray) -> tuple[int, ...]:
        return self.space.clamp(
            tuple(int(round(v)) for v in np.asarray(x, dtype=float))
        )

    def _evaluate(self, x: np.ndarray) -> EvalGen:
        """Measure the lattice point nearest ``x`` (cached)."""
        key = self._round(x)
        if key in self._cache:
            bus().count("simplex.cache_hits")
            return self._cache[key]
        if self._evals >= self.max_evals:
            raise BudgetExhausted
        self._evals += 1
        bus().count("simplex.evals")
        value = yield key
        self._cache[key] = value
        if self._best is None or value < self._best[1]:
            self._best = (key, value)
        return value

    def _initial_simplex(self, n_vertices: int) -> list[np.ndarray]:
        """Axis-aligned simplex around the start point with steps of
        roughly a third of each dimension's range."""
        cards = [p.cardinality for p in self.space.parameters]
        if self._start is not None:
            x0 = np.array(self._start, dtype=float)
        else:
            x0 = np.array([(c - 1) / 2.0 for c in cards])
        vertices = [x0]
        d = self.space.dimensions
        for i in range(n_vertices - 1):
            dim = i % d
            step = max(1.0, (cards[dim] - 1) / 3.0)
            v = x0.copy()
            # alternate directions, reflect if out of range
            direction = 1.0 if (i // d) % 2 == 0 else -1.0
            v[dim] += direction * step
            if v[dim] > cards[dim] - 1 or v[dim] < 0:
                v[dim] = x0[dim] - direction * step
            vertices.append(np.clip(v, 0, np.array(cards) - 1))
        return vertices

    def _simplex_collapsed(self, vertices: list[np.ndarray]) -> bool:
        keys = {self._round(v) for v in vertices}
        return len(keys) == 1

    def _driver(self) -> Generator[tuple[int, ...], float, None]:
        try:
            yield from self._algorithm()
        except BudgetExhausted:
            return

    @abstractmethod
    def _algorithm(self) -> Generator[tuple[int, ...], float, None]:
        """The search itself; use ``yield from self._evaluate(x)``."""
