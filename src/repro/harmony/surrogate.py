"""Surrogate-ranked search: measure only a model-selected subset.

The learned surrogate (:mod:`repro.surrogate`) ranks the whole Table I
space by predicted objective *before* any measurement; this strategy
then measures only the selected top-k candidates through the normal
ask/tell protocol.  Two deliberate properties:

* the subset is measured in **row-major space order**, not rank order.
  Measurement noise is drawn from a per-runtime call counter, so the
  *order* of probes is part of the measurement semantics: keeping the
  exhaustive walk's order over the selected subset means ranking picks
  *which* points get measured but never changes *how* any point is
  measured.  With k = |space| the strategy degenerates exactly to
  :class:`~repro.harmony.exhaustive.ExhaustiveSearch` - the
  differential test in ``tests/test_surrogate_differential.py`` holds
  the two byte-identical;
* ``probe_preview`` exposes the whole remaining plan (inherited from
  the exhaustive walk), so batched prefetch and the evaluation memo
  keep working unchanged.

The strategy itself is model-free: it walks a precomputed order.  The
ranking (and the Nelder-Mead fallback decision when the model's
held-out fit error is too large) happens upstream in
:mod:`repro.surrogate.plan`, which keeps :mod:`repro.harmony` free of
any model dependency.
"""

from __future__ import annotations

from repro.harmony.exhaustive import ExhaustiveSearch
from repro.harmony.session import SearchStrategy
from repro.harmony.space import SearchSpace


class SurrogateRankedSearch(ExhaustiveSearch):
    """Exhaustive walk over a precomputed subset of the space."""

    def __init__(
        self,
        space: SearchSpace,
        order: tuple[tuple[int, ...], ...],
    ) -> None:
        # bypass ExhaustiveSearch.__init__: it would materialize the
        # full space only for us to throw the walk away.
        SearchStrategy.__init__(self, space)
        if not order:
            raise ValueError(
                "surrogate search needs a non-empty probe order"
            )
        self._order = [tuple(indices) for indices in order]
        for indices in self._order:
            space.decode(indices)  # reject out-of-space orders early
        self._pos = 0
        self._pending: tuple[int, ...] | None = None
        self._best: tuple[tuple[int, ...], float] | None = None
