"""Tuning sessions: the ask/tell protocol between APEX and a strategy.

A session mirrors Active Harmony's client workflow: the client fetches
the next candidate configuration (``suggest``), runs with it, and
reports the measured objective (``report``).  After the strategy
converges, ``suggest`` returns the best point forever after - exactly
the behaviour ARCS needs ("the policy sets the number of threads,
schedule, and chunk size to the next value requested by the tuning
session, or, if tuning has converged, to the converged values").

Sessions are also the trust boundary between measurement and search:
one NaN, infinity or wildly-spiked timing fed into ``tell`` corrupts a
Nelder-Mead simplex for the rest of the run.  ``report`` therefore
validates every objective value.  Without a :class:`MeasurementGuard`
an invalid value raises :class:`InvalidMeasurementError`; with a guard
(how ARCS builds its sessions) invalid and outlier values are
*rejected* instead - the candidate stays outstanding so the next
execution re-measures it - and sustained divergence restarts the
simplex from scratch, then fails the session so the controller can
fall back to the default configuration.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass

from repro.harmony.space import SearchSpace
from repro.telemetry.bus import bus


class InvalidMeasurementError(ValueError):
    """A reported objective value was NaN, infinite or negative."""

    def __init__(self, value: float) -> None:
        self.value = value
        super().__init__(
            f"objective must be a finite non-negative number, got "
            f"{value!r}"
        )


class SessionReplayError(RuntimeError):
    """A session snapshot does not replay against a fresh strategy.

    Raised when restoring a checkpoint whose recorded tell sequence
    diverges from what the (deterministically re-seeded) strategy asks
    for, or whose recorded best disagrees with the replayed one - both
    mean the checkpoint was taken under different code or a different
    seed and resuming would silently produce different results.
    """


@dataclass(frozen=True)
class MeasurementGuard:
    """Acceptance policy for reported objective values.

    A value is rejected when it is non-finite/negative, or - once
    ``warmup`` values have been accepted - larger than
    ``outlier_factor`` times the largest value accepted so far (the
    legitimate spread across OpenMP configurations is well under that;
    an injected timer spike is orders of magnitude beyond it).  After
    ``max_rejects`` consecutive rejections the session restarts its
    strategy (the simplex has diverged from reality), and after
    ``max_restarts`` restarts it gives up and marks itself failed.
    """

    outlier_factor: float = 50.0
    warmup: int = 3
    max_rejects: int = 3
    max_restarts: int = 2

    def __post_init__(self) -> None:
        if self.outlier_factor <= 1.0:
            raise ValueError(
                f"outlier_factor must be > 1, got {self.outlier_factor}"
            )
        if self.warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {self.warmup}")
        if self.max_rejects < 1:
            raise ValueError(
                f"max_rejects must be >= 1, got {self.max_rejects}"
            )
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )

    def is_acceptable(
        self, value: float, accepted: list[float]
    ) -> bool:
        if not math.isfinite(value) or value < 0:
            return False
        if len(accepted) < self.warmup:
            return True
        ceiling = max(accepted)
        if ceiling <= 0:
            return True
        return value <= self.outlier_factor * ceiling


class SearchStrategy(ABC):
    """Strategy interface over index vectors."""

    def __init__(self, space: SearchSpace) -> None:
        self.space = space

    @abstractmethod
    def ask(self) -> tuple[int, ...] | None:
        """Next index vector to evaluate, or ``None`` once converged."""

    @abstractmethod
    def tell(self, indices: tuple[int, ...], value: float) -> None:
        """Report the objective for a previously asked vector."""

    def probe_preview(self) -> tuple[tuple[int, ...], ...]:
        """Index vectors the strategy expects to ask for soon.

        A *hint* for batched prefetching (see ``repro.openmp.batch``),
        never a promise: the strategy may ask for other points, fewer
        points, or the same points in a different order, and callers
        must not change behaviour based on the preview.  The base
        implementation previews nothing.
        """
        return ()

    @property
    @abstractmethod
    def converged(self) -> bool: ...

    @property
    @abstractmethod
    def best(self) -> tuple[tuple[int, ...], float] | None:
        """Best (indices, value) seen so far, or None before any tell."""


@dataclass
class SessionStats:
    suggestions: int = 0
    reports: int = 0
    converged_at_report: int | None = None
    rejected: int = 0
    restarts: int = 0


class TuningSession:
    """One per-region tuning session (ARCS keeps one per OpenMP region).

    ``guard`` enables measurement validation with re-measure semantics
    (see :class:`MeasurementGuard`); ``strategy_factory`` supplies a
    fresh strategy for divergence restarts (without one, a divergent
    session fails immediately instead of restarting).
    """

    def __init__(
        self,
        space: SearchSpace,
        strategy: SearchStrategy,
        guard: MeasurementGuard | None = None,
        strategy_factory: Callable[[], SearchStrategy] | None = None,
        name: str | None = None,
    ) -> None:
        self._check_space(space, strategy)
        self.space = space
        self.strategy = strategy
        self.guard = guard
        self.strategy_factory = strategy_factory
        #: label used in telemetry events (ARCS passes the region key).
        self.name = name
        self.stats = SessionStats()
        #: objectives accepted while searching (pre-convergence) - the
        #: raw material of the Section III-C search-overhead estimate.
        self.search_values: list[float] = []
        self._outstanding: tuple[int, ...] | None = None
        self._consecutive_rejects = 0
        self.failure_reason: str | None = None
        #: best accepted (indices, value) across the whole session -
        #: survives strategy restarts, which discard the strategy's own
        #: bookkeeping but not the measurements already trusted.
        self._best: tuple[tuple[int, ...], float] | None = None
        #: replay log for checkpointing: every accepted tell and every
        #: strategy restart, in order.  Strategies are pure functions of
        #: their seed and tell sequence, so this log (plus the session's
        #: own counters) is the whole session state.
        self._events: list[tuple] = []

    @staticmethod
    def _check_space(
        space: SearchSpace, strategy: SearchStrategy
    ) -> None:
        if strategy.space is not space:
            # identical content is fine, identity just the common case
            if strategy.space != space:
                raise ValueError(
                    "strategy was built for a different search space"
                )

    # ------------------------------------------------------------------
    @property
    def converged(self) -> bool:
        return self.strategy.converged

    @property
    def failed(self) -> bool:
        """True once the session has given up (measurements diverged
        beyond ``guard.max_restarts`` simplex restarts); the caller
        should fall back to a safe configuration."""
        return self.failure_reason is not None

    def _session_best(self) -> tuple[tuple[int, ...], float] | None:
        if self._best is not None:
            return self._best
        return self.strategy.best

    def best_point(self) -> dict[str, object] | None:
        best = self._session_best()
        if best is None:
            return None
        return self.space.decode(best[0])

    def best_value(self) -> float | None:
        best = self._session_best()
        return None if best is None else best[1]

    def probe_preview(self) -> tuple[tuple[int, ...], ...]:
        """Clamped index vectors the session is likely to suggest soon
        (the strategy's preview) - the batched evaluator's prefetch
        hint.  Empty once converged or failed."""
        if self.failed or self.strategy.converged:
            return ()
        return tuple(
            self.space.clamp(p) for p in self.strategy.probe_preview()
        )

    # ------------------------------------------------------------------
    def suggest(self) -> dict[str, object]:
        """Configuration to use for the next execution.

        While searching this is the strategy's next candidate; once
        converged it is the best known point.  A candidate stays
        outstanding until :meth:`report` is called.
        """
        self.stats.suggestions += 1
        if self._outstanding is not None:
            return self.space.decode(self._outstanding)
        if not self.strategy.converged and not self.failed:
            indices = self.strategy.ask()
            if indices is not None:
                self._outstanding = self.space.clamp(indices)
                return self.space.decode(self._outstanding)
        best = self._session_best()
        if best is None:
            if self.failed:
                raise RuntimeError(
                    f"tuning session failed without a trusted best "
                    f"point: {self.failure_reason}"
                )
            raise RuntimeError(
                "strategy converged without evaluating any point"
            )
        return self.space.decode(best[0])

    def report(self, value: float) -> bool:
        """Report the objective for the outstanding candidate; returns
        True if the value was accepted into the strategy.

        Reports made after convergence (the region keeps executing with
        the converged config) are recorded in the stats but do not feed
        the strategy.  A non-finite or negative value raises
        :class:`InvalidMeasurementError` unless a guard is installed,
        in which case it is rejected like any outlier: the candidate
        stays outstanding and is re-measured on the next execution.
        """
        valid = math.isfinite(value) and value >= 0
        if not valid and self.guard is None:
            raise InvalidMeasurementError(value)
        self.stats.reports += 1
        if self._outstanding is None:
            return valid
        if self.guard is not None and not self.guard.is_acceptable(
            value, self.search_values
        ):
            self._reject(value)
            return False
        self._consecutive_rejects = 0
        self.search_values.append(value)
        if self._best is None or value < self._best[1]:
            self._best = (self._outstanding, value)
        self._events.append(("tell", self._outstanding, value))
        bus().count("harmony.tells")
        self.strategy.tell(self._outstanding, value)
        self._outstanding = None
        if self.strategy.converged and (
            self.stats.converged_at_report is None
        ):
            self.stats.converged_at_report = self.stats.reports
        return True

    # ------------------------------------------------------------------
    def _reject(self, value: float) -> None:
        """Handle an untrusted measurement: re-measure the outstanding
        candidate, restarting the strategy (then failing the session)
        if rejections keep coming."""
        assert self.guard is not None
        self.stats.rejected += 1
        self._consecutive_rejects += 1
        bus().emit(
            "harmony.reject",
            region=self.name,
            value=value,
            consecutive=self._consecutive_rejects,
        )
        if self._consecutive_rejects <= self.guard.max_rejects:
            return  # keep the candidate outstanding -> re-measure
        if (
            self.strategy_factory is not None
            and self.stats.restarts < self.guard.max_restarts
        ):
            self.stats.restarts += 1
            self._consecutive_rejects = 0
            self._events.append(("restart",))
            strategy = self.strategy_factory()
            self._check_space(self.space, strategy)
            self.strategy = strategy
            self._outstanding = None
            bus().emit(
                "harmony.restart",
                region=self.name,
                restarts=self.stats.restarts,
            )
            return
        self.failure_reason = (
            f"measurements diverged: {self.stats.rejected} rejected "
            f"value(s) (last {value!r}) after {self.stats.restarts} "
            "simplex restart(s)"
        )
        self._outstanding = None
        bus().emit(
            "harmony.failed",
            region=self.name,
            reason=self.failure_reason,
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready session state: the replay log plus the counters
        replay cannot derive.

        The strategy itself is *not* serialized - it is a deterministic
        function of its seed and the tell sequence, so :meth:`restore`
        rebuilds it by replaying the log against a freshly-constructed
        strategy (floats round-trip exactly through JSON, keeping the
        rebuilt simplex bit-identical).
        """
        return {
            "events": [list(e[:1]) + [list(e[1]), e[2]]
                       if e[0] == "tell" else list(e)
                       for e in self._events],
            "outstanding": self._outstanding is not None,
            "best": (
                None
                if self._best is None
                else [list(self._best[0]), self._best[1]]
            ),
            "failure_reason": self.failure_reason,
            "consecutive_rejects": self._consecutive_rejects,
            "stats": {
                "suggestions": self.stats.suggestions,
                "reports": self.stats.reports,
                "converged_at_report": self.stats.converged_at_report,
                "rejected": self.stats.rejected,
                "restarts": self.stats.restarts,
            },
        }

    def restore(self, blob: dict) -> None:
        """Replay a snapshot into this freshly-constructed session.

        The session must be pristine (same space, same seed-derived
        strategy and factory as when the snapshot was taken).  Raises
        :class:`SessionReplayError` when the log does not replay
        cleanly - see that class for what a mismatch means.
        """
        for event in blob["events"]:
            kind = event[0]
            if kind == "restart":
                if self.strategy_factory is None:
                    raise SessionReplayError(
                        "snapshot contains a strategy restart but this "
                        "session has no strategy factory"
                    )
                self._events.append(("restart",))
                strategy = self.strategy_factory()
                self._check_space(self.space, strategy)
                self.strategy = strategy
                continue
            if kind != "tell":
                raise SessionReplayError(
                    f"unknown session event kind {kind!r}"
                )
            indices = tuple(int(i) for i in event[1])
            value = float(event[2])
            asked = self.strategy.ask()
            if asked is None or self.space.clamp(asked) != indices:
                raise SessionReplayError(
                    f"replay diverged: snapshot tells {indices} but the "
                    f"rebuilt strategy asks "
                    f"{None if asked is None else self.space.clamp(asked)}"
                )
            self.search_values.append(value)
            if self._best is None or value < self._best[1]:
                self._best = (indices, value)
            self._events.append(("tell", indices, value))
            self.strategy.tell(indices, value)
        recorded = blob["best"]
        derived = (
            None
            if self._best is None
            else [list(self._best[0]), self._best[1]]
        )
        if derived != recorded:
            raise SessionReplayError(
                f"replayed best {derived} does not match the snapshot's "
                f"recorded best {recorded}"
            )
        st = blob["stats"]
        self.stats = SessionStats(
            suggestions=int(st["suggestions"]),
            reports=int(st["reports"]),
            converged_at_report=(
                None
                if st["converged_at_report"] is None
                else int(st["converged_at_report"])
            ),
            rejected=int(st["rejected"]),
            restarts=int(st["restarts"]),
        )
        self._consecutive_rejects = int(blob["consecutive_rejects"])
        self.failure_reason = blob["failure_reason"]
        if blob["outstanding"]:
            asked = self.strategy.ask()
            if asked is None:
                raise SessionReplayError(
                    "snapshot has an outstanding candidate but the "
                    "rebuilt strategy is converged"
                )
            self._outstanding = self.space.clamp(asked)
