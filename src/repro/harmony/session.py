"""Tuning sessions: the ask/tell protocol between APEX and a strategy.

A session mirrors Active Harmony's client workflow: the client fetches
the next candidate configuration (``suggest``), runs with it, and
reports the measured objective (``report``).  After the strategy
converges, ``suggest`` returns the best point forever after - exactly
the behaviour ARCS needs ("the policy sets the number of threads,
schedule, and chunk size to the next value requested by the tuning
session, or, if tuning has converged, to the converged values").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.harmony.space import SearchSpace


class SearchStrategy(ABC):
    """Strategy interface over index vectors."""

    def __init__(self, space: SearchSpace) -> None:
        self.space = space

    @abstractmethod
    def ask(self) -> tuple[int, ...] | None:
        """Next index vector to evaluate, or ``None`` once converged."""

    @abstractmethod
    def tell(self, indices: tuple[int, ...], value: float) -> None:
        """Report the objective for a previously asked vector."""

    @property
    @abstractmethod
    def converged(self) -> bool: ...

    @property
    @abstractmethod
    def best(self) -> tuple[tuple[int, ...], float] | None:
        """Best (indices, value) seen so far, or None before any tell."""


@dataclass
class SessionStats:
    suggestions: int = 0
    reports: int = 0
    converged_at_report: int | None = None


class TuningSession:
    """One per-region tuning session (ARCS keeps one per OpenMP region)."""

    def __init__(self, space: SearchSpace, strategy: SearchStrategy) -> None:
        if strategy.space is not space:
            # identical content is fine, identity just the common case
            if strategy.space != space:
                raise ValueError(
                    "strategy was built for a different search space"
                )
        self.space = space
        self.strategy = strategy
        self.stats = SessionStats()
        #: objectives reported while searching (pre-convergence) - the
        #: raw material of the Section III-C search-overhead estimate.
        self.search_values: list[float] = []
        self._outstanding: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    @property
    def converged(self) -> bool:
        return self.strategy.converged

    def best_point(self) -> dict[str, object] | None:
        best = self.strategy.best
        if best is None:
            return None
        return self.space.decode(best[0])

    def best_value(self) -> float | None:
        best = self.strategy.best
        return None if best is None else best[1]

    # ------------------------------------------------------------------
    def suggest(self) -> dict[str, object]:
        """Configuration to use for the next execution.

        While searching this is the strategy's next candidate; once
        converged it is the best known point.  A candidate stays
        outstanding until :meth:`report` is called.
        """
        self.stats.suggestions += 1
        if self._outstanding is not None:
            return self.space.decode(self._outstanding)
        if not self.strategy.converged:
            indices = self.strategy.ask()
            if indices is not None:
                self._outstanding = self.space.clamp(indices)
                return self.space.decode(self._outstanding)
        best = self.strategy.best
        if best is None:
            raise RuntimeError(
                "strategy converged without evaluating any point"
            )
        return self.space.decode(best[0])

    def report(self, value: float) -> None:
        """Report the objective for the outstanding candidate.

        Reports made after convergence (the region keeps executing with
        the converged config) are recorded in the stats but do not feed
        the strategy.
        """
        if value != value or value < 0:  # NaN or negative
            raise ValueError(
                f"objective must be a non-negative number, got {value!r}"
            )
        self.stats.reports += 1
        if self._outstanding is None:
            return
        self.search_values.append(value)
        self.strategy.tell(self._outstanding, value)
        self._outstanding = None
        if self.strategy.converged and (
            self.stats.converged_at_report is None
        ):
            self.stats.converged_at_report = self.stats.reports
