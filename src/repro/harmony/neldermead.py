"""Nelder-Mead simplex search - the ARCS-Online strategy.

"The ARCS-Online method uses the Nelder-Mead search algorithm to
search for and use an optimal configuration in the same execution."
(Section III-B)

The classic downhill simplex (reflection / expansion / contraction /
shrink) runs on a continuous relaxation of the discrete index lattice;
candidates are rounded to the nearest lattice point, with a point
cache so lattice revisits are free.  Termination: the simplex collapses
to one lattice point, stalls, or the evaluation budget runs out.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.harmony.simplex import SimplexSearchBase

_ALPHA = 1.0   # reflection
_GAMMA = 2.0   # expansion
_RHO = 0.5     # contraction
_SIGMA = 0.5   # shrink

#: give up after this many consecutive iterations without improvement.
_STALL_LIMIT = 6


class NelderMeadSearch(SimplexSearchBase):
    """Discrete-lattice Nelder-Mead."""

    def _algorithm(self) -> Generator[tuple[int, ...], float, None]:
        vertices = self._initial_simplex(self._initial_vertex_count())
        values = []
        for v in vertices:
            values.append((yield from self._evaluate(v)))

        stall = 0
        while True:
            order = np.argsort(values, kind="stable")
            vertices = [vertices[i] for i in order]
            values = [values[i] for i in order]
            if self._simplex_collapsed(vertices) or stall >= _STALL_LIMIT:
                return

            best_before = values[0]
            centroid = np.mean(vertices[:-1], axis=0)
            worst = vertices[-1]

            reflected = centroid + _ALPHA * (centroid - worst)
            f_reflected = yield from self._evaluate(reflected)

            if f_reflected < values[0]:
                expanded = centroid + _GAMMA * (reflected - centroid)
                f_expanded = yield from self._evaluate(expanded)
                if f_expanded < f_reflected:
                    vertices[-1], values[-1] = expanded, f_expanded
                else:
                    vertices[-1], values[-1] = reflected, f_reflected
            elif f_reflected < values[-2]:
                vertices[-1], values[-1] = reflected, f_reflected
            else:
                contracted = centroid + _RHO * (worst - centroid)
                f_contracted = yield from self._evaluate(contracted)
                if f_contracted < values[-1]:
                    vertices[-1], values[-1] = contracted, f_contracted
                else:
                    # shrink everything toward the best vertex
                    new_vertices = [vertices[0]]
                    new_values = [values[0]]
                    for v in vertices[1:]:
                        shrunk = vertices[0] + _SIGMA * (v - vertices[0])
                        f_shrunk = yield from self._evaluate(shrunk)
                        new_vertices.append(shrunk)
                        new_values.append(f_shrunk)
                    vertices, values = new_vertices, new_values

            if min(values) < best_before - 1e-15:
                stall = 0
            else:
                stall += 1
