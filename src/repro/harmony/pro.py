"""Parallel Rank Order (PRO) search.

Active Harmony's PRO algorithm (Tiwari et al.) maintains a simplex and,
each round, reflects *every* non-best vertex through the best one,
accepting improvements; if no reflection improves, the simplex
contracts toward the best vertex.  The paper lists PRO among Active
Harmony's methods (it used exhaustive and Nelder-Mead in the
experiments); PRO is provided for the search-strategy ablation.

In a single-application setting the "parallel" candidate evaluations
are serialized through the ask/tell protocol.
"""

from __future__ import annotations

from collections.abc import Generator

import numpy as np

from repro.harmony.simplex import SimplexSearchBase

#: simplex size multiplier: PRO favours larger simplexes than NM.
_VERTICES_PER_DIM = 3

_MAX_ROUNDS = 64

#: stop once the simplex diameter (continuous coordinates) shrinks
#: below one lattice step in every dimension.
_DIAMETER_TOL = 0.75


class ParallelRankOrderSearch(SimplexSearchBase):
    """Rank-order simplex search with reflect-all rounds."""

    def _initial_vertex_count(self) -> int:
        d = self.space.dimensions
        return max(d + 1, _VERTICES_PER_DIM * d)

    def _algorithm(self) -> Generator[tuple[int, ...], float, None]:
        vertices = self._initial_simplex(self._initial_vertex_count())
        values = []
        for v in vertices:
            values.append((yield from self._evaluate(v)))

        for _ in range(_MAX_ROUNDS):
            order = np.argsort(values, kind="stable")
            vertices = [vertices[i] for i in order]
            values = [values[i] for i in order]
            diameter = max(
                float(np.abs(v - vertices[0]).max())
                for v in vertices[1:]
            )
            if diameter < _DIAMETER_TOL:
                return
            best_v = vertices[0]

            improved = False
            for i in range(1, len(vertices)):
                reflected = 2.0 * best_v - vertices[i]
                f_reflected = yield from self._evaluate(reflected)
                if f_reflected < values[i]:
                    # accept, and try to push further (expansion)
                    expanded = 2.0 * reflected - best_v
                    f_expanded = yield from self._evaluate(expanded)
                    if f_expanded < f_reflected:
                        vertices[i], values[i] = expanded, f_expanded
                    else:
                        vertices[i], values[i] = reflected, f_reflected
                    improved = True

            if not improved:
                for i in range(1, len(vertices)):
                    contracted = 0.5 * (vertices[i] + best_v)
                    f_contracted = yield from self._evaluate(contracted)
                    vertices[i], values[i] = contracted, f_contracted
