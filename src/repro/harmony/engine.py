"""Strategy factory - the front door APEX/ARCS uses to create searches."""

from __future__ import annotations

from repro.harmony.exhaustive import ExhaustiveSearch
from repro.harmony.neldermead import NelderMeadSearch
from repro.harmony.pro import ParallelRankOrderSearch
from repro.harmony.random_search import RandomSearch
from repro.harmony.session import SearchStrategy
from repro.harmony.space import SearchSpace
from repro.harmony.surrogate import SurrogateRankedSearch

#: the self-contained strategies (buildable from a space alone).
#: ``"surrogate"`` is also accepted by :func:`make_strategy` but needs
#: a precomputed probe ``order`` from :mod:`repro.surrogate.plan`.
STRATEGIES = ("exhaustive", "nelder-mead", "pro", "random")


def make_strategy(
    name: str,
    space: SearchSpace,
    max_evals: int = 48,
    seed: int = 0,
    start: tuple[int, ...] | None = None,
    order: tuple[tuple[int, ...], ...] | None = None,
) -> SearchStrategy:
    """Build a search strategy by name.

    ``start`` seeds simplex strategies with an initial point (ARCS
    starts near the default configuration); exhaustive and random
    ignore it.  ``order`` is the model-ranked probe subset required by
    (and only by) the ``"surrogate"`` strategy.
    """
    key = name.lower()
    if key == "exhaustive":
        return ExhaustiveSearch(space)
    if key in ("nelder-mead", "neldermead", "nm"):
        return NelderMeadSearch(space, max_evals=max_evals, start=start)
    if key == "pro":
        return ParallelRankOrderSearch(
            space, max_evals=max_evals, start=start
        )
    if key == "random":
        return RandomSearch(space, max_evals=max_evals, seed=seed)
    if key == "surrogate":
        if order is None:
            raise ValueError(
                "the surrogate strategy needs a precomputed probe "
                "order (see repro.surrogate.plan)"
            )
        return SurrogateRankedSearch(space, order)
    raise ValueError(
        f"unknown strategy {name!r}; known: "
        f"{STRATEGIES + ('surrogate',)}"
    )
