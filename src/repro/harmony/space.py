"""Search-space abstraction.

Active Harmony tunes over *discrete ordered* parameters.  A
:class:`Parameter` is a named, ordered tuple of admissible values
(ints, strings, or ``None`` sentinels like Table I's "default"); a
:class:`SearchSpace` is their Cartesian product.  Strategies operate on
*index vectors* (one integer per parameter); the session decodes them
into value mappings.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from math import prod


@dataclass(frozen=True)
class Parameter:
    """One tunable dimension with an ordered set of discrete values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter name must be non-empty")
        if len(self.values) == 0:
            raise ValueError(f"parameter {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(
                f"parameter {self.name!r} has duplicate values"
            )

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def value_at(self, index: int) -> object:
        if not 0 <= index < len(self.values):
            raise IndexError(
                f"index {index} out of range for {self.name!r} "
                f"({len(self.values)} values)"
            )
        return self.values[index]

    def index_of(self, value: object) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"{value!r} is not a value of parameter {self.name!r}"
            ) from None


@dataclass(frozen=True)
class SearchSpace:
    """Cartesian product of parameters."""

    parameters: tuple[Parameter, ...]

    def __post_init__(self) -> None:
        if len(self.parameters) == 0:
            raise ValueError("search space needs at least one parameter")
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names: {names}")

    @property
    def size(self) -> int:
        return prod(p.cardinality for p in self.parameters)

    @property
    def dimensions(self) -> int:
        return len(self.parameters)

    def clamp(self, indices: tuple[int, ...]) -> tuple[int, ...]:
        """Clamp an index vector into bounds (strategies may propose
        out-of-range moves)."""
        self._check_arity(indices)
        return tuple(
            min(max(i, 0), p.cardinality - 1)
            for i, p in zip(indices, self.parameters)
        )

    def decode(self, indices: tuple[int, ...]) -> dict[str, object]:
        """Index vector -> {parameter name: value}."""
        self._check_arity(indices)
        return {
            p.name: p.value_at(i)
            for p, i in zip(self.parameters, indices)
        }

    def encode(self, point: dict[str, object]) -> tuple[int, ...]:
        """{parameter name: value} -> index vector."""
        missing = [p.name for p in self.parameters if p.name not in point]
        if missing:
            raise ValueError(f"point is missing parameters {missing}")
        return tuple(p.index_of(point[p.name]) for p in self.parameters)

    def iter_indices(self) -> Iterator[tuple[int, ...]]:
        """Row-major enumeration of the full space."""

        def rec(prefix: tuple[int, ...], dim: int) -> Iterator[tuple[int, ...]]:
            if dim == len(self.parameters):
                yield prefix
                return
            for i in range(self.parameters[dim].cardinality):
                yield from rec(prefix + (i,), dim + 1)

        yield from rec((), 0)

    def _check_arity(self, indices: tuple[int, ...]) -> None:
        if len(indices) != len(self.parameters):
            raise ValueError(
                f"index vector has {len(indices)} entries, space has "
                f"{len(self.parameters)} parameters"
            )
