"""Analytic cache-hierarchy model.

Rather than trace-driven simulation (prohibitive in Python for the
paper's workloads), each parallel region carries a *memory profile*
(dominant stride, bytes touched per iteration, re-referenced
neighbourhood, total footprint, reuse fraction) and the model predicts
L1/L2/L3 miss rates from the mechanisms the paper invokes:

* **L1 - spatial locality.**  A unit-stride stream misses once per
  line (``stride/line``); strides beyond a line miss every access.
  Chunks smaller than a few lines split lines between threads (false
  sharing).  SMT siblings halve the private L1.
* **L2 - per-thread live data.**  A thread's live set is its current
  chunk span plus its share of the re-referenced neighbourhood; reuse
  only pays off for the part that fits (SMT siblings split L2 too).
* **L3 - streaming fronts in the shared cache.**  Loop iterations
  re-reference a *neighbourhood* (stencil planes, element/nodal
  fields).  Threads working on *nearby* iterations share that
  neighbourhood constructively; threads spread across the iteration
  space (the default config's block-static partition) each drag their
  own neighbourhood through L3, multiplying the live set.  The live
  set is ``fronts x neighbourhood + team chunk span``; reuse hits only
  for the portion that fits in L3.  This is the paper's Section V-A
  mechanism: the tuned configs "enabled different cores to maximize
  their use of the shared L3 cache", and explains both the small
  optimal thread counts (fewer fronts) and the schedule/chunk choices
  (clustered fronts).

The model returns hierarchical miss rates plus the per-access stall
time, which the execution engine turns into the frequency-invariant
memory component of region time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.spec import CacheSpec
from repro.util.validation import require_nonnegative, require_positive


@dataclass(frozen=True)
class MemoryProfile:
    """Memory behaviour descriptor of one parallel region.

    ``bytes_per_iter``: data touched by one iteration of the parallel
    loop.  ``stride_bytes``: dominant access stride (8 = unit-stride
    doubles; large values model e.g. BT's ``rhsz`` second-order stencil
    with K +/- 2 plane strides).  ``footprint_bytes``: total region
    working set.  ``reuse_fraction``: fraction of accesses that
    re-touch neighbourhood data (hits if the neighbourhood is cache
    -resident).  ``reuse_window_bytes``: the re-referenced
    neighbourhood around the current iteration (e.g. five planes of
    five variables for a K +/- 2 stencil); defaults to four iterations'
    worth of data.
    """

    bytes_per_iter: float
    stride_bytes: float = 8.0
    footprint_bytes: float = 0.0
    reuse_fraction: float = 0.3
    reuse_window_bytes: float | None = None

    def __post_init__(self) -> None:
        require_positive("bytes_per_iter", self.bytes_per_iter)
        require_positive("stride_bytes", self.stride_bytes)
        require_nonnegative("footprint_bytes", self.footprint_bytes)
        if not 0.0 <= self.reuse_fraction < 1.0:
            raise ValueError(
                f"reuse_fraction must be in [0, 1), got {self.reuse_fraction}"
            )
        if self.reuse_window_bytes is not None:
            require_positive("reuse_window_bytes", self.reuse_window_bytes)

    @property
    def neighbourhood_bytes(self) -> float:
        if self.reuse_window_bytes is not None:
            return self.reuse_window_bytes
        return 4.0 * self.bytes_per_iter


@dataclass(frozen=True)
class CacheTraffic:
    """Predicted cache behaviour of one region execution.

    Miss rates are *global*: ``l2_miss_rate`` is (accesses reaching
    L3)/accesses, ``l3_miss_rate`` is (accesses reaching
    DRAM)/accesses, matching how the paper's figures report miss rates.
    """

    accesses_per_iter: float
    l1_miss_rate: float
    l2_miss_rate: float
    l3_miss_rate: float
    stall_ns_per_access: float
    dram_bytes_per_iter: float


def _fit(live_bytes: float, capacity: float) -> float:
    """Fraction of reuse that still hits when ``live_bytes`` compete
    for ``capacity``.  1 while it fits, then a sharper-than-linear
    falloff (eviction before reuse compounds under LRU)."""
    if live_bytes <= capacity:
        return 1.0
    return (capacity / live_bytes) ** 1.5


class CacheModel:
    """Predicts miss rates for (memory profile, team shape, chunking)."""

    #: residual miss rates of a perfectly resident working set
    #: (cold/coherence misses never vanish on real hardware).
    L1_FLOOR = 0.004
    L2_FLOOR = 0.02
    L3_FLOOR = 0.01

    def __init__(
        self,
        spec: CacheSpec,
        smt_conflict_l1: float = 0.35,
        smt_conflict_l1_cap: float = 1.6,
        smt_conflict_l2: float = 0.25,
        smt_conflict_l2_cap: float = 1.5,
    ) -> None:
        self.spec = spec
        self.smt_conflict_l1 = smt_conflict_l1
        self.smt_conflict_l1_cap = smt_conflict_l1_cap
        self.smt_conflict_l2 = smt_conflict_l2
        self.smt_conflict_l2_cap = smt_conflict_l2_cap

    def predict(
        self,
        profile: MemoryProfile,
        n_iterations: int,
        threads_on_socket: int,
        team_threads: int,
        avg_chunk_iters: float,
        uncore_scale: float = 1.0,
        smt_share: float = 1.0,
    ) -> CacheTraffic:
        """Predict cache behaviour for one socket's share of a region.

        ``avg_chunk_iters`` is the mean scheduling quantum in
        iterations; ``team_threads`` the whole team size (both sockets)
        - together with the trip count they determine how *spread out*
        the concurrent streaming fronts are.  ``smt_share`` is the
        average team threads per active core on this socket (SMT
        siblings split the private L1/L2).
        """
        require_positive("n_iterations", n_iterations)
        require_positive("threads_on_socket", threads_on_socket)
        require_positive("team_threads", team_threads)
        require_positive("avg_chunk_iters", avg_chunk_iters)
        require_positive("smt_share", smt_share)
        spec = self.spec
        l1_capacity = spec.l1_bytes / smt_share
        l2_capacity = spec.l2_bytes / smt_share

        accesses_per_iter = max(1.0, profile.bytes_per_iter / 8.0)
        neighbourhood = profile.neighbourhood_bytes
        chunk_bytes = avg_chunk_iters * profile.bytes_per_iter

        # -- L1: spatial locality ---------------------------------------
        stride_miss = min(1.0, profile.stride_bytes / spec.line_bytes)
        locality_knee = 4.0 * spec.line_bytes
        if chunk_bytes < locality_knee:
            # line splitting / false sharing between threads
            split_penalty = locality_knee / max(chunk_bytes, 1.0)
            stride_miss = min(1.0, stride_miss * split_penalty)
        l1_live = chunk_bytes + neighbourhood / max(1, team_threads)
        l1_miss = self.L1_FLOOR + (1.0 - self.L1_FLOOR) * stride_miss * (
            1.0 - profile.reuse_fraction * _fit(l1_live, l1_capacity)
        )
        # SMT co-residency adds conflict misses on top of the capacity
        # split - hyperthreaded teams show visibly worse L1/L2 behaviour
        # (part of the default config's penalty in Figures 3/6/10).
        l1_miss = min(
            1.0,
            l1_miss
            * min(
                self.smt_conflict_l1_cap,
                1.0 + self.smt_conflict_l1 * (smt_share - 1.0),
            ),
        )

        # -- L2: per-thread live set -------------------------------------
        l2_live = chunk_bytes + neighbourhood / max(1, threads_on_socket)
        l2_local = self.L2_FLOOR + (1.0 - self.L2_FLOOR) * (
            1.0 - profile.reuse_fraction * _fit(l2_live, l2_capacity)
        )
        l2_local = min(
            1.0,
            l2_local
            * min(
                self.smt_conflict_l2_cap,
                1.0 + self.smt_conflict_l2 * (smt_share - 1.0),
            ),
        )

        # -- L3: streaming fronts in the shared cache --------------------
        # spread in [0,1]: how far apart the per-thread fronts are.
        # Default static blocks (avg chunk = N/threads) give spread 1 -
        # every thread drags its own neighbourhood; small chunks cluster
        # all threads into one front.
        spread = min(1.0, team_threads * avg_chunk_iters / n_iterations)
        fronts = 1.0 + (threads_on_socket - 1) * spread
        # long strides waste the unused part of each fetched line,
        # inflating the resident set
        line_util = min(1.0, spec.line_bytes / profile.stride_bytes)
        # each thread's streaming contribution is bounded by the reuse
        # horizon: data older than the neighbourhood is dead anyway.
        l3_live = (
            fronts * neighbourhood
            + threads_on_socket * min(chunk_bytes, neighbourhood)
        ) / max(line_util, 1e-6)
        l3_local = self.L3_FLOOR + (1.0 - self.L3_FLOOR) * (
            1.0 - profile.reuse_fraction * _fit(l3_live, spec.l3_bytes)
        )

        l1_miss = min(1.0, max(0.0, l1_miss))
        l2_local = min(1.0, max(0.0, l2_local))
        l3_local = min(1.0, max(0.0, l3_local))

        l2_miss = l1_miss * l2_local          # reach L3
        l3_miss = l2_miss * l3_local          # reach DRAM

        stall_ns = (
            l1_miss * spec.l2_latency_ns
            + l2_miss * spec.l3_latency_ns * uncore_scale
            + l3_miss * spec.dram_latency_ns
        ) / spec.mlp

        dram_bytes = l3_miss * accesses_per_iter * spec.line_bytes

        return CacheTraffic(
            accesses_per_iter=accesses_per_iter,
            l1_miss_rate=l1_miss,
            l2_miss_rate=l2_miss,
            l3_miss_rate=l3_miss,
            stall_ns_per_access=stall_ns,
            dram_bytes_per_iter=dram_bytes,
        )
