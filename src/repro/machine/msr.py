"""A libmsr-like model-specific-register file.

The paper accesses RAPL through libmsr [13].  We model the MSR surface
that libmsr's RAPL wrappers touch: the power-unit register, the package
power-limit register and the 32-bit wrapping package energy-status
counter.  :mod:`repro.machine.rapl` layers the libmsr-style API on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.bus import bus

# Architectural MSR addresses (Intel SDM vol. 4).
MSR_RAPL_POWER_UNIT = 0x606
MSR_PKG_POWER_LIMIT = 0x610
MSR_PKG_ENERGY_STATUS = 0x611
MSR_DRAM_ENERGY_STATUS = 0x619

#: Default RAPL units (Sandy Bridge): power unit 1/8 W, energy unit
#: 2^-16 J (~15.3 uJ), time unit 976 us.  Encoded as the SDM does:
#: bits 3:0 power, 12:8 energy, 19:16 time (each value is 1/2^bits).
DEFAULT_POWER_UNIT_RAW = (0xA << 16) | (0x10 << 8) | 0x3

_COUNTER_BITS = 32
_COUNTER_MASK = (1 << _COUNTER_BITS) - 1


@dataclass
class MsrFile:
    """Per-socket register storage with the semantics MSRs actually have
    (fixed width, wrapping counters)."""

    sockets: int
    _regs: dict[tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for socket in range(self.sockets):
            self._regs[(socket, MSR_RAPL_POWER_UNIT)] = (
                DEFAULT_POWER_UNIT_RAW
            )
            self._regs[(socket, MSR_PKG_POWER_LIMIT)] = 0
            self._regs[(socket, MSR_PKG_ENERGY_STATUS)] = 0
            self._regs[(socket, MSR_DRAM_ENERGY_STATUS)] = 0

    def _check_socket(self, socket: int) -> None:
        if not 0 <= socket < self.sockets:
            raise ValueError(
                f"socket must be in [0, {self.sockets}), got {socket}"
            )

    def read(self, socket: int, address: int) -> int:
        """Read a 64-bit MSR; unknown addresses fault like rdmsr would."""
        self._check_socket(socket)
        bus().count("msr.reads")
        try:
            return self._regs[(socket, address)]
        except KeyError:
            raise KeyError(
                f"rdmsr fault: MSR {address:#x} not implemented"
            ) from None

    def write(self, socket: int, address: int, value: int) -> None:
        """Write a 64-bit MSR. Energy-status counters are read-only."""
        self._check_socket(socket)
        bus().count("msr.writes")
        if address in (MSR_PKG_ENERGY_STATUS, MSR_DRAM_ENERGY_STATUS):
            raise PermissionError("energy-status MSRs are read-only")
        if (socket, address) not in self._regs:
            raise KeyError(f"wrmsr fault: MSR {address:#x} not implemented")
        self._regs[(socket, address)] = value & ((1 << 64) - 1)

    # -- energy counter helpers (used by the RAPL layer) ----------------
    def energy_units_per_joule(self, socket: int) -> float:
        raw = self.read(socket, MSR_RAPL_POWER_UNIT)
        esu_bits = (raw >> 8) & 0x1F
        return float(1 << esu_bits)

    def snapshot(self) -> dict:
        """JSON-ready register contents (tuple keys flattened to
        ``[socket, address, value]`` triples)."""
        return {
            "regs": [
                [socket, address, value]
                for (socket, address), value in sorted(self._regs.items())
            ]
        }

    def restore(self, blob: dict) -> None:
        self._regs = {
            (int(socket), int(address)): int(value)
            for socket, address, value in blob["regs"]
        }

    def bump_counter(
        self, socket: int, address: int, units: int
    ) -> None:
        """Advance a wrapping 32-bit counter MSR by ``units``."""
        if units < 0:
            raise ValueError(f"units must be >= 0, got {units}")
        self._check_socket(socket)
        key = (socket, address)
        if key not in self._regs:
            raise KeyError(f"MSR {address:#x} not implemented")
        self._regs[key] = (self._regs[key] + units) & _COUNTER_MASK

    def bump_energy_counter(self, socket: int, units: int) -> None:
        """Advance the wrapping package energy counter by ``units``."""
        self.bump_counter(socket, MSR_PKG_ENERGY_STATUS, units)

    def read_energy_counter(self, socket: int) -> int:
        return self.read(socket, MSR_PKG_ENERGY_STATUS)
