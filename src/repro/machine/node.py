"""The simulated node: one object tying the hardware models together.

A :class:`SimulatedNode` owns the machine spec, topology, frequency /
power / cache / memory models, the MSR file and the RAPL interface,
plus a simulation clock.  The OpenMP execution engine asks the node for
the cap-constrained frequency, charges wall time and deposits energy;
experiment harnesses set power caps and read the energy counters the
same way the paper's scripts drove libmsr.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.inject import FaultInjector
from repro.machine.cache import CacheModel
from repro.machine.frequency import FrequencyModel
from repro.machine.memory import MemoryModel
from repro.machine.msr import MsrFile
from repro.machine.power import PowerModel
from repro.machine.rapl import Rapl
from repro.machine.spec import MachineSpec
from repro.machine.topology import Placement, Topology
from repro.telemetry.bus import bus
from repro.util.validation import require_nonnegative


@dataclass(frozen=True)
class NodePowerView:
    """Snapshot of the node's power state at a point in time."""

    now_s: float
    caps_w: tuple[float | None, ...]
    frequencies_ghz: tuple[float, ...]


class SimulatedNode:
    """A power-cappable multicore node with a simulation clock."""

    def __init__(
        self, spec: MachineSpec, faults: FaultInjector | None = None
    ) -> None:
        self.spec = spec
        #: fault injector consulted by the RAPL layer and (via the
        #: OMPT bridge) the APEX measurement path; ``None`` = clean.
        self.faults = faults
        self.topology = Topology(spec)
        self.frequency = FrequencyModel(spec)
        self.power = PowerModel(spec)
        self.cache = CacheModel(
            spec.cache,
            smt_conflict_l1=spec.smt_conflict_l1,
            smt_conflict_l1_cap=spec.smt_conflict_l1_cap,
            smt_conflict_l2=spec.smt_conflict_l2,
            smt_conflict_l2_cap=spec.smt_conflict_l2_cap,
        )
        self.memory = MemoryModel(spec)
        self.msr = MsrFile(spec.sockets)
        self.rapl = Rapl(spec, self.msr, faults=faults)
        self._now_s = 0.0
        #: userspace-governor frequency ceiling (None = hardware
        #: managed).  The paper's future work: "Currently, we are not
        #: looking into the DVFS strategy.  We plan to include this
        #: policy in the future." - this is that extension's knob.
        self.frequency_limit_ghz: float | None = None
        # the newest node's simulated clock becomes the telemetry
        # timestamp source (the bus keeps earlier nodes' timelines
        # monotone via its rebind offset).
        bus().bind_clock(lambda: self._now_s)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now_s(self) -> float:
        return self._now_s

    def advance(self, seconds: float) -> float:
        """Advance simulated wall time and return the new clock."""
        require_nonnegative("seconds", seconds)
        self._now_s += seconds
        return self._now_s

    # ------------------------------------------------------------------
    # power control (the harness-facing libmsr surface)
    # ------------------------------------------------------------------
    def set_power_cap(self, cap_w: float | None) -> None:
        """Cap every package at ``cap_w`` (None = uncapped/TDP)."""
        self.rapl.set_package_cap(cap_w, now_s=self._now_s)

    def settle_after_cap(self) -> None:
        """Sleep the simulated clock past the RAPL settle window - the
        paper's 'warm up period after enforcing a power cap'."""
        self.advance(self.rapl.cap_settle_s)

    def effective_cap_w(self, socket: int = 0) -> float | None:
        return self.rapl.effective_cap_w(socket, self._now_s)

    def set_frequency_limit(self, freq_ghz: float | None) -> None:
        """Set a userspace DVFS ceiling (None restores hw-managed)."""
        if freq_ghz is not None and not (
            self.spec.min_freq_ghz
            <= freq_ghz
            <= self.spec.turbo_freq_ghz
        ):
            raise ValueError(
                f"frequency limit must be within "
                f"[{self.spec.min_freq_ghz}, {self.spec.turbo_freq_ghz}] "
                f"GHz, got {freq_ghz}"
            )
        self.frequency_limit_ghz = freq_ghz

    def frequency_for_team(self, placement: Placement) -> tuple[float, ...]:
        """Per-socket sustainable frequency for an active team.

        All team threads count as active cores on their socket; RAPL
        clamps each package independently (both packages get the same
        cap in the paper's setup).  A userspace DVFS ceiling, if set,
        caps the result further.
        """
        freqs = []
        active = placement.active_cores_per_socket
        threads = placement.threads_per_socket
        for socket in range(self.spec.sockets):
            n_active = max(1, active[socket])
            cap = self.rapl.effective_cap_w(socket, self._now_s)
            smt_mult = self.power.smt_power_multiplier(
                max(1.0, threads[socket] / n_active)
            )
            f = self.frequency.frequency_for_cap(
                cap, n_active=n_active, smt_mult=smt_mult
            )
            if self.frequency_limit_ghz is not None:
                f = min(f, self.frequency_limit_ghz)
            freqs.append(f)
        return tuple(freqs)

    # ------------------------------------------------------------------
    # energy accounting (engine-facing)
    # ------------------------------------------------------------------
    def deposit_energy(self, socket: int, joules: float) -> None:
        self.rapl.deposit_energy(socket, joules, self._now_s)

    def deposit_dram_energy(self, socket: int, joules: float) -> None:
        self.rapl.deposit_dram_energy(socket, joules, self._now_s)

    def read_package_energy_j(self) -> float:
        """Node-total package energy (sum over sockets), flushing
        pending deposits first (a synchronous read)."""
        self.rapl.force_update(self._now_s)
        return sum(
            self.rapl.read_package_energy_j(s)
            for s in range(self.spec.sockets)
        )

    def energy_delta_j(self, before_j: float, after_j: float) -> float:
        """Energy consumed between two counter reads, corrected for a
        32-bit wraparound the unwrap bookkeeping missed.

        Mirrors the classic RAPL delta fix: a reading smaller than its
        predecessor means the counter rolled over between the reads, so
        whole counter spans are added back until the delta is
        non-negative.
        """
        delta = after_j - before_j
        span = self.rapl.counter_span_j(0)
        corrected = delta < 0 and span > 0
        while delta < 0 and span > 0:
            delta += span
        if corrected:
            bus().emit(
                "node.wrap_corrected",
                raw_delta_j=after_j - before_j,
                corrected_delta_j=delta,
            )
        return delta

    def read_dram_energy_j(self) -> float:
        """Node-total DRAM-domain energy (the future-work memory-power
        accounting)."""
        self.rapl.force_update(self._now_s)
        return sum(
            self.rapl.read_dram_energy_j(s)
            for s in range(self.spec.sockets)
        )

    def power_view(self, n_threads: int) -> NodePowerView:
        placement = self.topology.place(n_threads)
        return NodePowerView(
            now_s=self._now_s,
            caps_w=tuple(
                self.rapl.effective_cap_w(s, self._now_s)
                for s in range(self.spec.sockets)
            ),
            frequencies_ghz=self.frequency_for_team(placement),
        )

    def snapshot(self) -> dict:
        """JSON-ready mutable node state (clock, DVFS ceiling, MSRs,
        RAPL accounts).  The models built from the spec are pure and
        need no state; the fault injector snapshots separately because
        the harness owns it."""
        return {
            "now_s": self._now_s,
            "frequency_limit_ghz": self.frequency_limit_ghz,
            "msr": self.msr.snapshot(),
            "rapl": self.rapl.snapshot(),
        }

    def restore(self, blob: dict) -> None:
        self._now_s = float(blob["now_s"])
        limit = blob["frequency_limit_ghz"]
        self.frequency_limit_ghz = None if limit is None else float(limit)
        self.msr.restore(blob["msr"])
        self.rapl.restore(blob["rapl"])

    def reset(self) -> None:
        """Fresh clock, counters and caps (a 'reboot' between runs).
        The fault injector, if any, stays armed - rebooting does not
        fix flaky hardware."""
        self.msr = MsrFile(self.spec.sockets)
        self.rapl = Rapl(self.spec, self.msr, faults=self.faults)
        self._now_s = 0.0
        self.frequency_limit_ghz = None
        # pin the telemetry offset: the rebooted clock restarts at zero
        # but the run-wide virtual timeline must not go backwards.
        bus().bind_clock(lambda: self._now_s)
