"""RAPL interface: package power capping and energy counters.

Models the two "known issues of RAPL" that Section IV-D says the
authors had to tackle:

* **counter update frequency** - the energy-status MSRs only update
  roughly every millisecond, so energy deposited between updates is
  invisible until the next boundary; and
* **warm-up after enforcing a cap** - a freshly-written power limit
  takes a settle interval before the running average actually clamps
  the package, during which the old limit still governs frequency.

Two domains are modelled: **PACKAGE** (cap + counter, as used
throughout the paper) and **DRAM** (counter only - the paper "used
maximum power for other components (DRAM, Network card, etc.), because
we did not have capping capability on these subsystems"; accounting
DRAM energy is the paper's stated future work).

Energy is deposited by the execution engine in simulated time; reads
return whole RAPL energy units (2^-16 J) with 32-bit wraparound, like
the real counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.faults.inject import FaultInjector
from repro.machine.msr import (
    MSR_DRAM_ENERGY_STATUS,
    MSR_PKG_ENERGY_STATUS,
    MSR_PKG_POWER_LIMIT,
    MsrFile,
)
from repro.machine.spec import MachineSpec
from repro.telemetry.bus import bus
from repro.util.validation import require_nonnegative, require_positive

_COUNTER_BITS = 32


class RaplReadError(OSError):
    """An energy-counter read failed (the msr-safe driver returning
    ``EIO``/``EAGAIN`` under contention).  Injectable via the
    ``rapl.read``/``error`` fault; harnesses retry a bounded number of
    times and degrade to time-only measurement if reads stay broken."""

    def __init__(self, domain: "RaplDomain", socket: int) -> None:
        self.domain = domain
        self.socket = socket
        super().__init__(
            f"RAPL {domain.value} energy read failed on socket {socket}"
        )


class CapWriteRejectedError(OSError):
    """A package power-limit write was rejected (locked limit register,
    transient msr-safe failure).  Injectable via ``rapl.cap_write``/
    ``reject``; distinct from :class:`PermissionError` on machines that
    never allow capping."""

    def __init__(self, cap_w: float | None, socket: int) -> None:
        self.cap_w = cap_w
        self.socket = socket
        cap = "TDP" if cap_w is None else f"{cap_w:g} W"
        super().__init__(
            f"package power-limit write ({cap}) rejected on socket "
            f"{socket}"
        )


class RaplDomain(Enum):
    """RAPL power domains."""

    PACKAGE = "package"
    DRAM = "dram"


_DOMAIN_MSR = {
    RaplDomain.PACKAGE: MSR_PKG_ENERGY_STATUS,
    RaplDomain.DRAM: MSR_DRAM_ENERGY_STATUS,
}


@dataclass
class _CapState:
    cap_w: float | None = None
    pending_cap_w: float | None = None
    cap_applies_at_s: float = 0.0


@dataclass
class _EnergyAccount:
    pending_j: float = 0.0
    last_update_s: float = 0.0
    wraps: int = 0


@dataclass
class Rapl:
    """libmsr-style RAPL access for one simulated node."""

    spec: MachineSpec
    msr: MsrFile
    update_interval_s: float = 1.0e-3
    cap_settle_s: float = 10.0e-3
    faults: FaultInjector | None = None
    _caps: list[_CapState] = field(default_factory=list)
    _energy: dict[tuple[RaplDomain, int], _EnergyAccount] = field(
        default_factory=dict
    )
    _last_read_j: dict[tuple[RaplDomain, int], float] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        require_positive("update_interval_s", self.update_interval_s)
        require_nonnegative("cap_settle_s", self.cap_settle_s)
        self._caps = [_CapState() for _ in range(self.spec.sockets)]
        self._energy = {
            (domain, socket): _EnergyAccount()
            for domain in RaplDomain
            for socket in range(self.spec.sockets)
        }

    # ------------------------------------------------------------------
    # power capping (PACKAGE domain only, as on the paper's machines)
    # ------------------------------------------------------------------
    def set_package_cap(
        self, cap_w: float | None, now_s: float, socket: int | None = None
    ) -> None:
        """Write a package power limit (``None`` clears to TDP-limited).

        Raises :class:`PermissionError` on machines without capping
        privilege (Minotaur), mirroring the paper's constraint.
        """
        if not self.spec.supports_power_cap:
            raise PermissionError(
                f"{self.spec.name} does not allow power capping"
            )
        if cap_w is not None:
            require_positive("cap_w", cap_w)
        targets = range(self.spec.sockets) if socket is None else [socket]
        if self.faults is not None:
            spec = self.faults.draw("rapl.cap_write")
            if spec is not None and spec.action == "reject":
                bus().emit(
                    "rapl.cap_write_rejected",
                    cap_w=cap_w,
                    socket=next(iter(targets)),
                )
                raise CapWriteRejectedError(cap_w, next(iter(targets)))
        for s in targets:
            state = self._caps[s]
            state.pending_cap_w = cap_w
            state.cap_applies_at_s = now_s + self.cap_settle_s
            self._write_limit_register(s, cap_w)
        bus().emit(
            "rapl.cap_write",
            cap_w=cap_w,
            sockets=self.spec.sockets if socket is None else 1,
        )

    def effective_cap_w(self, socket: int, now_s: float) -> float | None:
        """The cap actually governing the package at ``now_s``
        (pending writes apply only after the settle interval)."""
        state = self._caps[socket]
        if now_s >= state.cap_applies_at_s:
            state.cap_w = state.pending_cap_w
        return state.cap_w

    def _write_limit_register(self, socket: int, cap_w: float | None) -> None:
        if cap_w is None:
            self.msr.write(socket, MSR_PKG_POWER_LIMIT, 0)
            return
        # power unit = 1/8 W; enable bit 15.
        raw = (int(round(cap_w * 8)) & 0x7FFF) | (1 << 15)
        self.msr.write(socket, MSR_PKG_POWER_LIMIT, raw)

    # ------------------------------------------------------------------
    # energy counters
    # ------------------------------------------------------------------
    def deposit_energy(
        self,
        socket: int,
        joules: float,
        now_s: float,
        domain: RaplDomain = RaplDomain.PACKAGE,
    ) -> None:
        """Account energy consumed by a domain of ``socket`` up to
        ``now_s``.  The MSR counter is only bumped when simulated time
        crosses an update-interval boundary, modelling the counter's
        refresh rate."""
        require_nonnegative("joules", joules)
        account = self._energy[(domain, socket)]
        account.pending_j += joules
        boundary = (
            int(now_s / self.update_interval_s) * self.update_interval_s
        )
        if boundary > account.last_update_s:
            self._flush(domain, socket)
            account.last_update_s = boundary

    def deposit_dram_energy(
        self, socket: int, joules: float, now_s: float
    ) -> None:
        self.deposit_energy(socket, joules, now_s, RaplDomain.DRAM)

    def _flush(self, domain: RaplDomain, socket: int) -> None:
        account = self._energy[(domain, socket)]
        units_per_j = self.msr.energy_units_per_joule(socket)
        units = int(account.pending_j * units_per_j)
        if units > 0:
            account.pending_j -= units / units_per_j
            address = _DOMAIN_MSR[domain]
            before = self.msr.read(socket, address)
            self.msr.bump_counter(socket, address, units)
            account.wraps += (before + units) >> _COUNTER_BITS

    def counter_span_j(self, socket: int = 0) -> float:
        """Energy covered by one full revolution of the 32-bit counter
        (~65536 J at the default 2^-16 J unit) - the correction quantum
        for a read that observes a wrap before the unwrap bookkeeping
        does."""
        return (1 << _COUNTER_BITS) / self.msr.energy_units_per_joule(
            socket
        )

    def _read_energy_j(self, domain: RaplDomain, socket: int) -> float:
        if not self.spec.supports_energy_counters:
            raise PermissionError(
                f"{self.spec.name} does not expose energy counters"
            )
        account = self._energy[(domain, socket)]
        raw = self.msr.read(socket, _DOMAIN_MSR[domain])
        units_per_j = self.msr.energy_units_per_joule(socket)
        total_units = account.wraps * (1 << _COUNTER_BITS) + raw
        value = total_units / units_per_j
        bus().count("rapl.reads")
        if self.faults is not None:
            spec = self.faults.draw("rapl.read")
            if spec is not None:
                if spec.action == "error":
                    bus().emit(
                        "rapl.read_error",
                        domain=domain.value,
                        socket=socket,
                    )
                    raise RaplReadError(domain, socket)
                if spec.action == "stale":
                    # the counter has not refreshed since the last read
                    bus().emit(
                        "rapl.read_stale",
                        domain=domain.value,
                        socket=socket,
                    )
                    return self._last_read_j.get((domain, socket), 0.0)
                if spec.action == "wraparound":
                    # a read racing a 32-bit wrap: the raw counter has
                    # already rolled over but the wrap has not been
                    # accounted, so the value appears one span behind
                    bus().emit(
                        "rapl.read_wraparound",
                        domain=domain.value,
                        socket=socket,
                    )
                    return value - self.counter_span_j(socket)
        self._last_read_j[(domain, socket)] = value
        return value

    def read_package_energy_j(self, socket: int) -> float:
        """Package-domain energy in joules, unwrapping the counter.
        Raises :class:`PermissionError` on machines without counter
        access (Minotaur)."""
        return self._read_energy_j(RaplDomain.PACKAGE, socket)

    def read_dram_energy_j(self, socket: int) -> float:
        """DRAM-domain energy in joules."""
        return self._read_energy_j(RaplDomain.DRAM, socket)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready mutable state (cap states, energy accounts, last
        successful reads).  The MSR registers themselves are owned - and
        snapshotted - by :class:`~repro.machine.msr.MsrFile`."""
        return {
            "caps": [
                [c.cap_w, c.pending_cap_w, c.cap_applies_at_s]
                for c in self._caps
            ],
            "energy": [
                [domain.value, socket, a.pending_j, a.last_update_s,
                 a.wraps]
                for (domain, socket), a in sorted(
                    self._energy.items(),
                    key=lambda item: (item[0][0].value, item[0][1]),
                )
            ],
            "last_read": [
                [domain.value, socket, value]
                for (domain, socket), value in sorted(
                    self._last_read_j.items(),
                    key=lambda item: (item[0][0].value, item[0][1]),
                )
            ],
        }

    def restore(self, blob: dict) -> None:
        self._caps = [
            _CapState(cap_w, pending, float(applies_at))
            for cap_w, pending, applies_at in blob["caps"]
        ]
        self._energy = {
            (RaplDomain(domain), int(socket)): _EnergyAccount(
                float(pending_j), float(last_update_s), int(wraps)
            )
            for domain, socket, pending_j, last_update_s, wraps
            in blob["energy"]
        }
        self._last_read_j = {
            (RaplDomain(domain), int(socket)): float(value)
            for domain, socket, value in blob["last_read"]
        }

    def force_update(self, now_s: float) -> None:
        """Flush pending energy into the counters (used at run teardown,
        mirroring a final synchronous read after a settle sleep)."""
        for (domain, socket), account in self._energy.items():
            account.last_update_s = now_s
            self._flush(domain, socket)
