"""DVFS model: map a package power cap to a sustainable core frequency.

RAPL enforces a package cap by lowering the core frequency (and, in
deep caps, effectively clock-gating).  The simulator inverts the power
model: given a cap and the number of active/spinning cores on the
package, find the largest frequency in ``[f_min, f_turbo]`` whose
package draw fits under the cap.

This inversion produces the paper's central mechanic: under a tight
cap, a *smaller* team runs each thread faster, so the optimal thread
count shifts downward as the cap drops (Figure 1).
"""

from __future__ import annotations

from functools import lru_cache

from repro.machine.power import PowerModel
from repro.machine.spec import MachineSpec
from repro.util.validation import require_positive

_BISECT_ITERS = 60


class FrequencyModel:
    """Solves for the RAPL-constrained frequency of one package."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.power = PowerModel(spec)
        self._solve_cached = lru_cache(maxsize=None)(self._solve)

    def frequency_for_cap(
        self,
        cap_w: float | None,
        n_active: int,
        n_spin: int = 0,
        smt_mult: float = 1.0,
    ) -> float:
        """Highest sustainable frequency (GHz) under ``cap_w``.

        ``cap_w=None`` means uncapped (TDP-limited, per the paper's
        "NO CAP (TDP)" runs).  The returned frequency is clamped to
        ``[f_min, f_turbo]``: RAPL cannot push below the floor, so very
        deep caps simply run at ``f_min`` (and in real hardware would
        throttle duty cycles; the floor keeps the model conservative).
        """
        if cap_w is None:
            cap_w = self.spec.tdp_w
        require_positive("cap_w", cap_w)
        if n_active <= 0:
            raise ValueError(f"n_active must be >= 1, got {n_active}")
        if n_active + n_spin > self.spec.cores_per_socket:
            raise ValueError(
                f"{n_active}+{n_spin} cores exceed "
                f"{self.spec.cores_per_socket} per socket"
            )
        if smt_mult < 1.0:
            raise ValueError(f"smt_mult must be >= 1, got {smt_mult}")
        return self._solve_cached(
            float(cap_w), int(n_active), int(n_spin), float(smt_mult)
        )

    def _solve(
        self, cap_w: float, n_active: int, n_spin: int, smt_mult: float
    ) -> float:
        spec = self.spec

        def draw(freq_ghz: float) -> float:
            return self.power.package_power_w(
                freq_ghz, n_active, n_spin, smt_mult=smt_mult
            )

        if draw(spec.turbo_freq_ghz) <= cap_w:
            return spec.turbo_freq_ghz
        if draw(spec.min_freq_ghz) >= cap_w:
            return spec.min_freq_ghz
        lo, hi = spec.min_freq_ghz, spec.turbo_freq_ghz
        for _ in range(_BISECT_ITERS):
            mid = 0.5 * (lo + hi)
            if draw(mid) <= cap_w:
                lo = mid
            else:
                hi = mid
        return lo

    def uncore_scale(self, freq_ghz: float) -> float:
        """Slowdown factor for uncore (L3/ring) latencies under a cap.

        The paper notes a cap "not only affects the performance of the
        cores but also impacts the cache performance".  The uncore
        scales only partially with core frequency; we model L3 latency
        growing with half of the core slowdown.
        """
        core_slowdown = self.spec.base_freq_ghz / freq_ghz
        return 1.0 + 0.5 * max(0.0, core_slowdown - 1.0)
