"""DRAM bandwidth and queueing model.

Two effects shape the frequency-invariant memory component:

* **Queueing**: when a socket's aggregate DRAM traffic approaches the
  sustainable bandwidth, stalls inflate by an M/M/1-style multiplier
  ``1 / (1 - rho)`` (capped for stability);
* **Stream contention**: many concurrent access streams destroy DRAM
  row-buffer locality and add bank conflicts, lowering the *achievable*
  bandwidth - a first-order reason the paper's memory-bound SP stops
  scaling beyond a handful of threads and Table II picks 4-16 threads
  on a 32-hw-thread machine.

The sustainable bandwidth also droops mildly under deep frequency caps
(the memory controller lives in the capped package).
"""

from __future__ import annotations

import numpy as np

from repro.machine.spec import MachineSpec
from repro.util.validation import require_nonnegative

#: utilization at which the queueing multiplier saturates.
_RHO_MAX = 0.95


class MemoryModel:
    """Bandwidth-contention multiplier for memory stalls on one socket."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec

    def effective_bandwidth(self, streams: int, freq_ghz: float) -> float:
        """Achievable bytes/s for ``streams`` concurrent access streams."""
        require_nonnegative("streams", streams)
        freq_droop = min(
            1.0, 0.5 + 0.5 * freq_ghz / self.spec.base_freq_ghz
        )
        stream_droop = 1.0 / (
            1.0
            + self.spec.stream_penalty
            * max(0, streams - self.spec.stream_sweet_spot)
        )
        return self.spec.mem_bw_bytes_per_s * freq_droop * stream_droop

    def contention_multiplier(
        self, dram_bytes_per_s: float, freq_ghz: float, streams: int = 1
    ) -> float:
        """Stall inflation factor for a socket generating
        ``dram_bytes_per_s`` of DRAM traffic over ``streams`` threads."""
        require_nonnegative("dram_bytes_per_s", dram_bytes_per_s)
        capacity = self.effective_bandwidth(streams, freq_ghz)
        rho = min(_RHO_MAX, dram_bytes_per_s / capacity)
        return 1.0 / (1.0 - rho)

    def contention_multiplier_batch(
        self, dram_bytes_per_s: np.ndarray, capacity: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`contention_multiplier` over an array of
        traffic rates against precomputed per-socket capacities (from
        :meth:`effective_bandwidth`) - elementwise IEEE-identical to
        the scalar form."""
        rho = np.minimum(_RHO_MAX, dram_bytes_per_s / capacity)
        return 1.0 / (1.0 - rho)
